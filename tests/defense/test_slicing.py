"""Tests for the slice-option mitigation (G-Core's deployed fix)."""

import pytest

from repro.cdn.vendors import create_profile
from repro.core.deployment import CdnSpec, Deployment
from repro.defense.mitigations import with_slicing
from repro.netsim.tap import CDN_ORIGIN
from repro.origin.resource import Resource
from repro.origin.server import OriginServer

MB = 1 << 20
CONTENT = bytes((i * 17 + 3) % 256 for i in range(256 * 1024))


def _deployment(profile, size=10 * MB, content=None):
    origin = OriginServer()
    if content is not None:
        origin.add_resource(Resource(path="/target.bin", body=content))
    else:
        origin.add_synthetic_resource("/target.bin", size)
    return Deployment.single(CdnSpec(profile=profile), origin)


class TestAmplificationBound:
    def test_origin_traffic_bounded_by_slice_size(self):
        profile = with_slicing(create_profile("gcore"), slice_size=64 * 1024)
        deployment = _deployment(profile, size=25 * MB)
        deployment.client().get("/target.bin?cb=0", range_value="bytes=0-0")
        origin_bytes = deployment.response_traffic(CDN_ORIGIN)
        assert origin_bytes <= 64 * 1024 + 1024  # one slice plus headers

    def test_bound_independent_of_resource_size(self):
        for size in (1 * MB, 10 * MB, 25 * MB):
            profile = with_slicing(create_profile("gcore"), slice_size=64 * 1024)
            deployment = _deployment(profile, size=size)
            deployment.client().get("/target.bin?cb=0", range_value="bytes=0-0")
            assert deployment.response_traffic(CDN_ORIGIN) <= 64 * 1024 + 1024

    def test_multi_slice_request_fetches_exactly_the_needed_slices(self):
        profile = with_slicing(create_profile("gcore"), slice_size=64 * 1024)
        deployment = _deployment(profile, size=1 * MB)
        # Bytes spanning slices 1 and 2.
        deployment.client().get(
            "/target.bin", range_value=f"bytes={64 * 1024 + 10}-{192 * 1024 - 1}"
        )
        stats = deployment.ledger.segment_stats(CDN_ORIGIN)
        assert stats.exchange_count == 2
        assert stats.response_bytes_delivered <= 2 * 64 * 1024 + 2048


class TestSliceCache:
    def test_repeat_requests_hit_the_slice_cache(self):
        profile = with_slicing(create_profile("gcore"), slice_size=64 * 1024)
        deployment = _deployment(profile)
        client = deployment.client()
        client.get("/target.bin", range_value="bytes=0-0")
        before = deployment.ledger.segment_stats(CDN_ORIGIN).exchange_count
        client.get("/target.bin", range_value="bytes=5-9")  # same slice
        after = deployment.ledger.segment_stats(CDN_ORIGIN).exchange_count
        assert after == before
        assert profile.cached_slice_count() == 1

    def test_new_slice_fetched_on_demand(self):
        profile = with_slicing(create_profile("gcore"), slice_size=64 * 1024)
        deployment = _deployment(profile)
        client = deployment.client()
        client.get("/target.bin", range_value="bytes=0-0")
        client.get("/target.bin", range_value=f"bytes={128 * 1024}-{128 * 1024}")
        assert profile.cached_slice_count() == 2


class TestCorrectness:
    def test_sliced_bytes_are_exact(self):
        profile = with_slicing(create_profile("gcore"), slice_size=16 * 1024)
        deployment = _deployment(profile, content=CONTENT)
        result = deployment.client().get(
            "/target.bin", range_value="bytes=30000-70000"
        )
        assert result.response.status == 206
        assert result.response.body.materialize() == CONTENT[30000:70001]

    def test_terminal_partial_slice(self):
        profile = with_slicing(create_profile("gcore"), slice_size=100_000)
        deployment = _deployment(profile, content=CONTENT)  # 262144 bytes
        result = deployment.client().get(
            "/target.bin", range_value=f"bytes=250000-{len(CONTENT) - 1}"
        )
        assert result.response.body.materialize() == CONTENT[250000:]

    def test_unsatisfiable_range_propagates_416(self):
        profile = with_slicing(create_profile("gcore"), slice_size=16 * 1024)
        deployment = _deployment(profile, content=CONTENT)
        result = deployment.client().get(
            "/target.bin", range_value="bytes=99999999-"
        )
        assert result.response.status == 416

    def test_suffix_ranges_fall_back_to_laziness(self):
        profile = with_slicing(create_profile("gcore"))
        deployment = _deployment(profile, content=CONTENT)
        result = deployment.client().get("/target.bin", range_value="bytes=-5")
        assert result.response.status == 206
        assert result.response.body.materialize() == CONTENT[-5:]
        # A lazy forward: origin served exactly the suffix.
        assert deployment.ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered < 2048

    def test_range_disabled_origin_degrades_to_full_fetch(self):
        origin = OriginServer(range_support=False)
        origin.add_resource(Resource(path="/target.bin", body=CONTENT))
        profile = with_slicing(create_profile("gcore"), slice_size=16 * 1024)
        deployment = Deployment.single(CdnSpec(profile=profile), origin)
        result = deployment.client().get("/target.bin", range_value="bytes=0-0")
        assert result.response.status == 206
        assert result.response.body.materialize() == CONTENT[0:1]

    def test_invalid_slice_size(self):
        with pytest.raises(ValueError):
            with_slicing(create_profile("gcore"), slice_size=0)
