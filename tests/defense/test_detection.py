"""Unit tests for the RangeAmp traffic detector."""

from repro.core.cachebusting import CacheBuster
from repro.defense.detection import RangeAmpDetector
from repro.http.message import HttpRequest


def _request(target, range_value=None):
    headers = [("Host", "h")]
    if range_value is not None:
        headers.append(("Range", range_value))
    return HttpRequest("GET", target, headers=headers)


def _feed_sbr(detector, client, count=20):
    buster = CacheBuster()
    for _ in range(count):
        detector.observe(client, _request(buster.bust("/big.bin"), "bytes=0-0"))


class TestSbrPattern:
    def test_attack_stream_flagged(self):
        detector = RangeAmpDetector()
        _feed_sbr(detector, "attacker")
        verdict = detector.verdict("attacker")
        assert verdict.suspicious
        assert verdict.tiny_range_requests == 20
        assert verdict.distinct_query_strings == 20
        assert any("SBR" in reason for reason in verdict.reasons)

    def test_below_threshold_not_flagged(self):
        detector = RangeAmpDetector(tiny_range_threshold=50)
        _feed_sbr(detector, "attacker", count=20)
        assert not detector.verdict("attacker").suspicious

    def test_tiny_ranges_without_busting_not_flagged(self):
        """A video player re-requesting the same URL's first bytes is not
        the SBR pattern (no cache busting)."""
        detector = RangeAmpDetector()
        for _ in range(20):
            detector.observe("player", _request("/video.mp4", "bytes=0-1023"))
        assert not detector.verdict("player").suspicious

    def test_busting_without_tiny_ranges_not_flagged(self):
        detector = RangeAmpDetector()
        buster = CacheBuster()
        for _ in range(20):
            detector.observe("crawler", _request(buster.bust("/page.html")))
        assert not detector.verdict("crawler").suspicious


class TestObrPattern:
    def test_single_overlapping_multirange_flagged(self):
        detector = RangeAmpDetector()
        detector.observe("attacker", _request("/1KB.bin", "bytes=0-,0-,0-"))
        verdict = detector.verdict("attacker")
        assert verdict.suspicious
        assert verdict.overlapping_multirange_requests == 1
        assert any("OBR" in reason for reason in verdict.reasons)

    def test_disjoint_multirange_not_flagged(self):
        detector = RangeAmpDetector()
        detector.observe("client", _request("/file.bin", "bytes=0-4096,100000-104096"))
        assert not detector.verdict("client").suspicious


class TestBookkeeping:
    def test_unknown_client_is_clean(self):
        assert not RangeAmpDetector().verdict("nobody").suspicious

    def test_clients_tracked_independently(self):
        detector = RangeAmpDetector()
        _feed_sbr(detector, "attacker")
        detector.observe("bystander", _request("/file.bin"))
        assert detector.suspicious_clients() == ["attacker"]

    def test_reset_single_client(self):
        detector = RangeAmpDetector()
        _feed_sbr(detector, "attacker")
        detector.reset("attacker")
        assert not detector.verdict("attacker").suspicious

    def test_reset_all(self):
        detector = RangeAmpDetector()
        _feed_sbr(detector, "a")
        _feed_sbr(detector, "b")
        detector.reset()
        assert detector.suspicious_clients() == []

    def test_malformed_range_ignored(self):
        detector = RangeAmpDetector()
        detector.observe("client", _request("/x", "bytes=banana"))
        verdict = detector.verdict("client")
        assert verdict.tiny_range_requests == 0
