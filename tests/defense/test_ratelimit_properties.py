"""Property tests for the generalized :class:`TokenBucket`.

The bucket is the serve layer's admission primitive, so its invariants
carry DoS weight: a negative token count would let a stampede overdraw
the budget, an over-capacity count would defeat the burst bound, and a
non-monotone refill would make ``Retry-After`` advice dishonest.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defense.ratelimit import TokenBucket

_capacities = st.floats(min_value=0.5, max_value=100.0, allow_nan=False)
# Either no refill at all or a rate far from the subnormal range —
# tiny denormal rates make wait = shortfall/rate overflow float
# precision, which is a float artifact, not a limiter property.
_rates = st.one_of(
    st.just(0.0), st.floats(min_value=0.01, max_value=50.0, allow_nan=False)
)
_costs = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # dt
        _costs,
    ),
    min_size=1,
    max_size=50,
)


@settings(max_examples=200, deadline=None)
@given(capacity=_capacities, rate=_rates, steps=_steps)
def test_tokens_stay_within_bounds(capacity, rate, steps):
    """Tokens never go negative and never exceed capacity, whatever the
    interleaving of takes and elapsed time."""
    bucket = TokenBucket(capacity=capacity, refill_rate=rate)
    now = 0.0
    for dt, cost in steps:
        now += dt
        bucket.allow(now, cost=cost)
        assert bucket.tokens >= 0.0
        assert bucket.tokens <= capacity + 1e-9


@settings(max_examples=200, deadline=None)
@given(
    capacity=_capacities,
    rate=_rates,
    cost=_costs,
    drain=st.integers(min_value=0, max_value=20),
    t1=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    t2=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_refill_is_monotone_in_elapsed_time(capacity, rate, cost, drain, t1, t2):
    """More elapsed time never means fewer available tokens (peek view)."""
    bucket = TokenBucket(capacity=capacity, refill_rate=rate)
    for _ in range(drain):
        bucket.allow(0.0, cost=cost)
    earlier, later = sorted((t1, t2))
    assert bucket.available(earlier) <= bucket.available(later) + 1e-9
    # available() and peek() must not mutate: asking twice agrees.
    assert bucket.available(later) == bucket.available(later)
    assert bucket.peek(later, cost) == bucket.peek(later, cost)


@settings(max_examples=200, deadline=None)
@given(capacity=_capacities, rate=_rates, cost=_costs, spend=st.integers(0, 30))
def test_retry_after_is_honest(capacity, rate, cost, spend):
    """Waiting exactly ``retry_after`` seconds makes the take succeed,
    and a strictly shorter wait keeps failing (when finite)."""
    bucket = TokenBucket(capacity=capacity, refill_rate=rate)
    now = 0.0
    for _ in range(spend):
        bucket.allow(now)
    wait = bucket.retry_after(now, cost=cost)
    assert wait >= 0.0
    if math.isinf(wait):
        assert rate == 0.0 or cost > capacity
        return
    assert bucket.peek(now + wait + 1e-6, cost=cost)
    if wait > 1e-6:
        assert not bucket.peek(now + wait * 0.5, cost=cost)


def test_retry_after_zero_when_tokens_on_hand():
    bucket = TokenBucket(capacity=5, refill_rate=1.0)
    assert bucket.retry_after(0.0) == 0.0
    assert bucket.peek(0.0)


def test_retry_after_counts_down_as_time_passes():
    bucket = TokenBucket(capacity=2, refill_rate=0.5)
    assert bucket.allow(0.0) and bucket.allow(0.0)
    # Empty at t=0; one token costs 2 s at 0.5 tokens/s.
    assert bucket.retry_after(0.0) == 2.0
    assert bucket.retry_after(1.0) == 1.0
    assert bucket.retry_after(2.0) == 0.0


def test_retry_after_infinite_without_refill():
    bucket = TokenBucket(capacity=1, refill_rate=0.0)
    assert bucket.allow(0.0)
    assert math.isinf(bucket.retry_after(0.0))


def test_cost_above_capacity_never_satisfiable():
    bucket = TokenBucket(capacity=2, refill_rate=10.0)
    assert math.isinf(bucket.retry_after(0.0, cost=3.0))
