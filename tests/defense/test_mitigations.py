"""Integration tests for the §VI-C mitigations: each one must actually
kill (or bound) the attack it targets, without breaking legitimate range
serving."""

import pytest

from repro.cdn.vendors import create_profile
from repro.core.deployment import CdnSpec, Deployment
from repro.core.obr import ObrAttack
from repro.core.sbr import SbrAttack
from repro.defense.mitigations import (
    rfc7233_multirange_guard,
    with_bounded_expansion,
    with_laziness,
    with_overlap_rejection,
)
from repro.http.message import HttpRequest
from repro.netsim.tap import CDN_ORIGIN
from repro.origin.server import OriginServer

from tests.conftest import make_origin

MB = 1 << 20


def _sbr_with_profile(profile, size=1 * MB):
    attack = SbrAttack("unused", resource_size=size)
    attack.build_deployment = lambda: Deployment.single(  # type: ignore[method-assign]
        CdnSpec(profile=profile), _origin(size)
    )
    return attack.run(range_cases=["bytes=0-0"])


def _origin(size):
    origin = OriginServer()
    origin.add_synthetic_resource("/target.bin", size)
    return origin


class TestLaziness:
    """G-Core's deployed fix: the Laziness policy removes the SBR attack."""

    def test_sbr_amplification_eliminated(self):
        vulnerable = SbrAttack("gcore", resource_size=1 * MB).run()
        mitigated = _sbr_with_profile(with_laziness(create_profile("gcore")))
        assert vulnerable.amplification > 1500
        assert mitigated.amplification < 3

    def test_legitimate_ranges_still_work(self):
        origin = make_origin(1000)
        deployment = Deployment.single(
            CdnSpec(profile=with_laziness(create_profile("gcore"))), origin
        )
        result = deployment.client().get("/file.bin", range_value="bytes=10-19")
        assert result.response.status == 206
        assert len(result.response.body) == 10

    def test_identity_preserved(self):
        mitigated = with_laziness(create_profile("cloudflare"))
        assert mitigated.server_header == "cloudflare"
        assert "mitigated" in mitigated.display_name


class TestBoundedExpansion:
    """The paper's +8 KB recommendation: prefetch survives, amplification
    collapses to a constant."""

    def test_origin_traffic_bounded_by_slack(self):
        mitigated = with_bounded_expansion(create_profile("gcore"), slack=8 * 1024)
        result = _sbr_with_profile(mitigated, size=10 * MB)
        # ~8 KB instead of 10 MB.
        assert result.origin_traffic < 16 * 1024
        assert result.amplification < 20

    def test_amplification_independent_of_resource_size(self):
        mitigated_small = _sbr_with_profile(
            with_bounded_expansion(create_profile("gcore")), size=1 * MB
        )
        mitigated_large = _sbr_with_profile(
            with_bounded_expansion(create_profile("gcore")), size=25 * MB
        )
        assert mitigated_large.amplification == pytest.approx(
            mitigated_small.amplification, rel=0.05
        )

    def test_requested_range_still_served(self):
        origin = make_origin(100_000)
        deployment = Deployment.single(
            CdnSpec(profile=with_bounded_expansion(create_profile("gcore"))), origin
        )
        result = deployment.client().get("/file.bin", range_value="bytes=5-9")
        assert result.response.status == 206
        assert result.response.headers.get("Content-Range") == "bytes 5-9/100000"


class TestOverlapRejection:
    """CDN77's deployed fix: RFC 7233 §6.1 guard kills the OBR back-end."""

    def test_overlapping_request_rejected_at_ingress(self):
        origin = make_origin(1024, range_support=False)
        deployment = Deployment.single(
            CdnSpec(profile=with_overlap_rejection(create_profile("akamai"))), origin
        )
        result = deployment.client().get(
            "/file.bin", range_value="bytes=" + ",".join(["0-"] * 64)
        )
        assert result.response.status == 431
        # Nothing was fetched from the origin.
        assert deployment.ledger.segment_stats(CDN_ORIGIN).exchange_count == 0

    def test_obr_attack_fails_against_mitigated_bcdn(self):
        attack = ObrAttack("cloudflare", "akamai")
        original_build = attack.build_deployment

        def mitigated_build():
            deployment = original_build()
            bcdn = deployment.nodes[1]
            bcdn.profile = with_overlap_rejection(bcdn.profile)
            return deployment

        attack.build_deployment = mitigated_build  # type: ignore[method-assign]
        # RFC 7233 6.1 tolerates up to two overlapping ranges, so tiny
        # requests still pass — but they no longer amplify (coalesced),
        # and anything larger is rejected outright.
        assert attack.find_max_n() <= 2
        result = attack.run(overlap_count=2)
        assert result.amplification < 5

    def test_benign_disjoint_multirange_still_served(self):
        origin = make_origin(1000)
        deployment = Deployment.single(
            CdnSpec(profile=with_overlap_rejection(create_profile("akamai"))), origin
        )
        result = deployment.client().get("/file.bin", range_value="bytes=0-1,10-19")
        assert result.response.status == 206


class TestRfc7233Guard:
    def _request(self, range_value):
        return HttpRequest(
            "GET", "/x", headers=[("Host", "h"), ("Range", range_value)]
        )

    def test_overlapping_flagged(self):
        guard = rfc7233_multirange_guard()
        assert guard(self._request("bytes=" + ",".join(["0-"] * 10))) is not None

    def test_many_small_ranges_flagged(self):
        guard = rfc7233_multirange_guard()
        specs = ",".join(f"{i * 100}-{i * 100}" for i in range(20))
        assert guard(self._request(f"bytes={specs}")) is not None

    def test_single_range_passes(self):
        guard = rfc7233_multirange_guard()
        assert guard(self._request("bytes=0-0")) is None

    def test_two_disjoint_ranges_pass(self):
        guard = rfc7233_multirange_guard()
        assert guard(self._request("bytes=0-99999,200000-300000")) is None

    def test_no_range_header_passes(self):
        guard = rfc7233_multirange_guard()
        assert guard(HttpRequest("GET", "/x", headers=[("Host", "h")])) is None


class TestConfigRoundTrip:
    """Mitigated profiles must survive round-trips through deployment and
    classification with the *inner* vendor's configuration intact —
    ``default_config`` is a classmethod, so a wrapper class can't know
    the wrapped vendor; the instance-level ``effective_config`` hook
    carries it instead."""

    def test_deployment_node_gets_inner_vendor_config(self):
        origin = make_origin(1000)
        mitigated = with_laziness(create_profile("huawei"))
        deployment = Deployment.single(CdnSpec(profile=mitigated), origin)
        inner_config = create_profile("huawei").effective_config()
        assert deployment.nodes[0].config == inner_config
        # Huawei's Range origin option is the distinctive bit that a
        # class-level default would silently drop.
        assert deployment.nodes[0].config.origin_range_option is True

    def test_classify_sbr_round_trips_mitigated_profile(self):
        from repro.analysis.classify import classify_sbr

        clean = classify_sbr("gcore")
        mitigated = classify_sbr(
            "gcore",
            profile_factory=lambda: with_laziness(create_profile("gcore")),
        )
        assert clean.vulnerable
        assert not mitigated.vulnerable

    def test_bare_class_default_config_is_base_fallback(self):
        from repro.cdn.vendors.base import VendorProfile
        from repro.defense.mitigations import MitigatedProfile

        assert MitigatedProfile.default_config() == VendorProfile.default_config()


class TestInvalidMode:
    def test_unknown_forwarding_mode_rejected(self):
        from repro.defense.mitigations import MitigatedProfile

        with pytest.raises(ValueError):
            MitigatedProfile(create_profile("gcore"), forwarding="nonsense")
