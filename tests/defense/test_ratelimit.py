"""Tests for the rate-limiting defense and its documented evasions."""

import pytest

from repro.defense.ratelimit import (
    RateLimitedHandler,
    TokenBucket,
    key_by_client_header,
    key_by_path,
)
from repro.http.message import HttpRequest
from repro.netsim.clock import SimClock

from tests.conftest import make_origin


def _request(target="/file.bin", client="203.0.113.66", range_value="bytes=0-0"):
    headers = [("Host", "h"), ("X-Client-Address", client)]
    if range_value is not None:
        headers.append(("Range", range_value))
    return HttpRequest("GET", target, headers=headers)


class TestTokenBucket:
    def test_burst_then_block(self):
        bucket = TokenBucket(capacity=3, refill_rate=1.0)
        assert [bucket.allow(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refill_over_time(self):
        bucket = TokenBucket(capacity=2, refill_rate=1.0)
        assert bucket.allow(0.0) and bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert bucket.allow(1.0)  # one token refilled

    def test_refill_capped_at_capacity(self):
        bucket = TokenBucket(capacity=2, refill_rate=10.0)
        bucket.allow(0.0)
        assert bucket.allow(100.0) and bucket.allow(100.0)
        assert not bucket.allow(100.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_rate=1)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_rate=-1)


class TestRateLimitedHandler:
    def test_burst_admitted_then_429(self):
        limiter = RateLimitedHandler(make_origin(), rate_per_second=1.0, burst=3)
        statuses = [limiter.handle(_request()).status for _ in range(5)]
        assert statuses == [206, 206, 206, 429, 429]
        assert limiter.admitted == 3
        assert limiter.rejected == 2

    def test_clock_refill_readmits(self):
        clock = SimClock()
        limiter = RateLimitedHandler(
            make_origin(), rate_per_second=1.0, burst=1, clock=clock
        )
        assert limiter.handle(_request()).status == 206
        assert limiter.handle(_request()).status == 429
        clock.advance(1.0)
        assert limiter.handle(_request()).status == 206

    def test_clients_limited_independently(self):
        limiter = RateLimitedHandler(make_origin(), rate_per_second=1.0, burst=1)
        assert limiter.handle(_request(client="a")).status == 206
        assert limiter.handle(_request(client="b")).status == 206
        assert limiter.handle(_request(client="a")).status == 429


class TestEvasions:
    """The §VI-C point, quantified: each key choice has an evasion."""

    def test_address_rotation_evades_client_keying(self):
        limiter = RateLimitedHandler(
            make_origin(), rate_per_second=0.0, burst=2,
            key_fn=key_by_client_header(),
        )
        statuses = [
            limiter.handle(_request(client=f"203.0.113.{i}")).status
            for i in range(20)
        ]
        assert statuses == [206] * 20
        # And the limiter now holds state for every fake address.
        assert limiter.tracked_keys() == 20

    def test_path_keying_catches_rotating_attackers(self):
        limiter = RateLimitedHandler(
            make_origin(), rate_per_second=0.0, burst=3,
            key_fn=key_by_path(include_query=False),
        )
        statuses = [
            limiter.handle(
                _request(target=f"/file.bin?cb={i}", client=f"203.0.113.{i}")
            ).status
            for i in range(5)
        ]
        assert statuses == [206, 206, 206, 429, 429]

    def test_query_inclusive_path_keying_is_defeated_by_cache_busting(self):
        limiter = RateLimitedHandler(
            make_origin(), rate_per_second=0.0, burst=1,
            key_fn=key_by_path(include_query=True),
        )
        statuses = [
            limiter.handle(_request(target=f"/file.bin?cb={i}")).status
            for i in range(10)
        ]
        assert statuses == [206] * 10

    def test_path_keying_throttles_benign_clients_too(self):
        """The collateral-damage half of the tradeoff: popular objects
        get throttled for everyone."""
        limiter = RateLimitedHandler(
            make_origin(), rate_per_second=0.0, burst=2,
            key_fn=key_by_path(include_query=False),
        )
        legit = [
            limiter.handle(
                _request(client=f"198.51.100.{i}", range_value=None)
            ).status
            for i in range(4)
        ]
        assert legit == [200, 200, 429, 429]
