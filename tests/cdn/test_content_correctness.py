"""Property tests: whatever Range games a vendor plays upstream, the
bytes it hands the client must be the right bytes.

This is the correctness backstop for the whole CDN layer — Deletion,
Expansion, window slicing, multipart assembly, caching, and the
multi-connection quirks all have to compose to byte-exact range
serving.  Hypothesis drives random valid ranges through every vendor and
compares against the origin's ground truth.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdn.node import CdnNode
from repro.cdn.vendors import all_vendor_names, create_profile
from repro.http.message import HttpRequest
from repro.http.multipart import MultipartByteranges
from repro.netsim.tap import TrafficLedger
from repro.origin.resource import Resource
from repro.origin.server import OriginServer

FILE_SIZE = 4096

# One ground-truth resource shared by every example.
_CONTENT = bytes((i * 31 + 7) % 256 for i in range(FILE_SIZE))


def _fresh_node(vendor: str) -> CdnNode:
    origin = OriginServer()
    origin.add_resource(Resource(path="/file.bin", body=_CONTENT))
    return CdnNode(
        create_profile(vendor),
        origin,
        ledger=TrafficLedger(),
        size_hint_fn=lambda path: FILE_SIZE,
    )


def _get(node: CdnNode, range_value: str, target="/file.bin"):
    return node.handle(
        HttpRequest(
            "GET", target, headers=[("Host", "victim.example"), ("Range", range_value)]
        )
    )


_single_range = st.one_of(
    # closed
    st.tuples(
        st.integers(min_value=0, max_value=FILE_SIZE - 1),
        st.integers(min_value=0, max_value=2 * FILE_SIZE),
    ).map(lambda t: (t[0], f"bytes={t[0]}-{max(t)}", min(max(t), FILE_SIZE - 1))),
    # open-ended
    st.integers(min_value=0, max_value=FILE_SIZE - 1).map(
        lambda first: (first, f"bytes={first}-", FILE_SIZE - 1)
    ),
    # suffix
    st.integers(min_value=1, max_value=2 * FILE_SIZE).map(
        lambda n: (max(0, FILE_SIZE - n), f"bytes=-{n}", FILE_SIZE - 1)
    ),
)


class TestSingleRangeCorrectness:
    @pytest.mark.parametrize("vendor", all_vendor_names())
    @given(case=_single_range)
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_body_matches_origin_slice(self, vendor, case):
        start, range_value, end = case
        node = _fresh_node(vendor)
        response = _get(node, range_value)
        assert response.status == 206, (vendor, range_value)
        assert response.body.materialize() == _CONTENT[start:end + 1], (
            vendor,
            range_value,
        )
        assert response.headers.get("Content-Range") == (
            f"bytes {start}-{end}/{FILE_SIZE}"
        )
        assert response.headers.get_int("Content-Length") == end - start + 1

    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_second_identical_request_same_bytes(self, vendor):
        """Cache hits, KeyCDN's policy switch, and StackPath's refetch
        must not change the payload."""
        node = _fresh_node(vendor)
        first = _get(node, "bytes=100-199")
        second = _get(node, "bytes=100-199")
        assert first.body.materialize() == second.body.materialize() == _CONTENT[100:200]

    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_out_of_bounds_is_416_with_correct_length(self, vendor):
        node = _fresh_node(vendor)
        response = _get(node, f"bytes={FILE_SIZE * 2}-{FILE_SIZE * 3}")
        assert response.status == 416
        assert response.headers.get("Content-Range") == f"bytes */{FILE_SIZE}"


class TestMultiRangeCorrectness:
    @pytest.mark.parametrize("vendor", ["akamai", "stackpath", "azure"])
    @given(
        cuts=st.lists(
            st.integers(min_value=0, max_value=FILE_SIZE - 1),
            min_size=4,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_multipart_parts_match_origin_slices(self, vendor, cuts):
        ordered = sorted(cuts)
        pairs = [
            (ordered[i], ordered[i + 1]) for i in range(0, len(ordered) - 1, 2)
        ]
        # Ensure the ranges are disjoint (Apache would downgrade overlaps).
        range_value = "bytes=" + ",".join(f"{a}-{b}" for a, b in pairs)
        node = _fresh_node(vendor)
        response = _get(node, range_value)
        assert response.status == 206
        if len(pairs) == 1:
            assert response.body.materialize() == _CONTENT[pairs[0][0]:pairs[0][1] + 1]
            return
        boundary = response.content_type.split("boundary=")[1]
        parsed = MultipartByteranges.parse(response.body.materialize(), boundary)
        assert len(parsed) == len(pairs)
        for part, (a, b) in zip(parsed.parts, pairs):
            assert part.payload.materialize() == _CONTENT[a:b + 1]
            assert part.complete_length == FILE_SIZE

    @pytest.mark.parametrize("vendor", ["akamai", "stackpath"])
    def test_overlapping_parts_are_full_copies(self, vendor):
        """The OBR payload: every part must be the complete resource."""
        origin = OriginServer(range_support=False)
        origin.add_resource(Resource(path="/file.bin", body=_CONTENT))
        node = CdnNode(create_profile(vendor), origin, ledger=TrafficLedger())
        response = _get(node, "bytes=0-,0-,0-")
        boundary = response.content_type.split("boundary=")[1]
        parsed = MultipartByteranges.parse(response.body.materialize(), boundary)
        assert len(parsed) == 3
        for part in parsed.parts:
            assert part.payload.materialize() == _CONTENT


class TestCascadeCorrectness:
    def test_obr_multipart_survives_the_fcdn_verbatim(self):
        """The FCDN's lazy passthrough must not alter the BCDN's payload."""
        from repro.cdn.vendors.base import VendorConfig
        from repro.core.deployment import CdnSpec, Deployment

        origin = OriginServer(range_support=False)
        origin.add_resource(Resource(path="/file.bin", body=_CONTENT))
        deployment = Deployment.cascade(
            CdnSpec(vendor="cloudflare", config=VendorConfig(bypass_cache=True)),
            CdnSpec(vendor="akamai"),
            origin,
        )
        result = deployment.client().get("/file.bin", range_value="bytes=0-,0-")
        response = result.response
        assert response.status == 206
        boundary = response.content_type.split("boundary=")[1]
        parsed = MultipartByteranges.parse(response.body.materialize(), boundary)
        assert all(p.payload.materialize() == _CONTENT for p in parsed.parts)
