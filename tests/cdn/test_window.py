"""Unit tests for the content window."""

import pytest

from repro.cdn.window import ContentWindow
from repro.http.body import BytesBody, SyntheticBody
from repro.http.ranges import ResolvedRange


class TestConstruction:
    def test_full_window(self):
        window = ContentWindow.full(BytesBody(b"abcdef"))
        assert window.is_full
        assert window.offset == 0
        assert window.complete_length == 6
        assert window.end == 6

    def test_partial_window(self):
        window = ContentWindow(body=BytesBody(b"cd"), offset=2, complete_length=6)
        assert not window.is_full
        assert window.end == 4

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            ContentWindow(body=BytesBody(b"x"), offset=-1, complete_length=5)

    def test_window_past_end_rejected(self):
        with pytest.raises(ValueError):
            ContentWindow(body=BytesBody(b"abc"), offset=4, complete_length=5)


class TestCoverage:
    def test_covers(self):
        window = ContentWindow(body=BytesBody(b"cdef"), offset=2, complete_length=10)
        assert window.covers(ResolvedRange(2, 5))
        assert window.covers(ResolvedRange(3, 4))
        assert not window.covers(ResolvedRange(1, 3))
        assert not window.covers(ResolvedRange(5, 6))

    def test_full_window_covers_everything_in_bounds(self):
        window = ContentWindow.full(SyntheticBody(100))
        assert window.covers(ResolvedRange(0, 99))
        assert not window.covers(ResolvedRange(0, 100))


class TestSlicing:
    def test_slice_range_full_window(self):
        window = ContentWindow.full(BytesBody(b"0123456789"))
        assert window.slice_range(ResolvedRange(3, 6)).materialize() == b"3456"

    def test_slice_range_offset_window(self):
        # Window holds bytes [4, 8) of a 10-byte representation.
        window = ContentWindow(body=BytesBody(b"4567"), offset=4, complete_length=10)
        assert window.slice_range(ResolvedRange(5, 6)).materialize() == b"56"

    def test_slice_uncovered_raises(self):
        window = ContentWindow(body=BytesBody(b"45"), offset=4, complete_length=10)
        with pytest.raises(ValueError):
            window.slice_range(ResolvedRange(0, 0))

    def test_azure_style_second_window(self):
        """The Azure expansion window: bytes [8M, 16M) of a 25 MB file."""
        eight_mb = 8 * 1024 * 1024
        window = ContentWindow(
            body=SyntheticBody(eight_mb),
            offset=eight_mb,
            complete_length=25 * 1024 * 1024,
        )
        assert window.covers(ResolvedRange(eight_mb, eight_mb))
        assert not window.covers(ResolvedRange(0, 0))
        assert len(window.slice_range(ResolvedRange(eight_mb, eight_mb))) == 1
