"""Unit tests for the CDN edge cache."""

import pytest

from repro.cdn.cache import CdnCache
from repro.http.message import HttpRequest, HttpResponse


def _request(target="/x.bin", host="h"):
    return HttpRequest("GET", target, headers=[("Host", host)])


def _full_response(size=100):
    return HttpResponse(200, headers=[("Content-Length", str(size))], body=size)


class TestBasicCaching:
    def test_miss_then_hit(self):
        cache = CdnCache()
        request = _request()
        assert cache.get(request) is None
        assert cache.put(request, _full_response())
        hit = cache.get(request)
        assert hit is not None
        assert hit.status == 200
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_hit_returns_copy(self):
        cache = CdnCache()
        request = _request()
        cache.put(request, _full_response())
        first = cache.get(request)
        first.headers.add("X-Mutated", "yes")
        second = cache.get(request)
        assert "X-Mutated" not in second.headers

    def test_query_string_is_part_of_the_key(self):
        """The cache-busting premise: a fresh query string misses."""
        cache = CdnCache()
        cache.put(_request("/x.bin?cb=0"), _full_response())
        assert cache.get(_request("/x.bin?cb=0")) is not None
        assert cache.get(_request("/x.bin?cb=1")) is None
        assert cache.get(_request("/x.bin")) is None

    def test_host_is_part_of_the_key(self):
        cache = CdnCache()
        cache.put(_request(host="a"), _full_response())
        assert cache.get(_request(host="b")) is None


class TestCacheability:
    def test_only_200_stored(self):
        cache = CdnCache()
        assert not cache.put(_request(), HttpResponse(206, body=b"x"))
        assert not cache.put(_request(), HttpResponse(404))
        assert len(cache) == 0

    def test_non_get_not_cached(self):
        cache = CdnCache()
        request = HttpRequest("HEAD", "/x", headers=[("Host", "h")])
        assert not cache.put(request, _full_response())
        assert cache.get(request) is None

    def test_disabled_cache_stores_nothing(self):
        cache = CdnCache(enabled=False)
        assert not cache.put(_request(), _full_response())
        assert cache.get(_request()) is None
        # Disabled lookups do not even count as misses.
        assert cache.stats.lookups == 0


class TestEviction:
    def test_fifo_eviction_at_capacity(self):
        cache = CdnCache(max_entries=2)
        cache.put(_request("/a"), _full_response())
        cache.put(_request("/b"), _full_response())
        cache.put(_request("/c"), _full_response())
        assert cache.get(_request("/a")) is None
        assert cache.get(_request("/b")) is not None
        assert cache.get(_request("/c")) is not None
        assert cache.stats.evictions == 1

    def test_replacing_existing_key_does_not_evict(self):
        cache = CdnCache(max_entries=2)
        cache.put(_request("/a"), _full_response(1))
        cache.put(_request("/b"), _full_response(2))
        cache.put(_request("/a"), _full_response(3))
        assert len(cache) == 2
        assert cache.stats.evictions == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CdnCache(max_entries=0)


class TestPurge:
    def test_purge_clears(self):
        cache = CdnCache()
        cache.put(_request("/a"), _full_response())
        cache.put(_request("/b"), _full_response())
        assert cache.purge() == 2
        assert len(cache) == 0
        assert cache.get(_request("/a")) is None

    def test_contains(self):
        cache = CdnCache()
        cache.put(_request("/a"), _full_response())
        assert _request("/a") in cache
        assert _request("/b") not in cache
        assert "not-a-request" not in cache
