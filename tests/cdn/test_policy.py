"""Unit tests for forwarding policies and expansion arithmetic."""

import pytest

from repro.cdn.policy import (
    ForwardDecision,
    ForwardPolicy,
    bounded_expansion,
    mb_aligned_expansion,
)

MB = 1 << 20


class TestForwardDecision:
    def test_lazy_keeps_value(self):
        decision = ForwardDecision.lazy("bytes=0-0")
        assert decision.policy is ForwardPolicy.LAZINESS
        assert decision.forwarded_range == "bytes=0-0"

    def test_delete_drops_value(self):
        decision = ForwardDecision.delete()
        assert decision.policy is ForwardPolicy.DELETION
        assert decision.forwarded_range is None

    def test_expand_sets_value(self):
        decision = ForwardDecision.expand("bytes=0-1048575")
        assert decision.policy is ForwardPolicy.EXPANSION
        assert decision.forwarded_range == "bytes=0-1048575"


class TestMbAlignedExpansion:
    """The paper's CloudFront arithmetic (§V-A item 3)."""

    def test_paper_example_zero_range(self):
        assert mb_aligned_expansion(0, 0) == (0, MB - 1)

    def test_paper_example_multi_range_cover(self):
        # "Range: bytes=0-0,9437184-9437184" becomes "bytes=0-10485759".
        assert mb_aligned_expansion(0, 9437184, cap=10 * MB) == (0, 10 * MB - 1)

    def test_alignment_of_interior_range(self):
        first, last = mb_aligned_expansion(1_500_000, 1_600_000)
        assert first == MB
        assert last == 2 * MB - 1

    def test_range_on_boundary(self):
        assert mb_aligned_expansion(MB, 2 * MB - 1) == (MB, 2 * MB - 1)

    def test_cap_exceeded_returns_none(self):
        assert mb_aligned_expansion(0, 10 * MB, cap=10 * MB) is None

    def test_cap_none_is_unbounded(self):
        assert mb_aligned_expansion(0, 100 * MB, cap=None) is not None

    def test_result_always_covers_input(self):
        for first, last in [(0, 0), (123, 456), (MB - 1, MB), (5 * MB, 7 * MB)]:
            expanded = mb_aligned_expansion(first, last, cap=None)
            assert expanded is not None
            assert expanded[0] <= first and last <= expanded[1]
            assert expanded[0] % MB == 0
            assert (expanded[1] + 1) % MB == 0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            mb_aligned_expansion(5, 3)
        with pytest.raises(ValueError):
            mb_aligned_expansion(-1, 3)


class TestBoundedExpansion:
    def test_default_slack(self):
        assert bounded_expansion(100, 200) == (100, 200 + 8 * 1024)

    def test_custom_slack(self):
        assert bounded_expansion(0, 0, slack=16) == (0, 16)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            bounded_expansion(5, 3)
