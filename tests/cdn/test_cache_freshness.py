"""Tests for cache freshness semantics (TTL, Cache-Control) and the
§II-A no-store attack path."""

import pytest

from repro.cdn.cache import CdnCache, parse_cache_control, shared_cache_ttl
from repro.cdn.node import CdnNode
from repro.cdn.vendors import create_profile
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.clock import SimClock
from repro.netsim.tap import CDN_ORIGIN, TrafficLedger
from repro.origin.resource import Resource
from repro.origin.server import OriginServer

from tests.conftest import get


def _request(target="/x.bin"):
    return HttpRequest("GET", target, headers=[("Host", "h")])


def _response(cache_control=None, size=100):
    headers = [("Content-Length", str(size))]
    if cache_control is not None:
        headers.append(("Cache-Control", cache_control))
    return HttpResponse(200, headers=headers, body=size)


class TestParseCacheControl:
    def test_directives(self):
        parsed = parse_cache_control('public, max-age=60, s-maxage="120", no-transform')
        assert parsed == {
            "public": None,
            "max-age": "60",
            "s-maxage": "120",
            "no-transform": None,
        }

    def test_empty_and_none(self):
        assert parse_cache_control(None) == {}
        assert parse_cache_control("") == {}
        assert parse_cache_control(", ,") == {}

    def test_case_insensitive_names(self):
        assert "no-store" in parse_cache_control("No-Store")


class TestSharedCacheTtl:
    def test_s_maxage_wins(self):
        assert shared_cache_ttl(parse_cache_control("max-age=60, s-maxage=10")) == 10.0

    def test_max_age_fallback(self):
        assert shared_cache_ttl(parse_cache_control("max-age=60")) == 60.0

    def test_no_cache_is_zero(self):
        assert shared_cache_ttl(parse_cache_control("no-cache, max-age=60")) == 0.0

    def test_unspecified(self):
        assert shared_cache_ttl(parse_cache_control("public")) is None

    def test_negative_clamped(self):
        assert shared_cache_ttl(parse_cache_control("max-age=-5")) == 0.0

    def test_garbage_age_ignored(self):
        assert shared_cache_ttl(parse_cache_control("max-age=soon")) is None


class TestTtlExpiry:
    def test_entry_expires_with_the_clock(self):
        clock = SimClock()
        cache = CdnCache(clock=clock)
        cache.put(_request(), _response(cache_control="max-age=10"))
        assert cache.get(_request()) is not None
        clock.advance(9.9)
        assert cache.get(_request()) is not None
        clock.advance(0.2)
        assert cache.get(_request()) is None
        assert cache.stats.expirations == 1

    def test_default_ttl_applies_without_directives(self):
        clock = SimClock()
        cache = CdnCache(clock=clock, default_ttl=5.0)
        cache.put(_request(), _response())
        clock.advance(6.0)
        assert cache.get(_request()) is None

    def test_no_ttl_means_forever(self):
        clock = SimClock()
        cache = CdnCache(clock=clock)
        cache.put(_request(), _response())
        clock.advance(1e9)
        assert cache.get(_request()) is not None


class TestUncacheableDirectives:
    @pytest.mark.parametrize("directive", ["no-store", "private", "no-cache"])
    def test_not_stored(self, directive):
        cache = CdnCache()
        assert not cache.put(_request(), _response(cache_control=directive))
        assert cache.stats.uncacheable == 1
        assert len(cache) == 0


class TestNoStoreAttackPath:
    """§II-A: a malicious customer disables caching origin-side, making
    every SBR request a back-to-origin fetch without query busting."""

    def _node(self, cache_control):
        origin = OriginServer()
        origin.add_resource(
            Resource(path="/file.bin", body=100_000, cache_control=cache_control)
        )
        return CdnNode(create_profile("gcore"), origin, ledger=TrafficLedger()), origin

    def test_no_store_origin_amplifies_on_every_identical_request(self):
        node, origin = self._node("no-store")
        for _ in range(5):
            response = get(node, range_value="bytes=0-0")
            assert response.status == 206
        # All five identical requests hit the origin.
        assert origin.stats.requests == 5
        assert node.ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered > 500_000

    def test_cacheable_origin_absorbs_identical_requests(self):
        node, origin = self._node(None)
        for _ in range(5):
            get(node, range_value="bytes=0-0")
        assert origin.stats.requests == 1

    def test_cache_control_relayed_to_the_client(self):
        node, _ = self._node("no-store")
        response = get(node, range_value="bytes=0-0")
        assert response.headers.get("Cache-Control") == "no-store"
