"""RFC 7233 §3.1 end-to-end: every malformed Range header must be
ignored — a plain 200 with the full body, through every vendor."""

import pytest

from repro.http.grammar import RangeCorpusGenerator
from repro.http.ranges import try_parse_range_header
from repro.cdn.vendors import all_vendor_names

from tests.conftest import get, make_node, make_origin

INVALID = RangeCorpusGenerator(file_size=4096).invalid_cases()


class TestInvalidCorpus:
    @pytest.mark.parametrize("value", INVALID)
    def test_cases_really_are_invalid(self, value):
        assert try_parse_range_header(value) is None

    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_ignored_through_every_vendor(self, vendor):
        node = make_node(vendor, make_origin(2048), size_hint_fn=lambda p: 2048)
        for index, value in enumerate(INVALID):
            response = get(node, target=f"/file.bin?cb={index}", range_value=value)
            assert response.status == 200, (vendor, value)
            assert len(response.body) == 2048, (vendor, value)

    def test_origin_ignores_them_directly(self):
        origin = make_origin(2048)
        for value in INVALID:
            response = get(origin, range_value=value)
            assert response.status == 200
