"""Per-vendor forwarding behavior tests (paper Tables I and II).

Each test pins one row of the paper's behavior tables: which Range
formats a vendor deletes, expands, or forwards unchanged, including the
config-conditional cases.
"""

import pytest

from repro.cdn.policy import ForwardPolicy
from repro.cdn.vendors import all_vendor_names, create_profile
from repro.cdn.vendors.base import VendorConfig, VendorContext
from repro.http.message import HttpRequest
from repro.http.ranges import try_parse_range_header

MB = 1 << 20


def decide(vendor, range_value, config=None, size_hint=None):
    """Run one forwarding decision through a fresh profile."""
    profile = create_profile(vendor)
    request = HttpRequest(
        "GET", "/file.bin", headers=[("Host", "h"), ("Range", range_value)]
    )
    ctx = VendorContext(
        config=config if config is not None else type(profile).default_config(),
        resource_size_hint=size_hint,
    )
    spec = try_parse_range_header(range_value)
    return profile.forward_decision(request, spec, ctx)


class TestNoRangeHeader:
    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_plain_requests_forwarded_unchanged(self, vendor):
        profile = create_profile(vendor)
        request = HttpRequest("GET", "/file.bin", headers=[("Host", "h")])
        ctx = VendorContext(config=type(profile).default_config())
        decision = profile.forward_decision(request, None, ctx)
        assert decision.policy is ForwardPolicy.LAZINESS
        assert decision.forwarded_range is None


class TestAkamai:
    """Table I: Deletion for first-last and -suffix."""

    @pytest.mark.parametrize("value", ["bytes=0-0", "bytes=-1", "bytes=5-", "bytes=0-,0-"])
    def test_always_deletes(self, value):
        assert decide("akamai", value).policy is ForwardPolicy.DELETION


class TestAlibaba:
    """Table I: Deletion for -suffix, conditional on the Range option."""

    def test_suffix_deleted_by_default(self):
        assert decide("alibaba", "bytes=-1").policy is ForwardPolicy.DELETION

    def test_closed_range_lazy(self):
        assert decide("alibaba", "bytes=0-0").policy is ForwardPolicy.LAZINESS

    def test_range_option_enabled_removes_vulnerability(self):
        decision = decide(
            "alibaba", "bytes=-1", config=VendorConfig(origin_range_option=True)
        )
        assert decision.policy is ForwardPolicy.LAZINESS


class TestCdn77:
    """Table I: Deletion for first-last with first < 1024; Table II:
    multi-range lazy when led by a spec outside the deletion zone."""

    def test_low_closed_range_deleted(self):
        assert decide("cdn77", "bytes=0-0").policy is ForwardPolicy.DELETION
        assert decide("cdn77", "bytes=1023-2000").policy is ForwardPolicy.DELETION

    def test_high_closed_range_lazy(self):
        assert decide("cdn77", "bytes=1024-2000").policy is ForwardPolicy.LAZINESS

    def test_suffix_lazy(self):
        assert decide("cdn77", "bytes=-1").policy is ForwardPolicy.LAZINESS

    def test_suffix_led_multirange_lazy(self):
        """The paper's exploited OBR case: bytes=-1024,0-,...,0-."""
        decision = decide("cdn77", "bytes=-1024,0-,0-,0-")
        assert decision.policy is ForwardPolicy.LAZINESS
        assert decision.forwarded_range == "bytes=-1024,0-,0-,0-"

    def test_zero_led_multirange_deleted(self):
        assert decide("cdn77", "bytes=0-,0-,0-").policy is ForwardPolicy.DELETION


class TestCdnsun:
    """Table I: Deletion for 0-last; Table II: lazy when start1 >= 1."""

    def test_zero_anchored_deleted(self):
        assert decide("cdnsun", "bytes=0-500").policy is ForwardPolicy.DELETION
        assert decide("cdnsun", "bytes=0-").policy is ForwardPolicy.DELETION

    def test_nonzero_lazy(self):
        assert decide("cdnsun", "bytes=1-500").policy is ForwardPolicy.LAZINESS

    def test_one_led_multirange_lazy(self):
        """The paper's exploited OBR case: bytes=1-,0-,...,0-."""
        decision = decide("cdnsun", "bytes=1-,0-,0-")
        assert decision.policy is ForwardPolicy.LAZINESS
        assert decision.forwarded_range == "bytes=1-,0-,0-"

    def test_zero_led_multirange_deleted(self):
        assert decide("cdnsun", "bytes=0-,0-").policy is ForwardPolicy.DELETION


class TestCloudflare:
    """Table I (*): Deletion only when cacheable; Table II (*): lazy only
    under the Bypass rule."""

    @pytest.mark.parametrize("value", ["bytes=0-0", "bytes=-1"])
    def test_deletes_when_cacheable(self, value):
        assert decide("cloudflare", value).policy is ForwardPolicy.DELETION

    def test_lazy_when_not_cacheable(self):
        decision = decide(
            "cloudflare", "bytes=0-0", config=VendorConfig(cacheable=False)
        )
        assert decision.policy is ForwardPolicy.LAZINESS

    def test_lazy_under_bypass(self):
        decision = decide(
            "cloudflare", "bytes=0-,0-,0-", config=VendorConfig(bypass_cache=True)
        )
        assert decision.policy is ForwardPolicy.LAZINESS

    def test_multirange_deleted_under_default_config(self):
        assert decide("cloudflare", "bytes=0-,0-").policy is ForwardPolicy.DELETION


class TestCloudFront:
    """Table I / §V-A item 3: MB-aligned Expansion."""

    def test_single_range_expanded_to_mb(self):
        decision = decide("cloudfront", "bytes=0-0")
        assert decision.policy is ForwardPolicy.EXPANSION
        assert decision.forwarded_range == "bytes=0-1048575"

    def test_interior_range_alignment(self):
        decision = decide("cloudfront", "bytes=1500000-1600000")
        assert decision.forwarded_range == f"bytes={MB}-{2 * MB - 1}"

    def test_paper_multirange_example(self):
        """bytes=0-0,9437184-9437184 becomes bytes=0-10485759."""
        decision = decide("cloudfront", "bytes=0-0,9437184-9437184")
        assert decision.policy is ForwardPolicy.EXPANSION
        assert decision.forwarded_range == "bytes=0-10485759"

    def test_multirange_over_cap_expands_first_only(self):
        decision = decide("cloudfront", "bytes=0-0,20971520-20971520")
        assert decision.policy is ForwardPolicy.EXPANSION
        assert decision.forwarded_range == "bytes=0-1048575"

    def test_suffix_lazy(self):
        assert decide("cloudfront", "bytes=-1").policy is ForwardPolicy.LAZINESS

    def test_open_range_lazy(self):
        assert decide("cloudfront", "bytes=5-").policy is ForwardPolicy.LAZINESS


class TestFastlyAndGcore:
    @pytest.mark.parametrize("vendor", ["fastly", "gcore"])
    @pytest.mark.parametrize("value", ["bytes=0-0", "bytes=-1"])
    def test_deletion(self, vendor, value):
        assert decide(vendor, value).policy is ForwardPolicy.DELETION

    @pytest.mark.parametrize("vendor", ["fastly", "gcore"])
    def test_multirange_not_lazy(self, vendor):
        """Neither appears in Table II: they must not be OBR front-ends."""
        assert decide(vendor, "bytes=0-,0-").policy is not ForwardPolicy.LAZINESS


class TestHuawei:
    """Table I: the 10 MB behavior switch, conditional on the Range
    option being enabled."""

    def test_suffix_deleted_for_small_resources(self):
        decision = decide("huawei", "bytes=-1", size_hint=1 * MB)
        assert decision.policy is ForwardPolicy.DELETION

    def test_suffix_lazy_for_large_resources(self):
        decision = decide("huawei", "bytes=-1", size_hint=10 * MB)
        assert decision.policy is ForwardPolicy.LAZINESS

    def test_closed_deleted_for_large_resources(self):
        decision = decide("huawei", "bytes=0-0", size_hint=10 * MB)
        assert decision.policy is ForwardPolicy.DELETION

    def test_closed_lazy_for_small_resources(self):
        decision = decide("huawei", "bytes=0-0", size_hint=1 * MB)
        assert decision.policy is ForwardPolicy.LAZINESS

    def test_unknown_size_treated_as_small(self):
        assert decide("huawei", "bytes=-1", size_hint=None).policy is ForwardPolicy.DELETION

    def test_range_option_disabled_removes_vulnerability(self):
        decision = decide(
            "huawei",
            "bytes=-1",
            config=VendorConfig(origin_range_option=False),
            size_hint=1 * MB,
        )
        assert decision.policy is ForwardPolicy.LAZINESS


class TestKeycdn:
    """Table I / §V-A item 4: Laziness on first sight, Deletion on the
    second identical request."""

    def test_first_lazy_second_deleted(self):
        profile = create_profile("keycdn")
        request = HttpRequest(
            "GET", "/file.bin?cb=0", headers=[("Host", "h"), ("Range", "bytes=0-0")]
        )
        ctx = VendorContext(config=VendorConfig())
        spec = try_parse_range_header("bytes=0-0")
        first = profile.forward_decision(request, spec, ctx)
        second = profile.forward_decision(request, spec, ctx)
        assert first.policy is ForwardPolicy.LAZINESS
        assert second.policy is ForwardPolicy.DELETION

    def test_state_is_per_url_and_range(self):
        profile = create_profile("keycdn")
        ctx = VendorContext(config=VendorConfig())

        def one(target, value):
            request = HttpRequest(
                "GET", target, headers=[("Host", "h"), ("Range", value)]
            )
            return profile.forward_decision(
                request, try_parse_range_header(value), ctx
            )

        assert one("/a?cb=0", "bytes=0-0").policy is ForwardPolicy.LAZINESS
        assert one("/a?cb=1", "bytes=0-0").policy is ForwardPolicy.LAZINESS
        assert one("/a?cb=0", "bytes=1-1").policy is ForwardPolicy.LAZINESS
        assert one("/a?cb=0", "bytes=0-0").policy is ForwardPolicy.DELETION

    def test_reset_seen(self):
        profile = create_profile("keycdn")
        ctx = VendorContext(config=VendorConfig())
        request = HttpRequest(
            "GET", "/a", headers=[("Host", "h"), ("Range", "bytes=0-0")]
        )
        spec = try_parse_range_header("bytes=0-0")
        profile.forward_decision(request, spec, ctx)
        profile.reset_seen()
        assert profile.forward_decision(request, spec, ctx).policy is ForwardPolicy.LAZINESS


class TestTencent:
    def test_closed_deleted_by_default(self):
        assert decide("tencent", "bytes=0-0").policy is ForwardPolicy.DELETION

    def test_suffix_lazy(self):
        assert decide("tencent", "bytes=-1").policy is ForwardPolicy.LAZINESS

    def test_range_option_enabled_removes_vulnerability(self):
        decision = decide(
            "tencent", "bytes=0-0", config=VendorConfig(origin_range_option=True)
        )
        assert decision.policy is ForwardPolicy.LAZINESS


class TestRegistry:
    def test_thirteen_vendors(self):
        assert len(all_vendor_names()) == 13

    def test_profiles_are_fresh_instances(self):
        assert create_profile("keycdn") is not create_profile("keycdn")

    def test_unknown_vendor(self):
        from repro.errors import UnknownVendorError

        with pytest.raises(UnknownVendorError):
            create_profile("notacdn")
