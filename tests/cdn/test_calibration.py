"""Calibration regression tests.

The per-vendor client-response header weight is what encodes Fig 6a's
distinct slopes (the paper: "due to the great difference resulted from
different response headers inserted by CDNs").  These tests pin the
padding machinery: the canonical SBR response must hit each vendor's
calibrated block size exactly, so factor drift can only come from real
behavior changes, never from header-weight noise.
"""

import pytest

from repro.cdn.vendors import all_vendor_names, create_profile, profile_class
from repro.core.sbr import SbrAttack

MB = 1 << 20


class TestHeaderWeightTargets:
    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_canonical_response_hits_the_calibrated_block_size(self, vendor):
        attack = SbrAttack(vendor, resource_size=1 * MB)
        deployment = attack.build_deployment()
        client = deployment.client()
        case = "bytes=-1" if vendor in ("alibaba", "huawei") else "bytes=0-0"
        result = client.get("/target.bin?cb=0", range_value=case)
        target = profile_class(vendor).client_header_block_target
        assert result.response.header_block_size() == target, (
            f"{vendor}: block {result.response.header_block_size()} != "
            f"calibrated {target}"
        )

    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_targets_are_distinct_enough_to_order_the_slopes(self, vendor):
        """G-Core lightest, Alibaba heaviest — the Fig 6a ordering."""
        target = profile_class(vendor).client_header_block_target
        assert profile_class("gcore").client_header_block_target <= target
        assert target <= profile_class("alibaba").client_header_block_target

    def test_padding_is_deterministic(self):
        from repro.http.message import HttpResponse

        profile = create_profile("akamai")
        first = HttpResponse(206, headers=[("Content-Length", "1")], body=b"x")
        second = HttpResponse(206, headers=[("Content-Length", "1")], body=b"x")
        profile.pad_response(first)
        profile.pad_response(second)
        assert first.serialize() == second.serialize()

    def test_padding_never_overshoots_when_already_heavy(self):
        from repro.http.headers import Headers
        from repro.http.message import HttpResponse

        profile = create_profile("gcore")  # smallest target
        heavy = HttpResponse(
            206,
            headers=Headers([("X-Big", "v" * 2000)]),
            body=b"x",
        )
        before = heavy.header_block_size()
        profile.pad_response(heavy)
        assert heavy.header_block_size() == before  # no pad added


class TestAgeHeader:
    def test_cached_responses_carry_age(self):
        from tests.conftest import get, make_node, make_origin

        node = make_node("gcore", make_origin(1000))
        first = get(node)
        second = get(node)
        assert "Age" not in first.headers  # fresh fetch
        assert second.headers.get("Age") == "0"  # cache hit, t=0
