"""Unit tests for the CDN node pipeline (vendor-independent behavior).

These use the G-Core profile (plain Deletion, coalescing replies, no
special flows) as the "generic CDN" and Akamai/StackPath for the
honor-overlap paths.
"""

import pytest

from repro.cdn.cache import CdnCache
from repro.cdn.vendors.base import VendorConfig
from repro.http.multipart import MultipartByteranges
from repro.netsim.tap import CDN_ORIGIN

from tests.conftest import get, make_node, make_origin


class TestBasicProxying:
    def test_plain_request_proxied(self):
        node = make_node("gcore", make_origin(1000))
        response = get(node)
        assert response.status == 200
        assert len(response.body) == 1000
        assert response.headers.get("Server") == "nginx"

    def test_404_relayed(self):
        node = make_node("gcore", make_origin(1000))
        response = get(node, target="/missing.bin")
        assert response.status == 404

    def test_response_advertises_ranges_even_if_origin_does_not(self):
        """Paper §III-B: all 13 CDNs answer 206 with Accept-Ranges even
        when the origin has range support disabled."""
        node = make_node("gcore", make_origin(1000, range_support=False))
        response = get(node, range_value="bytes=0-0")
        assert response.status == 206
        assert response.headers.get("Accept-Ranges") == "bytes"
        assert len(response.body) == 1

    def test_origin_validators_relayed(self):
        origin = make_origin(1000)
        node = make_node("gcore", origin)
        response = get(node)
        direct = get(origin)
        assert response.headers.get("ETag") == direct.headers.get("ETag")
        assert response.headers.get("Last-Modified") == direct.headers.get("Last-Modified")


class TestRangeServing:
    def test_single_range_served_from_full_fetch(self):
        origin = make_origin(1000)
        node = make_node("gcore", origin)
        response = get(node, range_value="bytes=10-19")
        assert response.status == 206
        assert response.headers.get("Content-Range") == "bytes 10-19/1000"
        direct = get(origin).body.materialize()
        assert response.body.materialize() == direct[10:20]

    def test_416_for_out_of_bounds(self):
        node = make_node("gcore", make_origin(1000))
        response = get(node, range_value="bytes=5000-")
        assert response.status == 416
        assert response.headers.get("Content-Range") == "bytes */1000"

    def test_multirange_coalesced_by_default(self):
        node = make_node("gcore", make_origin(1000))
        response = get(node, range_value="bytes=0-,0-,0-")
        assert response.status == 206
        # Coalesced to one part: a single-part 206, not multipart.
        assert response.headers.get("Content-Range") == "bytes 0-999/1000"

    def test_disjoint_multirange_multipart(self):
        node = make_node("akamai", make_origin(1000))
        response = get(node, range_value="bytes=0-1,10-19")
        assert response.status == 206
        assert response.content_type.startswith("multipart/byteranges")
        boundary = response.content_type.split("boundary=")[1]
        parsed = MultipartByteranges.parse(response.body.materialize(), boundary)
        assert len(parsed) == 2

    def test_honor_behavior_duplicates_overlaps(self):
        node = make_node("akamai", make_origin(1000))
        response = get(node, range_value="bytes=0-,0-,0-")
        assert response.status == 206
        assert len(response.body) > 3000  # three full copies plus framing

    def test_malformed_range_served_full(self):
        node = make_node("gcore", make_origin(1000))
        response = get(node, range_value="bytes=banana")
        assert response.status == 200
        assert len(response.body) == 1000


class TestCacheIntegration:
    def test_second_fetch_hits_cache(self):
        origin = make_origin(1000)
        node = make_node("gcore", origin)
        get(node, range_value="bytes=0-0")
        before = node.ledger.segment_stats(CDN_ORIGIN).exchange_count
        get(node, range_value="bytes=0-0")
        after = node.ledger.segment_stats(CDN_ORIGIN).exchange_count
        assert after == before  # served from cache, no new origin fetch

    def test_cache_busting_forces_refetch(self):
        node = make_node("gcore", make_origin(1000))
        get(node, target="/file.bin?cb=0", range_value="bytes=0-0")
        get(node, target="/file.bin?cb=1", range_value="bytes=0-0")
        assert node.ledger.segment_stats(CDN_ORIGIN).exchange_count == 2

    def test_cache_disabled_by_config(self):
        node = make_node(
            "gcore", make_origin(1000), config=VendorConfig(cache_enabled=False)
        )
        get(node, range_value="bytes=0-0")
        get(node, range_value="bytes=0-0")
        assert node.ledger.segment_stats(CDN_ORIGIN).exchange_count == 2

    def test_explicit_cache_object_used(self):
        cache = CdnCache()
        node = make_node("gcore", make_origin(1000), cache=cache)
        get(node)
        assert len(cache) == 1


class TestLimitsIntegration:
    def test_oversized_request_rejected_without_forwarding(self):
        node = make_node("akamai", make_origin(1000))  # 32 KB total limit
        response = get(node, range_value="bytes=" + "0-," * 20000 + "0-")
        assert response.status == 431
        assert node.ledger.segment_stats(CDN_ORIGIN).exchange_count == 0


class TestTrafficAccounting:
    def test_deletion_pulls_full_resource(self):
        node = make_node("gcore", make_origin(100_000))
        response = get(node, range_value="bytes=0-0")
        origin_bytes = node.ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered
        assert origin_bytes > 100_000
        assert response.wire_size() < 1000

    def test_origin_receives_no_range_header_under_deletion(self):
        origin = make_origin(1000)
        node = make_node("gcore", origin)
        get(node, range_value="bytes=0-0")
        assert origin.stats.full_responses == 1
        assert origin.stats.partial_responses == 0
