"""Tests for the vendor behavior matrix — including the cross-check
against the feasibility experiment's independent measurement path."""

import pytest

from repro.cdn.policy import ForwardPolicy
from repro.cdn.vendors import all_vendor_names
from repro.cdn.vendors.matrix import (
    PROBE_CASES,
    behavior_matrix,
    obr_frontend_vendors,
    sbr_vulnerable_vendors,
    stateful_second_request_policies,
)
from repro.reporting.paper_values import PAPER_OBR_FRONTENDS, PAPER_SBR_VULNERABLE


class TestMatrixStructure:
    def test_full_coverage(self):
        matrix = behavior_matrix()
        assert set(matrix) == set(all_vendor_names())
        for row in matrix.values():
            assert set(row) == set(PROBE_CASES)

    def test_deterministic(self):
        assert behavior_matrix() == behavior_matrix()


class TestPaperMembershipFromMatrix:
    def test_sbr_vulnerable_matches_table1(self):
        assert sbr_vulnerable_vendors() == tuple(sorted(PAPER_SBR_VULNERABLE))

    def test_obr_frontends_match_table2(self):
        assert obr_frontend_vendors() == tuple(sorted(PAPER_OBR_FRONTENDS))

    def test_obr_frontends_without_bypass_excludes_cloudflare(self):
        assert "cloudflare" not in obr_frontend_vendors(include_bypass=False)


class TestSpotChecks:
    def test_azure_size_dependence_visible(self):
        matrix = behavior_matrix()
        azure = matrix["azure"]
        # Azure deletes in both regimes (the dual-connection behavior is
        # a fetch-flow detail, not a decision-table one).
        assert azure["first-last (small file)"].policy is ForwardPolicy.DELETION

    def test_huawei_size_dependence_visible(self):
        huawei = behavior_matrix()["huawei"]
        assert huawei["-suffix (small file)"].policy is ForwardPolicy.DELETION
        assert huawei["-suffix (large file)"].policy is ForwardPolicy.LAZINESS
        assert huawei["first-last (large file)"].policy is ForwardPolicy.DELETION
        assert huawei["first-last (small file)"].policy is ForwardPolicy.LAZINESS

    def test_cloudfront_expansion_values(self):
        cloudfront = behavior_matrix()["cloudfront"]
        cell = cloudfront["first-last (small file)"]
        assert cell.policy is ForwardPolicy.EXPANSION
        assert cell.forwarded_range == "bytes=0-1048575"

    def test_keycdn_stateful_quirk(self):
        second = stateful_second_request_policies()
        assert second["keycdn"] is ForwardPolicy.DELETION
        # Stateless vendors give the same answer twice.
        assert second["gcore"] is ForwardPolicy.DELETION
        assert second["tencent"] is ForwardPolicy.DELETION


class TestCrossValidationAgainstFeasibility:
    """The matrix (decision-level) and the feasibility probe
    (traffic-level) must classify identically — two measurement paths,
    one truth."""

    @pytest.fixture(scope="class")
    def feasibility(self):
        from repro.core.feasibility import survey

        return survey(file_size=16 * 1024)

    def test_sbr_membership_agrees(self, feasibility):
        from_probe = {v for v, r in feasibility.items() if r.sbr_vulnerable}
        assert from_probe == set(sbr_vulnerable_vendors())

    def test_fcdn_membership_agrees(self, feasibility):
        from_probe = {v for v, r in feasibility.items() if r.obr_fcdn_vulnerable}
        assert from_probe == set(obr_frontend_vendors())
