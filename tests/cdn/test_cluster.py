"""Tests for multi-node edge clusters."""

import pytest

from repro.cdn.cluster import ROTATE, URL_HASH, EdgeCluster
from repro.errors import ConfigurationError
from repro.http.message import HttpRequest
from repro.netsim.tap import CDN_ORIGIN

from tests.conftest import make_origin


def _request(target="/file.bin", range_value=None):
    headers = [("Host", "victim.example")]
    if range_value is not None:
        headers.append(("Range", range_value))
    return HttpRequest("GET", target, headers=headers)


class TestConstruction:
    def test_nodes_have_independent_caches_and_profiles(self):
        cluster = EdgeCluster("keycdn", make_origin(), node_count=3)
        profiles = {id(node.profile) for node in cluster.nodes}
        caches = {id(node.cache) for node in cluster.nodes}
        assert len(profiles) == 3
        assert len(caches) == 3

    def test_shared_ledger(self):
        cluster = EdgeCluster("gcore", make_origin(), node_count=3)
        assert all(node.ledger is cluster.ledger for node in cluster.nodes)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            EdgeCluster("gcore", make_origin(), node_count=0)
        with pytest.raises(ConfigurationError):
            EdgeCluster("gcore", make_origin(), selection="random")


class TestRotateSelection:
    def test_round_robin(self):
        cluster = EdgeCluster("gcore", make_origin(), node_count=3, selection=ROTATE)
        picked = [cluster.node_for(_request()) for _ in range(6)]
        assert picked[0:3] == picked[3:6]
        assert len(set(id(n) for n in picked[0:3])) == 3

    def test_same_url_misses_every_node_cache(self):
        """The §V-D attacker methodology: hitting different ingress nodes
        multiplies origin fetches even without cache busting."""
        origin = make_origin(10_000)
        cluster = EdgeCluster("gcore", origin, node_count=4, selection=ROTATE)
        for _ in range(4):
            cluster.handle(_request(range_value="bytes=0-0"))
        assert cluster.origin_fetches() == 4
        # Second sweep: every node now has it cached.
        for _ in range(4):
            cluster.handle(_request(range_value="bytes=0-0"))
        assert cluster.origin_fetches() == 4

    def test_served_per_node_balanced(self):
        cluster = EdgeCluster("gcore", make_origin(), node_count=4)
        for _ in range(12):
            cluster.handle(_request())
        assert cluster.served_per_node() == [3, 3, 3, 3]


class TestUrlHashSelection:
    def test_same_url_sticks_to_one_node(self):
        origin = make_origin(10_000)
        cluster = EdgeCluster("gcore", origin, node_count=4, selection=URL_HASH)
        for _ in range(8):
            cluster.handle(_request(range_value="bytes=0-0"))
        # Affinity: one origin fetch, then seven cache hits.
        assert cluster.origin_fetches() == 1
        assert sorted(cluster.served_per_node(), reverse=True)[0] == 8

    def test_different_urls_spread(self):
        origin = make_origin(10_000)
        cluster = EdgeCluster("gcore", origin, node_count=4, selection=URL_HASH)
        for index in range(32):
            cluster.handle(_request(target=f"/file.bin?cb={index}"))
        used = sum(1 for count in cluster.served_per_node() if count > 0)
        assert used >= 3

    def test_selection_is_deterministic(self):
        cluster = EdgeCluster("gcore", make_origin(), node_count=4, selection=URL_HASH)
        first = cluster.node_for(_request("/a"))
        second = cluster.node_for(_request("/a"))
        assert first is second


class TestKeycdnStateIsPerEdge:
    def test_second_request_at_different_node_stays_lazy(self):
        """KeyCDN's request memory lives on each edge: spreading the two
        sends across nodes does not trigger the deletion fetch."""
        origin = make_origin(100_000)
        cluster = EdgeCluster("keycdn", origin, node_count=2, selection=ROTATE)
        cluster.handle(_request(range_value="bytes=0-0"))
        cluster.handle(_request(range_value="bytes=0-0"))
        # Both landed on different nodes -> both lazy 206s, no full fetch.
        assert origin.stats.full_responses == 0
        assert origin.stats.partial_responses == 2
