"""Model-based (stateful) testing of the edge cache.

Hypothesis drives random sequences of put/get/purge/clock-advance
operations against both the real cache and a trivial reference model;
any divergence is a bug.  This catches interaction bugs (eviction ×
expiry × replacement) that example-based tests miss.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.cdn.cache import CdnCache
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.clock import SimClock

MAX_ENTRIES = 4

_keys = st.sampled_from([f"/r{i}" for i in range(8)])
_ttls = st.one_of(st.none(), st.integers(min_value=1, max_value=20))


def _request(target):
    return HttpRequest("GET", target, headers=[("Host", "h")])


def _response(marker, ttl):
    headers = [("Content-Length", "4"), ("X-Marker", marker)]
    if ttl is not None:
        headers.append(("Cache-Control", f"max-age={ttl}"))
    return HttpResponse(200, headers=headers, body=b"data")


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = SimClock()
        self.cache = CdnCache(max_entries=MAX_ENTRIES, clock=self.clock)
        # Reference model: key -> (marker, expires_at or None), FIFO order.
        self.model = {}
        self.counter = 0

    @rule(key=_keys, ttl=_ttls)
    def put(self, key, ttl):
        marker = f"m{self.counter}"
        self.counter += 1
        stored = self.cache.put(_request(key), _response(marker, ttl))
        assert stored  # always cacheable in this machine
        model_key = ("h", key)
        if model_key not in self.model and len(self.model) >= MAX_ENTRIES:
            # FIFO eviction of the oldest insertion.
            oldest = next(iter(self.model))
            del self.model[oldest]
        expires = None if ttl is None else self.clock.now + ttl
        # Replacement keeps the original FIFO position (OrderedDict
        # semantics without move_to_end).
        if model_key in self.model:
            self.model[model_key] = (marker, expires)
        else:
            self.model[model_key] = (marker, expires)

    @rule(key=_keys)
    def get(self, key):
        model_key = ("h", key)
        expected = self.model.get(model_key)
        if expected is not None:
            marker, expires = expected
            if expires is not None and self.clock.now >= expires:
                del self.model[model_key]
                expected = None
        actual = self.cache.get(_request(key))
        if expected is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual.headers.get("X-Marker") == expected[0]

    @rule(delta=st.integers(min_value=1, max_value=15))
    def advance_clock(self, delta):
        self.clock.advance(float(delta))

    @rule()
    def purge(self):
        self.cache.purge()
        self.model.clear()

    @invariant()
    def size_bounded(self):
        assert len(self.cache) <= MAX_ENTRIES

    @invariant()
    def stats_consistent(self):
        stats = self.cache.stats
        assert stats.lookups == stats.hits + stats.misses
        assert stats.evictions >= 0


CacheMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestCacheModel = CacheMachine.TestCase
