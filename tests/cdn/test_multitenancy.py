"""Multi-tenant isolation: one edge, many customer hosts.

A CDN edge serves many customers; cache entries and attack traffic must
stay per-tenant.  The OBR threat model depends on this working — the
attacker is "a malicious customer" whose configuration must not leak
onto other tenants.
"""

from repro.cdn.node import CdnNode
from repro.cdn.vendors import create_profile
from repro.http.message import HttpRequest
from repro.netsim.tap import CDN_ORIGIN, TrafficLedger
from repro.origin.resource import Resource
from repro.origin.server import OriginServer


def _multi_tenant_origin():
    """One origin standing in for two tenants' back-ends."""
    origin = OriginServer()
    origin.add_resource(Resource(path="/a.bin", body=b"tenant-a" * 100))
    origin.add_resource(Resource(path="/b.bin", body=b"tenant-b" * 100))
    return origin


def _get(node, host, target):
    return node.handle(
        HttpRequest("GET", target, headers=[("Host", host)])
    )


class TestCacheIsolation:
    def test_same_path_different_hosts_cached_separately(self):
        origin = OriginServer()
        origin.add_resource(Resource(path="/logo.png", body=b"shared-path" * 10))
        node = CdnNode(create_profile("gcore"), origin, ledger=TrafficLedger())
        _get(node, "tenant-a.example", "/logo.png")
        _get(node, "tenant-b.example", "/logo.png")
        # Two cache entries, two origin fetches: no cross-tenant reuse.
        assert len(node.cache) == 2
        assert node.ledger.segment_stats(CDN_ORIGIN).exchange_count == 2

    def test_tenant_hit_does_not_serve_other_tenant(self):
        node = CdnNode(create_profile("gcore"), _multi_tenant_origin(), ledger=TrafficLedger())
        a = _get(node, "a.example", "/a.bin")
        b = _get(node, "b.example", "/b.bin")
        assert a.body.materialize() != b.body.materialize()
        # Repeat hits return each tenant's own bytes.
        assert _get(node, "a.example", "/a.bin").body.materialize() == a.body.materialize()


class TestAttackBlastRadius:
    def test_attack_on_one_tenant_leaves_the_others_cache_warm(self):
        origin = _multi_tenant_origin()
        node = CdnNode(create_profile("gcore"), origin, ledger=TrafficLedger())
        # Tenant B's object gets cached by normal traffic.
        _get(node, "b.example", "/b.bin")
        fetches_before = node.ledger.segment_stats(CDN_ORIGIN).exchange_count
        # Attacker hammers tenant A with cache-busted SBR requests.
        for index in range(20):
            node.handle(
                HttpRequest(
                    "GET",
                    f"/a.bin?cb={index}",
                    headers=[("Host", "a.example"), ("Range", "bytes=0-0")],
                )
            )
        # Tenant B is still served from cache.
        _get(node, "b.example", "/b.bin")
        fetches_after = node.ledger.segment_stats(CDN_ORIGIN).exchange_count
        assert fetches_after == fetches_before + 20  # only the attack fetched
