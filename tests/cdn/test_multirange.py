"""Unit tests for multi-range reply behaviors (Table III semantics)."""

import pytest

from repro.cdn.multirange import MultiRangeReplyBehavior, apply_reply_behavior
from repro.errors import RangeNotSatisfiableError
from repro.http.ranges import ResolvedRange

OVERLAPPING = [ResolvedRange(0, 9), ResolvedRange(0, 9), ResolvedRange(0, 9)]
DISJOINT = [ResolvedRange(0, 1), ResolvedRange(5, 6)]


class TestHonor:
    def test_keeps_overlapping_duplicates(self):
        parts = apply_reply_behavior(MultiRangeReplyBehavior.HONOR, OVERLAPPING, 10)
        assert parts == OVERLAPPING

    def test_keeps_order(self):
        ranges = [ResolvedRange(5, 6), ResolvedRange(0, 1)]
        assert apply_reply_behavior(MultiRangeReplyBehavior.HONOR, ranges, 10) == ranges


class TestCoalesce:
    def test_merges_overlapping(self):
        parts = apply_reply_behavior(MultiRangeReplyBehavior.COALESCE, OVERLAPPING, 10)
        assert parts == [ResolvedRange(0, 9)]

    def test_keeps_disjoint(self):
        parts = apply_reply_behavior(MultiRangeReplyBehavior.COALESCE, DISJOINT, 10)
        assert parts == DISJOINT


class TestFirstOnly:
    def test_serves_first(self):
        parts = apply_reply_behavior(MultiRangeReplyBehavior.FIRST_ONLY, DISJOINT, 10)
        assert parts == [ResolvedRange(0, 1)]


class TestReject:
    def test_multi_rejected(self):
        with pytest.raises(RangeNotSatisfiableError):
            apply_reply_behavior(MultiRangeReplyBehavior.REJECT, DISJOINT, 10)

    def test_single_range_always_passes(self):
        single = [ResolvedRange(0, 1)]
        for behavior in MultiRangeReplyBehavior:
            assert apply_reply_behavior(behavior, single, 10) == single


class TestMaxParts:
    def test_azure_64_limit(self):
        ranges = [ResolvedRange(0, 9)] * 64
        parts = apply_reply_behavior(
            MultiRangeReplyBehavior.HONOR, ranges, 10, max_parts=64
        )
        assert len(parts) == 64
        with pytest.raises(RangeNotSatisfiableError):
            apply_reply_behavior(
                MultiRangeReplyBehavior.HONOR, ranges + [ResolvedRange(0, 9)], 10,
                max_parts=64,
            )

    def test_limit_applies_after_coalescing(self):
        # 100 overlapping ranges coalesce to one part: within any limit.
        ranges = [ResolvedRange(0, 9)] * 100
        parts = apply_reply_behavior(
            MultiRangeReplyBehavior.COALESCE, ranges, 10, max_parts=2
        )
        assert len(parts) == 1


class TestValidation:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            apply_reply_behavior(MultiRangeReplyBehavior.HONOR, [], 10)
