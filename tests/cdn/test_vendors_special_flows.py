"""Integration tests for the vendors with multi-connection fetch flows:
Azure (8 MB cut + expansion window), StackPath (re-forward after 206),
KeyCDN (second-request deletion), and the Table III reply behaviors.
"""

import pytest

from repro.cdn.vendors.azure import DEFAULT_ABORT_SLOP, EIGHT_MB
from repro.netsim.tap import CDN_ORIGIN

from tests.conftest import get, make_node, make_origin

MB = 1 << 20


class TestAzureFlow:
    """Paper §V-A item 2."""

    def test_small_file_single_deletion_connection(self):
        origin = make_origin(1 * MB)
        node = make_node("azure", origin)
        response = get(node, range_value="bytes=0-0")
        assert response.status == 206
        stats = node.ledger.segment_stats(CDN_ORIGIN)
        assert stats.connection_count == 1
        assert stats.response_bytes_delivered == pytest.approx(1 * MB, rel=0.01)

    def test_large_file_first_connection_cut_past_8mb(self):
        origin = make_origin(25 * MB)
        node = make_node("azure", origin)
        response = get(node, range_value="bytes=0-0")
        assert response.status == 206
        stats = node.ledger.segment_stats(CDN_ORIGIN)
        assert stats.connection_count == 1
        # Origin pushed ~8 MB + slop, not 25 MB.
        assert stats.response_bytes_delivered <= EIGHT_MB + DEFAULT_ABORT_SLOP + 2048
        assert stats.response_bytes_delivered >= EIGHT_MB

    def test_second_window_range_opens_two_connections(self):
        """The paper's F > 8MB exploited case: bytes=8388608-8388608."""
        origin = make_origin(25 * MB)
        node = make_node("azure", origin)
        response = get(node, range_value="bytes=8388608-8388608")
        assert response.status == 206
        assert len(response.body) == 1
        assert response.headers.get("Content-Range") == f"bytes 8388608-8388608/{25 * MB}"
        stats = node.ledger.segment_stats(CDN_ORIGIN)
        assert stats.connection_count == 2
        # Both connections moved ~8 MB: ~16 MB total, the Fig 6a plateau.
        assert stats.response_bytes_delivered == pytest.approx(16 * MB, rel=0.02)

    def test_origin_receives_expansion_range_on_second_connection(self):
        origin = make_origin(25 * MB)
        node = make_node("azure", origin)
        get(node, range_value="bytes=8388608-8388608")
        assert origin.stats.partial_responses == 1  # the bytes=8388608-16777215 fetch
        assert origin.stats.full_responses == 1     # the cut deletion fetch

    def test_origin_traffic_capped_for_huge_files(self):
        """Resources beyond 16 MB do not increase Azure's pull."""
        for size in (17 * MB, 25 * MB):
            node = make_node("azure", make_origin(size))
            get(node, range_value="bytes=8388608-8388608")
            delivered = node.ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered
            assert delivered == pytest.approx(16 * MB, rel=0.02)

    def test_range_count_limit(self):
        node = make_node("azure", make_origin(1000, range_support=False))
        ok = get(node, range_value="bytes=" + ",".join(["0-"] * 64))
        too_many = get(node, target="/file.bin?cb=1", range_value="bytes=" + ",".join(["0-"] * 65))
        assert ok.status == 206
        assert too_many.status == 416

    def test_honors_64_overlapping_parts(self):
        node = make_node("azure", make_origin(1000, range_support=False))
        response = get(node, range_value="bytes=" + ",".join(["0-"] * 64))
        assert response.status == 206
        assert len(response.body) > 64 * 1000

    def test_abort_slop_is_configurable(self):
        """The "a little larger than 8MB" margin is a knob."""
        from repro.cdn.node import CdnNode
        from repro.cdn.vendors.azure import AzureProfile
        from repro.netsim.tap import TrafficLedger

        tight = CdnNode(
            AzureProfile(abort_slop=1024), make_origin(25 * MB),
            ledger=TrafficLedger(),
        )
        loose = CdnNode(
            AzureProfile(abort_slop=1024 * 1024), make_origin(25 * MB),
            ledger=TrafficLedger(),
        )
        get(tight, range_value="bytes=0-0")
        get(loose, range_value="bytes=0-0")
        tight_bytes = tight.ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered
        loose_bytes = loose.ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered
        assert loose_bytes - tight_bytes == pytest.approx(1024 * 1024 - 1024, abs=10)


class TestStackpathFlow:
    """Paper §V-A item 5."""

    def test_206_triggers_refetch_without_range(self):
        origin = make_origin(100_000)
        node = make_node("stackpath", origin)
        response = get(node, range_value="bytes=0-0")
        assert response.status == 206
        assert len(response.body) == 1
        # Two upstream connections: lazy 206, then full 200.
        stats = node.ledger.segment_stats(CDN_ORIGIN)
        assert stats.connection_count == 2
        assert origin.stats.partial_responses == 1
        assert origin.stats.full_responses == 1
        assert stats.response_bytes_delivered > 100_000

    def test_refetch_resource_cached(self):
        origin = make_origin(100_000)
        node = make_node("stackpath", origin)
        get(node, range_value="bytes=0-0")
        get(node, range_value="bytes=5-9")
        # Second request served from cache: still only the two initial
        # origin exchanges.
        assert node.ledger.segment_stats(CDN_ORIGIN).exchange_count == 2

    def test_origin_200_no_refetch(self):
        origin = make_origin(100_000, range_support=False)
        node = make_node("stackpath", origin)
        response = get(node, range_value="bytes=0-0")
        assert response.status == 206
        assert node.ledger.segment_stats(CDN_ORIGIN).connection_count == 1

    def test_multirange_relayed_without_refetch(self):
        """Table II/V: multi-range requests do not trigger the second
        deletion fetch (a single back-end exchange in Table V)."""
        origin = make_origin(1000)  # range support ON: origin downgrades
        node = make_node("stackpath", origin)
        response = get(node, range_value="bytes=0-,0-,0-")
        # Apache downgrades overlapping multi-range to 200; StackPath then
        # serves the ranges itself (honor behavior).
        assert response.status == 206
        assert node.ledger.segment_stats(CDN_ORIGIN).connection_count == 1

    def test_honors_overlapping_parts(self):
        node = make_node("stackpath", make_origin(1000, range_support=False))
        response = get(node, range_value="bytes=0-,0-,0-,0-")
        assert response.status == 206
        assert len(response.body) > 4000


class TestKeycdnFlow:
    """Paper §V-A item 4, end to end."""

    def test_two_identical_requests_trigger_amplification(self):
        origin = make_origin(100_000)
        node = make_node("keycdn", origin)
        first = get(node, range_value="bytes=0-0")
        second = get(node, range_value="bytes=0-0")
        assert first.status == 206 and second.status == 206
        assert len(first.body) == 1 and len(second.body) == 1
        # First exchange was lazy (origin 206), second deletion (200 full).
        assert origin.stats.partial_responses == 1
        assert origin.stats.full_responses == 1
        assert node.ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered > 100_000

    def test_single_request_does_not_amplify(self):
        origin = make_origin(100_000)
        node = make_node("keycdn", origin)
        get(node, range_value="bytes=0-0")
        assert node.ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered < 2000


class TestAkamaiReply:
    def test_n_part_overlapping_response(self):
        node = make_node("akamai", make_origin(1024, range_support=False))
        n = 16
        response = get(node, range_value="bytes=" + ",".join(["0-"] * n))
        assert response.status == 206
        assert response.content_type.startswith("multipart/byteranges")
        assert len(response.body) > n * 1024


class TestCoalescingVendorsReply:
    @pytest.mark.parametrize(
        "vendor", ["alibaba", "cdn77", "cdnsun", "cloudflare", "cloudfront",
                   "fastly", "gcore", "huawei", "keycdn", "tencent"]
    )
    def test_overlapping_multirange_coalesced(self, vendor):
        """Vendors absent from Table III must not amplify as BCDNs."""
        node = make_node(vendor, make_origin(1024, range_support=False))
        response = get(node, range_value="bytes=0-,0-,0-,0-")
        # Coalesced to a single range: response is roughly one resource.
        assert response.status in (200, 206)
        assert len(response.body) < 2 * 1024 + 1000
