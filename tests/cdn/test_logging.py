"""Tests for pipeline debug logging."""

import logging

from tests.conftest import get, make_node, make_origin


class TestNodeLogging:
    def test_upstream_forward_logged(self, caplog):
        node = make_node("gcore", make_origin(1000))
        with caplog.at_level(logging.DEBUG, logger="repro.cdn.node"):
            get(node, range_value="bytes=0-0")
        messages = " | ".join(record.message for record in caplog.records)
        assert "gcore -> upstream GET /file.bin" in messages
        assert "forward:deletion" in messages

    def test_cache_hit_logged(self, caplog):
        node = make_node("gcore", make_origin(1000))
        get(node, range_value="bytes=0-0")
        with caplog.at_level(logging.DEBUG, logger="repro.cdn.node"):
            get(node, range_value="bytes=0-0")
        assert any("cache hit" in record.message for record in caplog.records)

    def test_rejection_logged(self, caplog):
        node = make_node("akamai", make_origin(1000))
        with caplog.at_level(logging.DEBUG, logger="repro.cdn.node"):
            get(node, range_value="bytes=" + "0-," * 20000 + "0-")
        assert any("rejected" in record.message for record in caplog.records)

    def test_silent_by_default(self, caplog):
        node = make_node("gcore", make_origin(1000))
        with caplog.at_level(logging.INFO, logger="repro.cdn.node"):
            get(node, range_value="bytes=0-0")
        assert not caplog.records
