"""Unit tests for request-header limits."""

import pytest

from repro.cdn.limits import HeaderLimits, cloudflare_rule
from repro.errors import RequestRejectedError
from repro.http.grammar import overlapping_open_ranges_value
from repro.http.message import HttpRequest


def _request(range_value=None, host="example.com", target="/x"):
    headers = [("Host", host)]
    if range_value is not None:
        headers.append(("Range", range_value))
    return HttpRequest("GET", target, headers=headers)


class TestNoLimits:
    def test_everything_passes(self):
        HeaderLimits().check(_request(range_value="bytes=" + "0-," * 100_000 + "0-"))


class TestTotalHeaderBytes:
    def test_within_limit(self):
        HeaderLimits(max_total_header_bytes=200).check(_request())

    def test_exceeding_rejected_with_431(self):
        limits = HeaderLimits(max_total_header_bytes=100)
        with pytest.raises(RequestRejectedError) as exc_info:
            limits.check(_request(range_value="x" * 200))
        assert exc_info.value.status_code == 431

    def test_boundary_is_inclusive(self):
        request = _request()
        HeaderLimits(max_total_header_bytes=request.header_block_size()).check(request)
        with pytest.raises(RequestRejectedError):
            HeaderLimits(max_total_header_bytes=request.header_block_size() - 1).check(
                request
            )


class TestSingleHeaderLine:
    def test_range_line_measured_with_name_and_crlf(self):
        # "Range: bytes=0-0\r\n" = 18 bytes; host "h" gives an 11-byte line.
        limits = HeaderLimits(max_single_header_line_bytes=18)
        limits.check(_request(range_value="bytes=0-0", host="h"))
        with pytest.raises(RequestRejectedError):
            HeaderLimits(max_single_header_line_bytes=17).check(
                _request(range_value="bytes=0-0", host="h")
            )

    def test_any_header_counts(self):
        limits = HeaderLimits(max_single_header_line_bytes=30)
        with pytest.raises(RequestRejectedError):
            limits.check(_request(host="h" * 100))


class TestMaxRanges:
    def test_azure_style_64_limit(self):
        limits = HeaderLimits(max_ranges=64)
        limits.check(_request(range_value=overlapping_open_ranges_value(64)))
        with pytest.raises(RequestRejectedError) as exc_info:
            limits.check(_request(range_value=overlapping_open_ranges_value(65)))
        assert exc_info.value.status_code == 416

    def test_no_range_header_passes(self):
        HeaderLimits(max_ranges=1).check(_request())

    def test_unparsable_range_passes(self):
        HeaderLimits(max_ranges=1).check(_request(range_value="bytes=zz"))


class TestCloudflareRule:
    def test_formula(self):
        """RL + 2*HHL + RHL must stay within the budget."""
        check = cloudflare_rule(budget=100)
        request = _request(range_value="bytes=0-0", host="h", target="/x")
        rl = request.request_line_size()
        hhl = request.headers.field_line_size("Host")
        rhl = request.headers.field_line_size("Range")
        assert rl + 2 * hhl + rhl <= 100
        assert check(request) is None

    def test_violation_message(self):
        check = cloudflare_rule(budget=50)
        request = _request(range_value="bytes=" + "0-," * 20 + "0-")
        assert check(request) is not None

    def test_no_range_header_is_exempt(self):
        check = cloudflare_rule(budget=1)
        assert check(_request()) is None

    def test_default_budget_fits_paper_n(self):
        """The paper's n=10750 Range header passes; a much larger one
        does not."""
        limits = HeaderLimits(custom=cloudflare_rule())
        limits.check(_request(range_value=overlapping_open_ranges_value(10750)))
        with pytest.raises(RequestRejectedError):
            limits.check(_request(range_value=overlapping_open_ranges_value(11000)))


class TestCombinedLimits:
    def test_all_enforced(self):
        limits = HeaderLimits(
            max_total_header_bytes=10_000,
            max_single_header_line_bytes=5_000,
            max_ranges=100,
        )
        limits.check(_request(range_value=overlapping_open_ranges_value(100)))
        with pytest.raises(RequestRejectedError):
            limits.check(_request(range_value=overlapping_open_ranges_value(101)))
