"""Fuzz-style robustness: arbitrary Range header bytes must never crash
the pipeline.

Whatever garbage (or adversarially-valid input) lands in the Range
header, every vendor must produce a structurally valid HTTP response —
parse failures degrade to 200, limit violations to 4xx, never an
exception.  This is the property a real edge's request path lives or
dies by.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdn.node import CdnNode
from repro.cdn.vendors import all_vendor_names, create_profile
from repro.http.message import HttpRequest
from repro.http.wire import parse_response
from repro.netsim.tap import TrafficLedger
from repro.origin.server import OriginServer

#: Header-legal characters (no CR/LF — those are rejected at header
#: construction, which is its own tested behavior).
_HEADER_CHARS = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    max_size=60,
)

#: Adversarially structured near-miss Range values.
_STRUCTURED = st.one_of(
    st.just("bytes="),
    st.just("bytes=-"),
    st.just("bytes=--1"),
    st.just("bytes=1-0"),
    st.just("bytes=,,,"),
    st.just("bytes=0-0," * 10 + "oops"),
    st.just("BYTES=0-0"),
    st.just("bytes = 0-0"),
    st.just("octets=0-5"),
    st.just("bytes=999999999999999999999999-"),
    st.just("bytes=0-0,-0"),
    st.builds(lambda n: "bytes=" + "-".join(["0"] * n), st.integers(2, 6)),
)

_RANGE_VALUES = st.one_of(_HEADER_CHARS, _STRUCTURED)


def _origin():
    origin = OriginServer()
    origin.add_synthetic_resource("/file.bin", 2048)
    return origin


class TestFuzzedRangeHeaders:
    @pytest.mark.parametrize("vendor", all_vendor_names())
    @given(range_value=_RANGE_VALUES)
    @settings(
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_pipeline_never_crashes(self, vendor, range_value):
        node = CdnNode(
            create_profile(vendor),
            _origin(),
            ledger=TrafficLedger(),
            size_hint_fn=lambda path: 2048,
        )
        request = HttpRequest(
            "GET", "/file.bin", headers=[("Host", "h"), ("Range", range_value)]
        )
        response = node.handle(request)
        # Structurally valid outcome only.
        assert response.status in (200, 206, 416, 429, 431, 502)
        # And wire-serializable / re-parsable.
        parsed = parse_response(response.serialize())
        assert parsed.status == response.status

    @given(range_value=_RANGE_VALUES)
    @settings(
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_cascade_never_crashes(self, range_value):
        from repro.cdn.vendors.base import VendorConfig
        from repro.core.deployment import CdnSpec, Deployment

        origin = OriginServer(range_support=False)
        origin.add_synthetic_resource("/file.bin", 1024)
        deployment = Deployment.cascade(
            CdnSpec(vendor="cloudflare", config=VendorConfig(bypass_cache=True)),
            CdnSpec(vendor="akamai"),
            origin,
        )
        result = deployment.client().get("/file.bin", range_value=range_value)
        assert result.response.status in (200, 206, 416, 429, 431, 502)

    @given(target=st.text(
        alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
        min_size=1, max_size=40,
    ))
    @settings(max_examples=50, deadline=None)
    def test_fuzzed_targets_never_crash(self, target):
        node = CdnNode(create_profile("gcore"), _origin(), ledger=TrafficLedger())
        request = HttpRequest("GET", "/" + target, headers=[("Host", "h")])
        response = node.handle(request)
        assert response.status in (200, 206, 404, 416, 431, 502)
