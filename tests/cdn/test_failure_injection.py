"""Failure-injection tests: the pipeline under unhappy conditions.

Errors must relay cleanly through CDN hops, flaky origins must not
corrupt caches, and cache pressure must not change served bytes.
"""

import pytest

from repro.cdn.cache import CdnCache
from repro.cdn.node import CdnNode
from repro.cdn.vendors import create_profile
from repro.cdn.vendors.base import VendorConfig
from repro.core.deployment import CdnSpec, Deployment
from repro.faults import FlakyOrigin
from repro.netsim.tap import TrafficLedger
from repro.origin.server import OriginServer

from tests.conftest import get, make_node, make_origin


def _node_over(handler, vendor="gcore"):
    return CdnNode(create_profile(vendor), handler, ledger=TrafficLedger())


class TestErrorRelay:
    @pytest.mark.parametrize("status", [500, 502, 503, 504])
    def test_origin_5xx_relayed_with_vendor_identity(self, status):
        flaky = FlakyOrigin(make_origin(1000), period=1, status=status)
        node = _node_over(flaky)
        response = get(node, range_value="bytes=0-0")
        assert response.status == status
        assert response.headers.get("Server") == "nginx"

    def test_error_relays_through_a_cascade(self):
        flaky = FlakyOrigin(make_origin(1000), period=1, status=503)
        deployment = Deployment.cascade(
            CdnSpec(vendor="cloudflare", config=VendorConfig(bypass_cache=True)),
            CdnSpec(vendor="akamai"),
            OriginServer(),  # placeholder, replaced below
        )
        # Rewire the BCDN onto the flaky origin directly.
        deployment.nodes[1].upstream = flaky
        result = deployment.client().get("/file.bin", range_value="bytes=0-,0-")
        assert result.response.status == 503

    def test_404_not_cached(self):
        origin = make_origin(1000)
        node = make_node("gcore", origin)
        get(node, target="/missing.bin")
        get(node, target="/missing.bin")
        assert origin.stats.requests == 2  # both reached the origin
        assert len(node.cache) == 0


class TestFlakyOriginRecovery:
    def test_alternating_failures_do_not_poison_the_cache(self):
        origin = make_origin(1000)
        flaky = FlakyOrigin(origin, period=2, status=503)
        node = _node_over(flaky)
        statuses = [
            get(node, target=f"/file.bin?cb={i}", range_value="bytes=0-0").status
            for i in range(6)
        ]
        # Odd requests succeed, even ones see the 503.
        assert statuses == [206, 503, 206, 503, 206, 503]
        # Successful responses stayed byte-correct throughout.
        good = get(node, target="/file.bin?cb=100", range_value="bytes=5-9")
        assert good.status == 206
        assert len(good.body) == 5

    def test_azure_flow_degrades_cleanly_on_second_connection_failure(self):
        """If the expansion fetch fails, Azure falls back to the first
        (truncated) window; a range inside it still gets served."""
        origin = make_origin(25 * 1024 * 1024)
        flaky = FlakyOrigin(origin, period=2, status=503)  # 2nd exchange fails
        node = _node_over(flaky, vendor="azure")
        response = get(node, range_value="bytes=0-0")
        assert response.status == 206
        assert len(response.body) == 1


class TestCachePressure:
    def test_eviction_storm_preserves_correctness(self):
        origin = OriginServer()
        content = bytes(i % 256 for i in range(4096))
        from repro.origin.resource import Resource

        origin.add_resource(Resource(path="/file.bin", body=content))
        node = CdnNode(
            create_profile("gcore"),
            origin,
            ledger=TrafficLedger(),
            cache=CdnCache(max_entries=2),
        )
        # Many distinct URLs churn the 2-entry cache.
        for index in range(20):
            response = get(node, target=f"/file.bin?v={index}", range_value="bytes=10-19")
            assert response.body.materialize() == content[10:20]
        assert node.cache.stats.evictions >= 17
        assert len(node.cache) == 2

    def test_cache_hit_after_eviction_refetches(self):
        origin = make_origin(1000)
        node = CdnNode(
            create_profile("gcore"),
            origin,
            ledger=TrafficLedger(),
            cache=CdnCache(max_entries=1),
        )
        get(node, target="/file.bin?v=0")
        get(node, target="/file.bin?v=1")  # evicts v=0
        get(node, target="/file.bin?v=0")  # must refetch
        assert origin.stats.requests == 3
