"""Smoke tests: every example script must run to completion.

Examples are the documentation users actually execute; a broken one is
a broken deliverable.  Each runs in-process via runpy with controlled
argv (and the faster variants where a script offers one).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *argv: str, capsys=None):
    old_argv = sys.argv
    sys.argv = [script, *argv]
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamplesRun:
    def test_quickstart(self, capsys):
        _run("quickstart.py")
        output = capsys.readouterr().out
        assert "amplification" in output
        assert "paper" in output

    def test_feasibility_survey(self, capsys):
        _run("feasibility_survey.py")
        output = capsys.readouterr().out
        assert "Table I" in output and "Table III" in output

    def test_mitigation_eval(self, capsys):
        _run("mitigation_eval.py")
        output = capsys.readouterr().out
        assert "SUSPICIOUS" in output
        assert "Laziness" in output

    def test_segmented_download(self, capsys):
        _run("segmented_download.py")
        output = capsys.readouterr().out
        assert output.count("integrity: OK") == 2

    def test_sbr_attack_demo_with_vendor(self, capsys):
        _run("sbr_attack_demo.py", "akamai")
        output = capsys.readouterr().out
        assert "Fig 6a curve for akamai" in output
        assert "Cache busting" in output

    def test_obr_cascade_demo_walkthrough(self, capsys):
        _run("obr_cascade_demo.py", "cdn77", "azure")
        output = capsys.readouterr().out
        assert "max n = 64" in output

    def test_attack_economics(self, capsys):
        _run("attack_economics.py")
        output = capsys.readouterr().out
        assert "victim bill" in output or "victim traffic" in output

    def test_full_reproduction_quick(self, tmp_path, capsys):
        _run("full_reproduction.py", str(tmp_path / "report"), "--quick")
        output = capsys.readouterr().out
        assert "wrote" in output
        assert (tmp_path / "report" / "table4_sbr_factors.md").exists()

    def test_bandwidth_flood(self, capsys):
        _run("bandwidth_flood.py")
        output = capsys.readouterr().out
        assert "pins at capacity from m =" in output

    def test_sbr_demo_rejects_unknown_vendor(self):
        with pytest.raises(SystemExit):
            _run("sbr_attack_demo.py", "notacdn")
