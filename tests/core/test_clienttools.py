"""Tests for the benign range clients (segmented download + resume)."""

import pytest

from repro.cdn.vendors.base import VendorConfig
from repro.clienttools.downloader import (
    DownloadError,
    ResumingDownload,
    SegmentedDownloader,
    _parse_retry_after,
)
from repro.core.deployment import CdnSpec, Deployment
from repro.faults import FlakyOrigin
from repro.netsim.tap import CDN_ORIGIN
from repro.origin.resource import Resource
from repro.origin.server import OriginServer

CONTENT = bytes((i * 13 + 5) % 256 for i in range(100_000))


def _deployment(vendor="gcore", range_support=True):
    origin = OriginServer(range_support=range_support)
    origin.add_resource(Resource(path="/file.bin", body=CONTENT))
    return Deployment.single(vendor, origin)


def _flaky_deployment(period=2):
    """A bypass-cache CDN over an origin that 503s every period-th hit."""
    origin = OriginServer()
    origin.add_resource(Resource(path="/file.bin", body=CONTENT))
    deployment = Deployment.single(
        CdnSpec(vendor="gcore", config=VendorConfig(bypass_cache=True)), origin
    )
    node = deployment.nodes[-1]
    node.upstream = FlakyOrigin(node.upstream, period=period)
    return deployment


class TestPlan:
    def test_even_split(self):
        downloader = SegmentedDownloader(_deployment(), segments=4)
        plan = downloader.plan(100)
        assert plan == [(0, 24), (25, 49), (50, 74), (75, 99)]

    def test_uneven_split_covers_everything(self):
        downloader = SegmentedDownloader(_deployment(), segments=3)
        plan = downloader.plan(100)
        assert plan[0][0] == 0
        assert plan[-1][1] == 99
        covered = sum(end - start + 1 for start, end in plan)
        assert covered == 100
        for (_, a_end), (b_start, _) in zip(plan, plan[1:]):
            assert b_start == a_end + 1

    def test_more_segments_than_bytes(self):
        plan = SegmentedDownloader(_deployment(), segments=10).plan(3)
        assert plan == [(0, 0), (1, 1), (2, 2)]

    def test_empty_resource(self):
        assert SegmentedDownloader(_deployment()).plan(0) == []

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            SegmentedDownloader(_deployment(), segments=0)


class TestSegmentedDownload:
    @pytest.mark.parametrize("vendor", ["gcore", "cloudflare", "akamai", "stackpath"])
    def test_round_trip_through_cdns(self, vendor):
        deployment = _deployment(vendor)
        report = SegmentedDownloader(deployment, segments=5).download("/file.bin")
        assert report.content == CONTENT
        assert report.total_length == len(CONTENT)
        assert report.requests_sent == 6  # probe + 5 segments

    def test_cdn_cache_absorbs_segments_after_first(self):
        """With a Deletion CDN, the first fetch fills the cache; the
        remaining segments are served locally."""
        deployment = _deployment("gcore")
        SegmentedDownloader(deployment, segments=8).download("/file.bin")
        assert deployment.ledger.segment_stats(CDN_ORIGIN).exchange_count == 1

    def test_overhead_ratio_reasonable(self):
        report = SegmentedDownloader(_deployment(), segments=4).download("/file.bin")
        assert 1.0 < report.overhead_ratio < 1.2

    def test_missing_resource_fails_cleanly(self):
        with pytest.raises(DownloadError):
            SegmentedDownloader(_deployment()).download("/missing.bin")


class TestResumingDownload:
    def test_plain_sequential_download(self):
        report = ResumingDownload(_deployment(), chunk_size=16 * 1024).download(
            "/file.bin"
        )
        assert report.content == CONTENT
        # probe + ceil(100000/16384) = 1 + 7 requests
        assert report.requests_sent == 8

    def test_interrupted_transfer_resumes_at_breakpoint(self):
        report = ResumingDownload(_deployment(), chunk_size=50_000).download(
            "/file.bin", interrupt_percent=0.4
        )
        assert report.content == CONTENT

    @pytest.mark.parametrize("percent", [0.0, 0.5, 0.99])
    def test_resume_at_any_breakpoint(self, percent):
        report = ResumingDownload(_deployment(), chunk_size=100_000).download(
            "/file.bin", interrupt_percent=percent
        )
        assert report.content == CONTENT

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ResumingDownload(_deployment(), chunk_size=0)


class TestParseRetryAfter:
    def test_delta_seconds(self):
        assert _parse_retry_after("3") == 3.0
        assert _parse_retry_after(" 2.5 ") == 2.5
        assert _parse_retry_after("0") == 0.0

    def test_absent_or_unusable_values(self):
        assert _parse_retry_after(None) is None
        assert _parse_retry_after("soon") is None
        assert _parse_retry_after("-1") is None
        assert _parse_retry_after("Fri, 07 Aug 2026 00:00:00 GMT") is None


class TestRetryAfterHonored:
    def test_segmented_download_rides_out_a_flaky_origin(self):
        """Every other origin hit 503s with Retry-After: 1; the client
        re-issues each failed segment and still assembles the file."""
        report = SegmentedDownloader(_flaky_deployment(), segments=3).download(
            "/file.bin"
        )
        assert report.content == CONTENT
        assert report.retries == 3  # one per segment
        assert report.waited_s == pytest.approx(3.0)
        assert report.requests_sent == 7  # probe + 3 x (failed + retried)

    def test_resuming_download_rides_out_a_flaky_origin(self):
        report = ResumingDownload(
            _flaky_deployment(), chunk_size=50_000
        ).download("/file.bin")
        assert report.content == CONTENT
        assert report.retries == 2  # one per chunk
        assert report.waited_s == pytest.approx(2.0)

    def test_exhausted_budget_surfaces_the_error(self):
        with pytest.raises(DownloadError, match="expected 206"):
            SegmentedDownloader(
                _flaky_deployment(), segments=3, retry_attempts=1
            ).download("/file.bin")

    def test_5xx_without_retry_after_is_final(self):
        deployment = _flaky_deployment()
        node = deployment.nodes[-1]
        node.upstream.retry_after = None  # the FlakyOrigin wrapper
        with pytest.raises(DownloadError, match="expected 206"):
            SegmentedDownloader(deployment, segments=3).download("/file.bin")

    def test_clean_path_reports_zero_retries(self):
        report = SegmentedDownloader(_deployment(), segments=4).download(
            "/file.bin"
        )
        assert report.retries == 0
        assert report.waited_s == 0.0

    def test_invalid_retry_attempts(self):
        with pytest.raises(ValueError):
            SegmentedDownloader(_deployment(), retry_attempts=0)
        with pytest.raises(ValueError):
            ResumingDownload(_deployment(), retry_attempts=0)


class TestHttp2Framing:
    def test_frame_overhead(self):
        from repro.netsim.overhead import Http2FramingModel

        model = Http2FramingModel()
        assert model.framed_size(0) == 0
        assert model.framed_size(100) == 109
        assert model.framed_size(16384) == 16384 + 9
        assert model.framed_size(16385) == 16385 + 18
        assert model.connection_setup_bytes() > 0

    def test_sbr_amplification_carries_over_to_http2(self):
        """Paper §VI-B: RangeAmp applies to HTTP/2 unchanged.

        An attacker multiplexes many requests over one HTTP/2
        connection, so the connection preface amortizes; with a reused
        client connection, framing shifts the factor by only a couple of
        percent.
        """
        from repro.core.cachebusting import CacheBuster
        from repro.core.deployment import Deployment
        from repro.netsim.overhead import Http2FramingModel
        from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN

        MB = 1 << 20

        def factor(overhead):
            origin = OriginServer()
            origin.add_synthetic_resource("/big.bin", 10 * MB)
            deployment = Deployment.single("akamai", origin, overhead=overhead)
            client = deployment.client(reuse_connection=True)
            buster = CacheBuster()
            for _ in range(50):
                client.get(buster.bust("/big.bin"), range_value="bytes=0-0")
            return (
                deployment.response_traffic(CDN_ORIGIN)
                / deployment.response_traffic(CLIENT_CDN)
            )

        plain = factor(None)
        framed = factor(Http2FramingModel())
        assert framed == pytest.approx(plain, rel=0.03)
        assert framed < plain  # framing can only help the defender, barely
