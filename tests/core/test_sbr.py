"""Integration tests for the SBR attack (paper §IV-B, §V-B, Table IV,
Fig 6).

The amplification factors are checked against Table IV with explicit
tolerances: the simulator reproduces the paper's response-header weights
and forwarding flows, so factors land within a few percent; the plateau
vendors (Azure, CloudFront) get a wider band because their cut-off
arithmetic differs slightly from the authors' testbed timing.
"""

import pytest

from repro.core.sbr import SbrAttack, exploited_range_cases, sweep_resource_sizes
from repro.errors import ConfigurationError
from repro.cdn.vendors import all_vendor_names
from repro.cdn.vendors.base import VendorConfig
from repro.reporting.paper_values import PAPER_TABLE4_FACTORS

MB = 1 << 20

#: Relative tolerance per vendor against Table IV factors.
_TOLERANCE = {"azure": 0.15, "cloudfront": 0.20, "keycdn": 0.10}
_DEFAULT_TOLERANCE = 0.08


class TestExploitedCases:
    def test_every_vendor_has_a_case(self):
        for vendor in all_vendor_names():
            cases = exploited_range_cases(vendor, 10 * MB)
            assert cases
            assert all(value.startswith("bytes=") for value in cases)

    def test_keycdn_sends_twice(self):
        assert exploited_range_cases("keycdn", 1 * MB) == ["bytes=0-0", "bytes=0-0"]

    def test_azure_switches_at_8mb(self):
        assert exploited_range_cases("azure", 8 * MB) == ["bytes=0-0"]
        assert exploited_range_cases("azure", 9 * MB) == ["bytes=8388608-8388608"]

    def test_huawei_switches_at_10mb(self):
        assert exploited_range_cases("huawei", 9 * MB) == ["bytes=-1"]
        assert exploited_range_cases("huawei", 10 * MB) == ["bytes=0-0"]

    def test_unknown_vendor_rejected(self):
        with pytest.raises(ConfigurationError):
            exploited_range_cases("notacdn", 1 * MB)


class TestSingleRun:
    def test_result_fields_consistent(self):
        result = SbrAttack("gcore", resource_size=1 * MB).run()
        assert result.vendor == "gcore"
        assert result.resource_size == 1 * MB
        assert result.origin_traffic > 1 * MB
        assert result.client_traffic < 2000
        assert result.amplification == pytest.approx(
            result.origin_traffic / result.client_traffic
        )
        assert all(status == 206 for status in result.statuses)

    def test_runs_are_independent(self):
        first = SbrAttack("gcore", resource_size=1 * MB).run()
        second = SbrAttack("gcore", resource_size=1 * MB).run()
        assert first.origin_traffic == second.origin_traffic
        assert first.amplification == second.amplification

    def test_multiple_rounds_scale_linearly(self):
        one = SbrAttack("gcore", resource_size=1 * MB).run(rounds=1)
        five = SbrAttack("gcore", resource_size=1 * MB).run(rounds=5)
        assert five.origin_traffic == 5 * one.origin_traffic
        assert five.amplification == pytest.approx(one.amplification, rel=0.01)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            SbrAttack("gcore").run(rounds=0)


class TestPaperFactors:
    """Table IV reproduction."""

    @pytest.mark.parametrize("vendor", all_vendor_names())
    @pytest.mark.parametrize("size", [1 * MB, 10 * MB, 25 * MB])
    def test_factor_matches_table4(self, vendor, size):
        paper = PAPER_TABLE4_FACTORS[vendor][size]
        measured = SbrAttack(vendor, resource_size=size).run().amplification
        tolerance = _TOLERANCE.get(vendor, _DEFAULT_TOLERANCE)
        assert measured == pytest.approx(paper, rel=tolerance), (
            f"{vendor} at {size // MB} MB: measured {measured:.0f}, "
            f"paper {paper}"
        )

    def test_all_13_vendors_amplify_above_500x_at_1mb(self):
        """Table I's headline: every examined CDN is SBR-vulnerable."""
        for vendor in all_vendor_names():
            result = SbrAttack(vendor, resource_size=1 * MB).run()
            assert result.amplification > 500, vendor


class TestShape:
    def test_factor_grows_with_resource_size(self):
        """Fig 6a: amplification is basically proportional to size."""
        results = sweep_resource_sizes("akamai", [1 * MB, 5 * MB, 10 * MB])
        factors = [r.amplification for r in results]
        assert factors[0] < factors[1] < factors[2]
        # Near-proportional growth.
        assert factors[2] / factors[0] == pytest.approx(10, rel=0.1)

    def test_client_traffic_flat_and_small(self):
        """Fig 6b: the client side stays under ~1500 bytes per request."""
        for size in (1 * MB, 10 * MB, 25 * MB):
            result = SbrAttack("akamai", resource_size=size).run()
            assert result.client_traffic <= 1500

    def test_azure_plateau_at_16mb(self):
        """Fig 6a: Azure's origin pull is capped near 16 MB."""
        at_17 = SbrAttack("azure", resource_size=17 * MB).run()
        at_25 = SbrAttack("azure", resource_size=25 * MB).run()
        assert at_17.origin_traffic == pytest.approx(at_25.origin_traffic, rel=0.01)
        assert at_25.origin_traffic == pytest.approx(16 * MB, rel=0.02)

    def test_cloudfront_plateau_at_10mb(self):
        """Fig 6a: CloudFront's factor stops growing past 10 MB."""
        at_10 = SbrAttack("cloudfront", resource_size=10 * MB).run()
        at_25 = SbrAttack("cloudfront", resource_size=25 * MB).run()
        assert at_25.amplification == pytest.approx(at_10.amplification, rel=0.02)

    def test_keycdn_has_largest_client_traffic(self):
        """Fig 6b: KeyCDN's two-request pattern doubles the client side."""
        keycdn = SbrAttack("keycdn", resource_size=10 * MB).run().client_traffic
        others = [
            SbrAttack(v, resource_size=10 * MB).run().client_traffic
            for v in ("akamai", "cloudflare", "gcore")
        ]
        assert keycdn > max(others)


class TestConfigGates:
    """The (*) rows of Table I: safe configurations do not amplify."""

    def test_alibaba_range_option_enable_stops_attack(self):
        result = SbrAttack(
            "alibaba",
            resource_size=1 * MB,
            config=VendorConfig(origin_range_option=True),
        ).run()
        assert result.amplification < 5

    def test_tencent_range_option_enable_stops_attack(self):
        result = SbrAttack(
            "tencent",
            resource_size=1 * MB,
            config=VendorConfig(origin_range_option=True),
        ).run()
        assert result.amplification < 5

    def test_huawei_range_option_disable_stops_attack(self):
        result = SbrAttack(
            "huawei",
            resource_size=1 * MB,
            config=VendorConfig(origin_range_option=False),
        ).run()
        assert result.amplification < 5

    def test_cloudflare_noncacheable_path_stops_attack(self):
        result = SbrAttack(
            "cloudflare",
            resource_size=1 * MB,
            config=VendorConfig(cacheable=False),
        ).run()
        assert result.amplification < 5
