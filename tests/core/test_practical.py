"""Integration tests for the bandwidth experiment (paper §V-D, Fig 7)."""

import pytest

from repro.core.practical import BandwidthAttackSimulation
from repro.reporting.paper_values import (
    PAPER_FIG7_FULL_SATURATION_M,
    PAPER_FIG7_NEAR_SATURATION_M,
)

MB = 1 << 20


@pytest.fixture(scope="module")
def simulation():
    return BandwidthAttackSimulation(vendor="cloudflare", resource_size=10 * MB)


class TestPerRequestTraffic:
    def test_measured_once_and_cached(self, simulation):
        first = simulation.per_request_traffic()
        second = simulation.per_request_traffic()
        assert first == second

    def test_per_request_sizes_are_sbr_shaped(self, simulation):
        origin_bytes, client_bytes = simulation.per_request_traffic()
        assert origin_bytes == pytest.approx(10 * MB, rel=0.01)
        assert client_bytes < 1500


class TestSingleRun:
    def test_low_m_proportional(self, simulation):
        """Fig 7b: below saturation, throughput is ~m x 84 Mbps."""
        result = simulation.run(3)
        expected = 3 * simulation.per_request_traffic()[0] * 8 / 1e6
        assert result.steady_origin_mbps == pytest.approx(expected, rel=0.05)
        assert not result.saturated

    def test_high_m_pins_uplink(self, simulation):
        """Fig 7b: m = 14 exhausts the 1000 Mbps uplink."""
        result = simulation.run(14)
        assert result.saturated
        assert result.steady_origin_mbps == pytest.approx(1000.0, rel=0.03)

    def test_throughput_never_exceeds_capacity(self, simulation):
        result = simulation.run(15)
        assert max(result.origin_mbps) <= 1000.0 * 1.001

    def test_client_incoming_stays_tiny(self, simulation):
        """Fig 7a: client incoming bandwidth below 500 Kbps for any m."""
        for m in (1, 8, 15):
            result = simulation.run(m)
            assert result.peak_client_kbps < 500.0

    def test_zero_m_is_quiet(self, simulation):
        result = simulation.run(0)
        assert result.steady_origin_mbps == 0.0

    def test_negative_m_rejected(self, simulation):
        with pytest.raises(ValueError):
            simulation.run(-1)


class TestSweepShape:
    def test_saturation_threshold_matches_paper_band(self, simulation):
        """The paper reports near-saturation from m = 11 and complete
        exhaustion from m = 14; our crossover must land in that band."""
        threshold = simulation.saturation_threshold()
        assert threshold is not None
        assert (
            PAPER_FIG7_NEAR_SATURATION_M
            <= threshold
            <= PAPER_FIG7_FULL_SATURATION_M
        )

    def test_monotone_growth_then_plateau(self, simulation):
        results = simulation.sweep(ms=(2, 6, 10, 14, 15))
        steady = [r.steady_origin_mbps for r in results]
        assert steady == sorted(steady)
        # Plateau: 14 and 15 within a percent of each other.
        assert steady[-1] == pytest.approx(steady[-2], rel=0.01)

    def test_near_saturation_at_paper_m(self, simulation):
        result = simulation.run(PAPER_FIG7_NEAR_SATURATION_M)
        assert result.steady_origin_mbps > 0.9 * 1000.0
