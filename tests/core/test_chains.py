"""Longer CDN chains — an extension beyond the paper's two-CDN cascade.

The paper cascades exactly two CDNs; nothing stops an attacker chaining
more lazy hops in front of the amplifying back-end.  These tests verify
the deployment machinery handles arbitrary chains and that the OBR
amplification appears on *every* inter-CDN link downstream of the
multipart expansion — each extra lazy hop duplicates the multi-megabyte
response once more.
"""

import pytest

from repro.cdn.vendors.base import VendorConfig
from repro.core.deployment import CdnSpec, Deployment
from repro.http.grammar import overlapping_open_ranges_value
from repro.origin.server import OriginServer


def _origin(size=1024):
    origin = OriginServer(range_support=False)
    origin.add_synthetic_resource("/1KB.bin", size)
    return origin


def _lazy(vendor="cloudflare"):
    return CdnSpec(vendor=vendor, config=VendorConfig(bypass_cache=True))


class TestThreeHopObr:
    def test_multipart_relayed_across_two_lazy_hops(self):
        deployment = Deployment(
            _origin(), [_lazy("cloudflare"), _lazy("stackpath"), CdnSpec(vendor="akamai")]
        )
        n = 64
        result = deployment.client().get(
            "/1KB.bin",
            range_value=overlapping_open_ranges_value(n),
            abort_after=2048,
        )
        assert result.response.status == 206

        # Segments: client-cdn, cdn1-cdn2, cdn2-cdn3, cdn-origin.
        first_link = deployment.response_traffic("cdn1-cdn2")
        second_link = deployment.response_traffic("cdn2-cdn3")
        origin_link = deployment.response_traffic("cdn-origin")
        # The n-part response crosses BOTH inter-CDN links.
        assert second_link > n * 1024
        assert first_link > n * 1024
        assert origin_link < 3000
        # Total amplified traffic is roughly twice the single-cascade case.
        assert first_link == pytest.approx(second_link, rel=0.05)

    def test_deleting_middle_hop_kills_the_chain(self):
        """A Deletion CDN anywhere before the back-end strips the header."""
        deployment = Deployment(
            _origin(), [_lazy("cloudflare"), CdnSpec(vendor="gcore"), CdnSpec(vendor="akamai")]
        )
        result = deployment.client().get(
            "/1KB.bin", range_value=overlapping_open_ranges_value(64)
        )
        # G-Core deleted the Range header; Akamai fetched the plain 1 KB;
        # G-Core then serves the coalesced single range.
        assert deployment.response_traffic("cdn2-cdn3") < 3000

    def test_header_limits_compose_along_the_chain(self):
        """The tightest limit on the path binds, wherever it sits."""
        deployment = Deployment(
            _origin(), [_lazy("stackpath"), _lazy("cdn77"), CdnSpec(vendor="akamai")]
        )
        # StackPath (81 KB total) admits what CDN77 (16 KB line) rejects.
        value = overlapping_open_ranges_value(6000)  # ~18 KB line
        result = deployment.client().get("/1KB.bin", range_value=value)
        assert result.response.status == 431


class TestChainDeploymentMechanics:
    def test_four_hop_chain_builds_and_serves(self):
        deployment = Deployment(
            OriginServer(range_support=True) or _origin(),
            ["gcore", "fastly", "tencent", "akamai"],
        )
        deployment.origin.add_synthetic_resource("/x.bin", 4096)
        result = deployment.client().get("/x.bin", range_value="bytes=0-0")
        assert result.response.status == 206
        assert len(result.response.body) == 1

    def test_segment_names_unique_per_hop(self):
        deployment = Deployment(_origin(), ["gcore", "fastly", "tencent"])
        names = [node.upstream_segment for node in deployment.nodes]
        assert len(set(names)) == len(names)
