"""Unit tests for deployment wiring and the attacker client."""

import pytest

from repro.cdn.vendors import create_profile
from repro.core.deployment import CdnSpec, Deployment, RecordingHandler
from repro.errors import ConfigurationError
from repro.netsim.overhead import TcpOverheadModel
from repro.netsim.tap import BCDN_ORIGIN, CDN_ORIGIN, CLIENT_CDN, FCDN_BCDN

from tests.conftest import make_origin


class TestWiring:
    def test_single_cdn_segments(self):
        deployment = Deployment.single("gcore", make_origin())
        assert deployment.client_segment == CLIENT_CDN
        assert deployment.nodes[0].upstream_segment == CDN_ORIGIN

    def test_cascade_segments(self):
        deployment = Deployment.cascade("cloudflare", "akamai", make_origin())
        assert [n.upstream_segment for n in deployment.nodes] == [FCDN_BCDN, BCDN_ORIGIN]
        assert deployment.nodes[0].upstream is deployment.nodes[1]

    def test_three_cdn_chain_gets_generated_names(self):
        deployment = Deployment(make_origin(), ["gcore", "fastly", "akamai"])
        assert [n.upstream_segment for n in deployment.nodes] == [
            "cdn1-cdn2",
            "cdn2-cdn3",
            CDN_ORIGIN,
        ]

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            Deployment(make_origin(), [])

    def test_spec_accepts_prebuilt_profile(self):
        profile = create_profile("gcore")
        deployment = Deployment.single(CdnSpec(profile=profile), make_origin())
        assert deployment.nodes[0].profile is profile

    def test_spec_requires_exactly_one_source(self):
        with pytest.raises(ConfigurationError):
            Deployment.single(CdnSpec(), make_origin())
        with pytest.raises(ConfigurationError):
            Deployment.single(
                CdnSpec(vendor="gcore", profile=create_profile("gcore")), make_origin()
            )

    def test_size_hint_wired_from_origin(self):
        origin = make_origin(size=12345, path="/file.bin")
        deployment = Deployment.single("gcore", origin)
        assert deployment.nodes[0].size_hint_fn("/file.bin") == 12345
        assert deployment.nodes[0].size_hint_fn("/missing") is None

    def test_shared_ledger_across_nodes(self):
        deployment = Deployment.cascade("cloudflare", "akamai", make_origin())
        assert all(n.ledger is deployment.ledger for n in deployment.nodes)


class TestRecordingHandler:
    def test_records_copies(self):
        origin = make_origin()
        tap = RecordingHandler(origin)
        deployment = Deployment.single("gcore", origin)
        assert deployment.origin_tap is not None
        client = deployment.client()
        client.get("/file.bin", range_value="bytes=0-0")
        # Deletion: the origin saw the request with no Range header.
        assert deployment.origin_tap.range_values_seen == [None]

    def test_clear(self):
        origin = make_origin()
        tap = RecordingHandler(origin)
        tap.handle(
            __import__("repro.http.message", fromlist=["HttpRequest"]).HttpRequest(
                "GET", "/file.bin", headers=[("Host", "h")]
            )
        )
        assert len(tap.requests) == 1
        tap.clear()
        assert tap.requests == []


class TestClient:
    def test_response_and_accounting(self):
        deployment = Deployment.single("gcore", make_origin(1000))
        client = deployment.client()
        result = client.get("/file.bin", range_value="bytes=0-0")
        assert result.response.status == 206
        assert result.received_bytes == result.response.wire_size()
        assert deployment.response_traffic(CLIENT_CDN) == result.received_bytes

    def test_abort_caps_received_bytes(self):
        deployment = Deployment.single("gcore", make_origin(100_000))
        client = deployment.client()
        result = client.get("/file.bin", abort_after=500)
        assert result.received_bytes == 500
        assert result.response.wire_size() > 100_000

    def test_extra_headers_sent(self):
        origin = make_origin()
        deployment = Deployment.single("gcore", origin)
        deployment.client().get("/file.bin", extra_headers=[("X-Probe", "1")])
        assert deployment.origin_tap.requests[0].headers.get("X-Probe") == "1"

    def test_overhead_model_applied_everywhere(self):
        plain = Deployment.single("gcore", make_origin(1000))
        framed = Deployment.single(
            "gcore", make_origin(1000), overhead=TcpOverheadModel()
        )
        plain.client().get("/file.bin", range_value="bytes=0-0")
        framed.client().get("/file.bin", range_value="bytes=0-0")
        assert framed.response_traffic(CDN_ORIGIN) > plain.response_traffic(CDN_ORIGIN)
