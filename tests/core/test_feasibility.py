"""Integration tests for the feasibility experiment (paper Tables I–III)."""

import pytest

from repro.core.feasibility import (
    DELETION,
    EXPANSION,
    FeasibilityProbe,
    LAZINESS,
    survey,
)
from repro.http.grammar import RangeCase, RangeFormat
from repro.reporting.paper_values import (
    PAPER_OBR_BACKENDS,
    PAPER_OBR_FRONTENDS,
    PAPER_SBR_VULNERABLE,
)


def _case(value, fmt=RangeFormat.FIRST_LAST):
    return RangeCase(fmt, value, "test case")


class TestClassification:
    def test_deletion_classified(self):
        probe = FeasibilityProbe("akamai", corpus=[_case("bytes=0-0")])
        observation = probe.observe_forwarding()[0]
        assert DELETION in observation.policies
        assert observation.amplifying

    def test_laziness_classified(self):
        probe = FeasibilityProbe("tencent", corpus=[_case("bytes=-1", RangeFormat.SUFFIX)])
        observation = probe.observe_forwarding()[0]
        assert observation.lazy_throughout
        assert not observation.amplifying

    def test_expansion_classified(self):
        probe = FeasibilityProbe("cloudfront", corpus=[_case("bytes=0-0")])
        observation = probe.observe_forwarding()[0]
        assert EXPANSION in observation.policies
        assert observation.amplifying

    def test_keycdn_mixed_policies_across_sends(self):
        probe = FeasibilityProbe("keycdn", corpus=[_case("bytes=0-0")])
        observation = probe.observe_forwarding()[0]
        # First send lazy, second send deleted.
        assert observation.policies_per_send[0] == (LAZINESS,)
        assert DELETION in observation.policies_per_send[1]
        assert observation.amplifying

    def test_stackpath_double_forward_visible(self):
        probe = FeasibilityProbe("stackpath", corpus=[_case("bytes=0-0")])
        observation = probe.observe_forwarding()[0]
        # One client send produced two origin-side requests: lazy + deleted.
        assert observation.forwarded_per_send[0] == ("bytes=0-0", None)


class TestReplyProbe:
    def test_akamai_honors_overlapping(self):
        reply = FeasibilityProbe("akamai").observe_reply()
        assert reply.honors_overlapping
        assert reply.part_limit is None

    def test_azure_honors_with_64_limit(self):
        reply = FeasibilityProbe("azure").observe_reply()
        assert reply.honors_overlapping
        assert reply.part_limit == 64

    def test_gcore_coalesces(self):
        reply = FeasibilityProbe("gcore").observe_reply()
        assert not reply.honors_overlapping


class TestSurveyAgainstPaper:
    """The full experiment-1 sweep must reproduce Table I/II/III
    membership exactly."""

    @pytest.fixture(scope="class")
    def results(self):
        return survey(file_size=16 * 1024)

    def test_all_13_sbr_vulnerable(self, results):
        vulnerable = {name for name, v in results.items() if v.sbr_vulnerable}
        assert vulnerable == set(PAPER_SBR_VULNERABLE)

    def test_obr_frontends_match_table2(self, results):
        frontends = {name for name, v in results.items() if v.obr_fcdn_vulnerable}
        assert frontends == set(PAPER_OBR_FRONTENDS)

    def test_obr_backends_match_table3(self, results):
        backends = {name for name, v in results.items() if v.obr_bcdn_vulnerable}
        assert backends == set(PAPER_OBR_BACKENDS)

    def test_amplifying_formats_reported(self, results):
        assert results["akamai"].amplifying_formats()
        formats = dict(results["akamai"].amplifying_formats())
        assert formats.get("bytes=first-last") == DELETION

    def test_cloudfront_reported_as_expansion(self, results):
        formats = dict(results["cloudfront"].amplifying_formats())
        assert EXPANSION in formats.values()

    def test_lazy_multi_formats_for_frontends(self, results):
        assert results["cdn77"].lazy_multi_formats()
        assert results["cdnsun"].lazy_multi_formats()
        assert results["cloudflare"].lazy_multi_formats()

    def test_cloudflare_fcdn_verdict_is_conditional(self, results):
        """Table II marks Cloudflare (*): lazy only under Bypass."""
        assert results["cloudflare"].obr_fcdn_conditional
        assert not results["cdn77"].obr_fcdn_conditional
        assert not results["stackpath"].obr_fcdn_conditional
