"""Unit tests for amplification accounting."""

from repro.core.amplification import AmplificationReport
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN, TrafficLedger


def _exchange(ledger, segment, body_size, cap=None):
    connection = ledger.open_connection(segment)
    request = HttpRequest("GET", "/x", headers=[("Host", "h")])
    response = HttpResponse(200, body=body_size)
    connection.exchange(request, response, deliver_cap=cap)


class TestReport:
    def test_factor_from_segments(self):
        ledger = TrafficLedger()
        _exchange(ledger, CLIENT_CDN, 100)
        _exchange(ledger, CDN_ORIGIN, 100_000)
        report = AmplificationReport.from_ledger(
            ledger, victim_segment=CDN_ORIGIN, attacker_segment=CLIENT_CDN
        )
        assert report.victim_bytes > 100_000
        assert report.attacker_bytes < 1000
        assert report.factor > 100

    def test_delivered_bytes_used(self):
        """Azure's cut connection: the victim only pushed what crossed."""
        ledger = TrafficLedger()
        _exchange(ledger, CLIENT_CDN, 100)
        _exchange(ledger, CDN_ORIGIN, 1_000_000, cap=1000)
        report = AmplificationReport.from_ledger(
            ledger, victim_segment=CDN_ORIGIN, attacker_segment=CLIENT_CDN
        )
        assert report.victim_bytes == 1000

    def test_missing_segments_yield_zero(self):
        report = AmplificationReport.from_ledger(
            TrafficLedger(), victim_segment=CDN_ORIGIN, attacker_segment=CLIENT_CDN
        )
        assert report.victim_bytes == 0
        assert report.attacker_bytes == 0
        assert report.factor == 0.0

    def test_describe_mentions_both_segments(self):
        ledger = TrafficLedger()
        _exchange(ledger, CLIENT_CDN, 1)
        _exchange(ledger, CDN_ORIGIN, 10)
        report = AmplificationReport.from_ledger(
            ledger, victim_segment=CDN_ORIGIN, attacker_segment=CLIENT_CDN
        )
        described = report.describe()
        assert CDN_ORIGIN in described and CLIENT_CDN in described
        assert "amplification" in described

    def test_segments_snapshot_included(self):
        ledger = TrafficLedger()
        _exchange(ledger, CLIENT_CDN, 1)
        report = AmplificationReport.from_ledger(
            ledger, victim_segment=CDN_ORIGIN, attacker_segment=CLIENT_CDN
        )
        assert CLIENT_CDN in report.segments
