"""Tests for the prior-art connection-drop comparison (paper §VIII)."""

import pytest

from repro.cdn.vendors import all_vendor_names, create_profile
from repro.core.connection_drop import ConnectionDropAttack, compare_with_sbr

MB = 1 << 20


class TestVendorAbortBehavior:
    def test_paper_names_cdn77_and_cdnsun_as_maintaining(self):
        maintaining = {
            name
            for name in all_vendor_names()
            if create_profile(name).maintains_backend_on_client_abort
        }
        assert maintaining == {"cdn77", "cdnsun"}


class TestConnectionDropAttack:
    def test_defended_vendor_caps_origin_traffic(self):
        result = ConnectionDropAttack("cloudflare", resource_size=10 * MB).run()
        assert not result.backend_maintained
        assert result.defended
        # Only in-flight bytes crossed: orders of magnitude below 10 MB.
        assert result.origin_traffic < 128 * 1024
        assert result.amplification < 100

    def test_maintaining_vendor_ships_everything(self):
        result = ConnectionDropAttack("cdn77", resource_size=10 * MB).run()
        assert result.backend_maintained
        assert not result.defended
        assert result.origin_traffic > 10 * MB
        assert result.amplification > 1000

    def test_client_pays_only_the_abort_prefix(self):
        result = ConnectionDropAttack("cloudflare", abort_after=1500).run()
        assert result.client_traffic == 1500

    def test_inflight_knob(self):
        small = ConnectionDropAttack(
            "cloudflare", resource_size=10 * MB, inflight_bytes=8 * 1024
        ).run()
        large = ConnectionDropAttack(
            "cloudflare", resource_size=10 * MB, inflight_bytes=256 * 1024
        ).run()
        assert small.origin_traffic < large.origin_traffic


class TestDefenseComparison:
    """The paper's §VIII argument: the abort defense does not stop SBR."""

    @pytest.mark.parametrize("vendor", ["cloudflare", "akamai", "fastly", "tencent"])
    def test_defense_bypassed_by_sbr(self, vendor):
        comparison = compare_with_sbr(vendor, resource_size=10 * MB)
        assert comparison.connection_drop.defended
        assert comparison.sbr_amplification > 5000
        assert comparison.defense_bypassed

    def test_maintaining_vendor_vulnerable_to_both(self):
        comparison = compare_with_sbr("cdn77", resource_size=10 * MB)
        assert not comparison.connection_drop.defended
        assert comparison.sbr_amplification > 5000
        # defense_bypassed is specifically about the defense existing.
        assert not comparison.defense_bypassed
