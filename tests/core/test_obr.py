"""Integration tests for the OBR attack (paper §IV-C, §V-C, Table V).

Max-n values are checked tightly (they fall out of the header-limit
arithmetic the paper measured: CDN77/CDNsun land exactly, Cloudflare and
StackPath within 1%).  Amplification factors are checked for order of
magnitude and ordering (thousands for Akamai/StackPath back-ends, ~50
for Azure): the paper's absolute factors embed its testbed's TCP framing.
"""

import pytest

from repro.core.obr import ObrAttack, exploited_leading_spec, vulnerable_combinations
from repro.errors import ConfigurationError
from repro.netsim.overhead import NullOverheadModel
from repro.reporting.paper_values import PAPER_TABLE5


class TestCombinations:
    def test_eleven_combinations(self):
        combos = vulnerable_combinations()
        assert len(combos) == 11
        assert ("stackpath", "stackpath") not in combos
        assert set(combos) == set(PAPER_TABLE5)

    def test_self_cascade_rejected(self):
        with pytest.raises(ConfigurationError):
            ObrAttack("stackpath", "stackpath")

    def test_exploited_leading_specs(self):
        assert exploited_leading_spec("cdn77") == "-1024"
        assert exploited_leading_spec("cdnsun") == "1-"
        assert exploited_leading_spec("cloudflare") is None
        assert exploited_leading_spec("stackpath") is None


class TestMaxN:
    """Table V column 4."""

    def test_cdn77_akamai_exact(self):
        assert ObrAttack("cdn77", "akamai").find_max_n() == 5455

    def test_cdnsun_akamai_exact(self):
        assert ObrAttack("cdnsun", "akamai").find_max_n() == 5456

    def test_cloudflare_akamai_within_one_percent(self):
        n = ObrAttack("cloudflare", "akamai").find_max_n()
        assert n == pytest.approx(10750, rel=0.01)

    def test_stackpath_akamai_within_one_percent(self):
        n = ObrAttack("stackpath", "akamai").find_max_n()
        assert n == pytest.approx(10801, rel=0.01)

    @pytest.mark.parametrize("fcdn", ["cdn77", "cdnsun", "cloudflare", "stackpath"])
    def test_azure_backend_pins_n_at_64(self, fcdn):
        assert ObrAttack(fcdn, "azure").find_max_n() == 64

    def test_probe_statuses(self):
        attack = ObrAttack("cloudflare", "akamai")
        assert attack.probe(64) == 206
        assert attack.probe(20_000) != 206


class TestMeasurement:
    def test_cloudflare_akamai_full_run(self):
        result = ObrAttack("cloudflare", "akamai").run()
        paper_n, paper_bo, paper_fb, paper_factor = PAPER_TABLE5[("cloudflare", "akamai")]
        assert result.overlap_count == pytest.approx(paper_n, rel=0.01)
        # Victim-link traffic within a few percent of the paper's capture.
        assert result.fcdn_bcdn_traffic == pytest.approx(paper_fb, rel=0.05)
        # Back-end cost and factor: same order, within capture-model slack.
        assert result.bcdn_origin_traffic == pytest.approx(paper_bo, rel=0.25)
        assert result.amplification == pytest.approx(paper_factor, rel=0.25)
        assert result.status == 206

    def test_azure_backend_factor_matches_paper_scale(self):
        result = ObrAttack("cloudflare", "azure").run()
        paper_factor = PAPER_TABLE5[("cloudflare", "azure")][3]
        assert result.overlap_count == 64
        assert result.amplification == pytest.approx(paper_factor, rel=0.25)

    def test_attacker_receives_almost_nothing(self):
        """The client abort: amplified traffic stays between the CDNs."""
        result = ObrAttack("cloudflare", "akamai").run(overlap_count=1000)
        assert result.client_traffic <= 2048
        assert result.fcdn_bcdn_traffic > 1_000_000

    def test_traffic_proportional_to_n(self):
        """§IV-C: fcdn-bcdn traffic is nearly proportional to n."""
        small = ObrAttack("cloudflare", "akamai").run(overlap_count=100)
        large = ObrAttack("cloudflare", "akamai").run(overlap_count=1000)
        assert large.fcdn_bcdn_traffic / small.fcdn_bcdn_traffic == pytest.approx(
            10, rel=0.05
        )

    def test_bcdn_origin_traffic_independent_of_n(self):
        """§IV-C: the back-end cost is one full fetch regardless of n."""
        small = ObrAttack("cloudflare", "akamai").run(overlap_count=10)
        large = ObrAttack("cloudflare", "akamai").run(overlap_count=5000)
        assert small.bcdn_origin_traffic == large.bcdn_origin_traffic

    def test_overhead_model_is_tcp_by_default_and_swappable(self):
        framed = ObrAttack("cloudflare", "akamai").run(overlap_count=64)
        plain = ObrAttack(
            "cloudflare", "akamai", overhead=NullOverheadModel()
        ).run(overlap_count=64)
        assert framed.bcdn_origin_traffic > plain.bcdn_origin_traffic

    def test_all_eleven_combinations_amplify(self):
        """Table V's bottom line, at a small n for speed."""
        for fcdn, bcdn in vulnerable_combinations():
            result = ObrAttack(fcdn, bcdn).run(overlap_count=32)
            assert result.status == 206, (fcdn, bcdn)
            assert result.amplification > 15, (fcdn, bcdn)


class TestNonVulnerableCombinations:
    @pytest.mark.parametrize("fcdn", ["akamai", "fastly", "gcore", "tencent"])
    def test_deleting_fcdns_do_not_amplify(self, fcdn):
        """A Deletion-policy front-end strips the multi-range header, so
        the back-end never builds the n-part response."""
        attack = ObrAttack(fcdn, "azure")
        result = attack.run(overlap_count=32)
        assert result.amplification < 15

    def test_coalescing_bcdn_does_not_amplify(self):
        result = ObrAttack("cloudflare", "gcore").run(overlap_count=32)
        assert result.amplification < 15
