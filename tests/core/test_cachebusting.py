"""Unit tests for cache busting."""

import pytest

from repro.core.cachebusting import CacheBuster
from repro.netsim.tap import CDN_ORIGIN
from repro.core.deployment import Deployment

from tests.conftest import make_origin


class TestCacheBuster:
    def test_values_never_repeat(self):
        buster = CacheBuster()
        seen = {buster.bust("/x") for _ in range(100)}
        assert len(seen) == 100

    def test_appends_with_question_mark(self):
        assert CacheBuster().bust("/x") == "/x?cb=0"

    def test_appends_with_ampersand_when_query_present(self):
        assert CacheBuster().bust("/x?v=1") == "/x?v=1&cb=0"

    def test_custom_parameter(self):
        assert CacheBuster(parameter="zz").bust("/x") == "/x?zz=0"

    def test_invalid_parameter(self):
        with pytest.raises(ValueError):
            CacheBuster(parameter="")
        with pytest.raises(ValueError):
            CacheBuster(parameter="a=b")

    def test_issued_counter(self):
        buster = CacheBuster()
        assert buster.issued == 0
        buster.bust("/x")
        buster.bust("/x")
        assert buster.issued == 2


class TestBustingDefeatsCache:
    def test_every_busted_request_reaches_origin(self):
        """The SBR premise (paper §II-A)."""
        deployment = Deployment.single("gcore", make_origin(1000))
        client = deployment.client()
        buster = CacheBuster()
        for _ in range(5):
            client.get(buster.bust("/file.bin"), range_value="bytes=0-0")
        assert deployment.ledger.segment_stats(CDN_ORIGIN).exchange_count == 5

    def test_without_busting_cache_absorbs_repeats(self):
        deployment = Deployment.single("gcore", make_origin(1000))
        client = deployment.client()
        for _ in range(5):
            client.get("/file.bin", range_value="bytes=0-0")
        assert deployment.ledger.segment_stats(CDN_ORIGIN).exchange_count == 1
