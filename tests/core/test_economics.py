"""Tests for attack-economics estimates (paper §V-E)."""

import pytest

from repro.core.economics import (
    BILLING_USD_PER_GB,
    estimate_obr_campaign,
    estimate_sbr_campaign,
)

MB = 1 << 20


class TestBillingTable:
    def test_all_13_vendors_priced(self):
        from repro.cdn.vendors import all_vendor_names

        assert set(BILLING_USD_PER_GB) == set(all_vendor_names())

    def test_rates_plausible(self):
        assert all(0.0 <= rate <= 1.0 for rate in BILLING_USD_PER_GB.values())


class TestSbrCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return estimate_sbr_campaign(
            "akamai",
            resource_size=10 * MB,
            requests_per_second=10.0,
            duration_seconds=3600.0,
        )

    def test_totals(self, campaign):
        assert campaign.total_requests == 36_000
        # 36k requests x ~10.5 MB = ~377 GB of victim traffic.
        assert campaign.victim_bytes == pytest.approx(36_000 * 10.49 * 1e6, rel=0.02)
        assert campaign.attacker_bytes < campaign.victim_bytes / 10_000

    def test_cost_uses_vendor_rate(self, campaign):
        expected = campaign.victim_bytes / 1e9 * BILLING_USD_PER_GB["akamai"]
        assert campaign.victim_cost_usd == pytest.approx(expected)
        assert campaign.victim_cost_usd > 25  # a real bill for one hour

    def test_bandwidth_projection(self, campaign):
        # 10 req/s x ~84 Mbit = ~840 Mbps of origin egress.
        assert campaign.victim_bandwidth_mbps == pytest.approx(840, rel=0.02)
        assert campaign.attacker_bandwidth_mbps < 0.1

    def test_saturating_rate_matches_fig7(self, campaign):
        """Fig 7 found ~12 req/s pins a 1000 Mbps uplink."""
        rate = campaign.saturating_rate(1000.0)
        assert 11 <= rate <= 13

    def test_rate_override(self):
        campaign = estimate_sbr_campaign(
            "cloudflare", resource_size=1 * MB, rate_usd_per_gb=1.0
        )
        assert campaign.rate_usd_per_gb == 1.0
        assert campaign.victim_cost_usd == pytest.approx(campaign.victim_bytes / 1e9)

    def test_flat_rate_vendor_costs_nothing_but_still_burns_bandwidth(self):
        campaign = estimate_sbr_campaign("cloudflare", resource_size=10 * MB)
        assert campaign.victim_cost_usd == 0.0
        assert campaign.victim_bandwidth_mbps > 500


class TestObrCampaign:
    def test_inter_cdn_burn(self):
        campaign = estimate_obr_campaign(
            "cloudflare",
            "akamai",
            overlap_count=1000,
            requests_per_second=5.0,
            duration_seconds=60.0,
        )
        assert campaign.attack == "obr"
        assert campaign.vendor == "cloudflare->akamai"
        # 1000-part multipart of a 1 KB resource: ~1.2 MB per request.
        assert campaign.victim_bytes_per_request == pytest.approx(1_190_000, rel=0.05)
        assert campaign.victim_bandwidth_mbps > 40
        assert campaign.attacker_bytes_per_request <= 2048
