"""Tests for attack campaigns with detection in the loop."""

import pytest

from repro.core.campaign import SbrCampaign
from repro.defense.detection import RangeAmpDetector

MB = 1 << 20


class TestCampaignMechanics:
    def test_requests_spread_across_nodes(self):
        result = SbrCampaign("gcore", resource_size=1 * MB, node_count=4).run(
            requests=20
        )
        assert result.requests_sent == 20
        assert result.requests_per_node == (5, 5, 5, 5)

    def test_amplification_survives_the_cluster(self):
        result = SbrCampaign("gcore", resource_size=1 * MB, node_count=4).run(
            requests=20
        )
        # Every cache-busted request reached the origin.
        assert result.origin_traffic > 20 * 1 * MB
        assert result.amplification > 1500

    def test_invalid_request_count(self):
        with pytest.raises(ValueError):
            SbrCampaign("gcore").run(requests=0)


class TestDetectionInTheLoop:
    def test_single_source_campaign_is_flagged(self):
        detector = RangeAmpDetector()
        result = SbrCampaign(
            "gcore", resource_size=1 * MB, detector=detector
        ).run(requests=30)
        assert result.source_addresses == 1
        assert result.detected
        assert result.flagged_clients == ("203.0.113.66",)

    def test_source_rotation_evades_per_client_detection(self):
        """The paper's §VI-C point: per-client thresholds are defeated by
        spreading the stream over many addresses."""
        detector = RangeAmpDetector()
        result = SbrCampaign(
            "gcore", resource_size=1 * MB, detector=detector
        ).run(requests=30, rotate_sources_every=5)
        assert result.source_addresses == 6
        assert not result.detected
        # The attack still worked at full strength.
        assert result.amplification > 1500

    def test_no_detector_no_verdicts(self):
        result = SbrCampaign("gcore", resource_size=1 * MB).run(requests=5)
        assert result.flagged_clients == ()
        assert not result.detected
