"""Shared test helpers."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.cdn.node import CdnNode
from repro.cdn.vendors import create_profile
from repro.http.message import HttpRequest
from repro.netsim.tap import TrafficLedger
from repro.origin.server import OriginServer


def make_origin(
    size: int = 1000,
    path: str = "/file.bin",
    range_support: bool = True,
) -> OriginServer:
    """An origin serving one synthetic resource."""
    origin = OriginServer(range_support=range_support)
    origin.add_synthetic_resource(path, size)
    return origin


def make_node(vendor: str, origin: OriginServer, **kwargs) -> CdnNode:
    """A single CDN node in front of ``origin`` with its own ledger."""
    profile = create_profile(vendor)
    kwargs.setdefault("ledger", TrafficLedger())
    kwargs.setdefault("size_hint_fn", lambda p: _size_of(origin, p))
    return CdnNode(profile, origin, **kwargs)


def _size_of(origin: OriginServer, path: str) -> Optional[int]:
    try:
        return origin.store.get(path).size
    except Exception:
        return None


def get(handler, target="/file.bin", range_value=None, host="victim.example"):
    """Send one GET straight at a handler (no client-side accounting)."""
    headers = [("Host", host)]
    if range_value is not None:
        headers.append(("Range", range_value))
    return handler.handle(HttpRequest("GET", target, headers=headers))


@pytest.fixture
def origin_1k() -> OriginServer:
    return make_origin(size=1000)
