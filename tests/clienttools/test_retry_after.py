"""``Retry-After`` parsing: both RFC 9110 forms plus garbage input.

The delta-seconds form needs no clock; the HTTP-date form is absolute,
so the wait is anchored against an injected epoch clock and clamped to
``>= 0`` — a server advertising a date already in the past means "retry
immediately", never a negative sleep.
"""

from __future__ import annotations

import pytest

from repro.clienttools.downloader import SegmentedDownloader, _parse_retry_after
from repro.cdn.vendors.base import VendorConfig
from repro.core.deployment import CdnSpec, Deployment
from repro.faults import FlakyOrigin
from repro.origin.resource import Resource
from repro.origin.server import OriginServer

#: Fri, 07 Aug 2026 00:00:00 GMT as epoch seconds.
ANCHOR = 1786060800.0
ANCHOR_DATE = "Fri, 07 Aug 2026 00:00:00 GMT"


class TestDeltaSeconds:
    def test_plain_and_padded_numbers(self):
        assert _parse_retry_after("3") == 3.0
        assert _parse_retry_after(" 2.5 ") == 2.5
        assert _parse_retry_after("0") == 0.0

    def test_garbage_is_final(self):
        assert _parse_retry_after(None) is None
        assert _parse_retry_after("soon") is None
        assert _parse_retry_after("-1") is None
        assert _parse_retry_after("inf") is None
        assert _parse_retry_after("nan") is None
        assert _parse_retry_after("") is None


class TestHttpDate:
    def test_future_date_yields_the_remaining_wait(self):
        assert _parse_retry_after(ANCHOR_DATE, now=ANCHOR - 120.0) == 120.0

    def test_past_date_clamps_to_zero(self):
        assert _parse_retry_after(ANCHOR_DATE, now=ANCHOR + 3600.0) == 0.0

    def test_exact_now_is_zero(self):
        assert _parse_retry_after(ANCHOR_DATE, now=ANCHOR) == 0.0

    def test_date_without_a_clock_is_unusable(self):
        # No ``now`` to anchor against: the absolute form is ignored.
        assert _parse_retry_after(ANCHOR_DATE) is None

    def test_zoneless_date_is_interpreted_as_gmt(self):
        assert (
            _parse_retry_after("Fri, 07 Aug 2026 00:00:00", now=ANCHOR - 60.0)
            == 60.0
        )

    def test_garbage_dates_are_final(self):
        assert _parse_retry_after("Someday, 99 Foo 2026", now=ANCHOR) is None
        assert _parse_retry_after("Fri, 99 Aug", now=ANCHOR) is None


class TestDownloaderHonorsHttpDate:
    def _deployment(self, retry_after):
        origin = OriginServer()
        origin.add_resource(
            Resource(path="/file.bin", body=bytes(range(256)) * 100)
        )
        deployment = Deployment.single(
            CdnSpec(vendor="gcore", config=VendorConfig(bypass_cache=True)),
            origin,
        )
        node = deployment.nodes[-1]
        node.upstream = FlakyOrigin(node.upstream, period=2, retry_after=retry_after)
        return deployment

    def test_date_form_waits_are_tallied_deterministically(self):
        """503s advertise an absolute date 90 s past the injected clock;
        every retried segment tallies exactly that wait."""
        downloader = SegmentedDownloader(
            self._deployment(ANCHOR_DATE),
            segments=2,
            clock=lambda: ANCHOR - 90.0,
        )
        report = downloader.download("/file.bin")
        assert report.retries == 2
        assert report.waited_s == pytest.approx(180.0)

    def test_stale_date_means_immediate_retry(self):
        downloader = SegmentedDownloader(
            self._deployment(ANCHOR_DATE),
            segments=2,
            clock=lambda: ANCHOR + 10.0,
        )
        report = downloader.download("/file.bin")
        assert report.retries == 2
        assert report.waited_s == 0.0
