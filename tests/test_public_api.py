"""Smoke tests for the package-level public API."""

import repro


class TestSurface:
    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_vendor_registry_size(self):
        assert len(repro.all_vendor_names()) == 13


class TestEndToEndViaPublicApi:
    def test_sbr_one_liner(self):
        result = repro.SbrAttack("gcore", resource_size=1 << 20).run()
        assert result.amplification > 1500

    def test_obr_one_liner(self):
        result = repro.ObrAttack("cloudflare", "akamai").run(overlap_count=32)
        assert result.amplification > 20

    def test_mitigation_wrappers_compose(self):
        profile = repro.with_laziness(repro.create_profile("gcore"))
        origin = repro.OriginServer()
        origin.add_synthetic_resource("/x.bin", 4096)
        deployment = repro.Deployment.single(
            repro.CdnSpec(profile=profile), origin
        )
        result = deployment.client().get("/x.bin", range_value="bytes=0-0")
        assert result.response.status == 206

    def test_downloader_via_public_api(self):
        origin = repro.OriginServer()
        origin.add_synthetic_resource("/x.bin", 10_000)
        deployment = repro.Deployment.single("gcore", origin)
        report = repro.SegmentedDownloader(deployment, segments=3).download("/x.bin")
        assert report.total_length == 10_000

    def test_campaign_via_public_api(self):
        detector = repro.RangeAmpDetector()
        result = repro.SbrCampaign(
            "gcore", resource_size=1 << 20, detector=detector
        ).run(requests=12)
        assert result.detected
