"""The BENCH_runall.json schema: typed round-trip, strict rejection.

The CI speed gate (``scripts/check_bench.py``) compares three of these
files; every comparison it makes goes through :func:`load_bench`, so the
loader must reject anything it does not fully understand — an unknown
schema version, a missing field, a mistyped count — rather than let the
gate silently compare garbage.
"""

import json

import pytest

from repro.errors import ReproError
from repro.reporting.bench import (
    BENCH_FILENAME,
    BENCH_SCHEMA_VERSION,
    BenchFastPath,
    BenchReport,
    BenchSchemaError,
    bench_from_dict,
    bench_from_runall,
    load_bench,
)


def _sample_report(mode="fast"):
    fastpath = None
    if mode == "fast":
        fastpath = BenchFastPath(
            answered=41,
            refused=0,
            ineligible=3,
            validated=3,
            calibration_runs=62,
            hit_rate=41 / 44,
        )
    return BenchReport(
        schema_version=BENCH_SCHEMA_VERSION,
        label="run-all-quick",
        mode=mode,
        wall_s=0.55,
        cell_count=44,
        cells_per_s=44 / 0.55,
        workers=1,
        phases={"fastpath": 0.03, "grid": 0.17, "validate": 0.001,
                "static": 0.35, "measure": 0.08},
        fastpath=fastpath,
    )


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, tmp_path):
        report = _sample_report()
        path = report.write(tmp_path / "bench.json")
        assert load_bench(path) == report

    def test_write_into_directory_uses_canonical_name(self, tmp_path):
        path = _sample_report().write(tmp_path)
        assert path == tmp_path / BENCH_FILENAME
        assert load_bench(tmp_path) == _sample_report()

    def test_exact_mode_round_trips_without_fastpath(self, tmp_path):
        report = _sample_report(mode="exact")
        path = report.write(tmp_path / "bench.json")
        loaded = load_bench(path)
        assert loaded == report
        assert loaded.fastpath is None
        assert loaded.hit_rate == 0.0

    def test_measure_phase_property(self):
        assert _sample_report().measure_s == pytest.approx(0.08)
        empty = _sample_report(mode="exact")
        assert BenchReport(
            schema_version=BENCH_SCHEMA_VERSION,
            label=empty.label,
            mode=empty.mode,
            wall_s=1.0,
            cell_count=1,
            cells_per_s=1.0,
            workers=1,
        ).measure_s == 0.0


class TestRejection:
    def _payload(self, **overrides):
        payload = json.loads(_sample_report().to_json())
        payload.update(overrides)
        return payload

    def test_schema_error_is_a_repro_error(self):
        assert issubclass(BenchSchemaError, ReproError)

    def test_unknown_version_rejected(self):
        with pytest.raises(BenchSchemaError, match="unknown benchmark schema"):
            bench_from_dict(self._payload(schema_version=BENCH_SCHEMA_VERSION + 1))

    def test_version_one_files_rejected_after_ccfc_bump(self):
        # The grid gained CCFC cells in schema version 2: cell counts
        # and phase totals from version-1 builds are not comparable, so
        # the strict loader refuses them outright.
        assert BENCH_SCHEMA_VERSION == 2
        with pytest.raises(BenchSchemaError, match="unknown benchmark schema"):
            bench_from_dict(self._payload(schema_version=1))

    def test_missing_field_rejected(self):
        payload = self._payload()
        del payload["wall_s"]
        with pytest.raises(BenchSchemaError, match="missing 'wall_s'"):
            bench_from_dict(payload)

    def test_wrong_type_rejected(self):
        with pytest.raises(BenchSchemaError, match="'cell_count' must be int"):
            bench_from_dict(self._payload(cell_count="44"))

    def test_bool_is_not_an_int(self):
        # bool subclasses int; a stray true in a count field must fail.
        with pytest.raises(BenchSchemaError, match="'workers' must be int"):
            bench_from_dict(self._payload(workers=True))

    def test_int_accepted_where_float_expected(self):
        report = bench_from_dict(self._payload(wall_s=2))
        assert report.wall_s == 2.0
        assert isinstance(report.wall_s, float)

    def test_non_numeric_phase_rejected(self):
        payload = self._payload()
        payload["phases"]["grid"] = "fast"
        with pytest.raises(BenchSchemaError, match="'grid' must be a number"):
            bench_from_dict(payload)

    def test_malformed_fastpath_rejected(self):
        payload = self._payload()
        del payload["fastpath"]["hit_rate"]
        with pytest.raises(BenchSchemaError, match="missing 'hit_rate'"):
            bench_from_dict(payload)

    def test_non_object_payload_rejected(self):
        with pytest.raises(BenchSchemaError, match="must be an object"):
            bench_from_dict(["not", "an", "object"])

    def test_non_json_file_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("not json at all", encoding="utf-8")
        with pytest.raises(BenchSchemaError, match="is not JSON"):
            load_bench(path)


class TestFromRunAll:
    @pytest.fixture(scope="class")
    def quick_report(self):
        from repro.runner.memo import clear_all_memos
        from repro.runner.runall import run_all

        clear_all_memos()
        return run_all(workers=1, quick=True, vendors=["gcore"])

    def test_observation_from_live_run(self, quick_report, tmp_path):
        bench = bench_from_runall(quick_report, "run-all-quick", wall_s=1.25)
        assert bench.mode == "fast"
        assert bench.wall_s == 1.25
        assert bench.cell_count == quick_report.cell_count
        assert bench.fastpath is not None
        assert bench.fastpath.answered == quick_report.fastpath.answered
        # The derived measure phase includes planning and validation.
        assert bench.measure_s >= (
            quick_report.phase_seconds["fastpath"]
            + quick_report.phase_seconds["validate"]
        )
        assert load_bench(bench.write(tmp_path)) == bench

    def test_wall_defaults_to_phase_sum(self, quick_report):
        bench = bench_from_runall(quick_report, "run-all-quick")
        assert bench.wall_s == pytest.approx(
            sum(quick_report.phase_seconds.values())
        )


class TestCliWritesBench:
    def test_run_all_quick_produces_valid_file(self, tmp_path, monkeypatch):
        from repro.cli import main
        from repro.runner.memo import clear_all_memos

        clear_all_memos()
        monkeypatch.chdir(tmp_path)
        bench_path = tmp_path / "bench.json"
        out_dir = tmp_path / "artifacts"
        assert (
            main(
                [
                    "run-all",
                    "--quick",
                    "--workers",
                    "1",
                    "--no-progress",
                    "--bench",
                    str(bench_path),
                    "--output-dir",
                    str(out_dir),
                ]
            )
            == 0
        )
        bench = load_bench(bench_path)
        assert bench.label == "run-all-quick"
        assert bench.mode == "fast"
        assert bench.schema_version == BENCH_SCHEMA_VERSION
        assert bench.fastpath is not None and bench.fastpath.answered > 0
        assert bench.wall_s > 0
        # --output-dir always receives the canonical observation too.
        assert load_bench(out_dir).label == bench.label

    def test_exact_flag_produces_exact_observation(self, tmp_path):
        from repro.cli import main
        from repro.runner.memo import clear_all_memos

        clear_all_memos()
        bench_path = tmp_path / "bench_exact.json"
        assert (
            main(
                [
                    "run-all",
                    "--quick",
                    "--workers",
                    "1",
                    "--no-progress",
                    "--exact",
                    "--bench",
                    str(bench_path),
                ]
            )
            == 0
        )
        bench = load_bench(bench_path)
        assert bench.label == "run-all-quick-exact"
        assert bench.mode == "exact"
        assert bench.fastpath is None
