"""Unit tests for plain-text rendering."""

import pytest

from repro.reporting.render import format_bytes, render_sparkline, render_table


class TestRenderTable:
    def test_alignment(self):
        output = render_table(["name", "n"], [["akamai", 1], ["cf", 10750]])
        lines = output.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert lines[2].startswith("akamai")
        # All separator positions line up.
        assert len({line.index("|") for line in (lines[0], lines[2], lines[3])} ) == 1

    def test_cells_stringified(self):
        output = render_table(["x"], [[3.14159]])
        assert "3.14159" in output

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        output = render_table(["a"], [])
        assert output.splitlines()[0] == "a"


class TestSparkline:
    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_monotone_ramp(self):
        line = render_sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[-1] == "█"

    def test_downsampled_to_width(self):
        line = render_sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_all_zero(self):
        assert set(render_sparkline([0, 0, 0])) == {" "}


class TestFormatBytes:
    @pytest.mark.parametrize(
        ("count", "expected"),
        [
            (0, "0B"),
            (999, "999B"),
            (1024, "1.00KiB"),
            (1536, "1.50KiB"),
            (10 * 1024 * 1024, "10.00MiB"),
            (3 * 1024**3, "3.00GiB"),
        ],
    )
    def test_formatting(self, count, expected):
        assert format_bytes(count) == expected
