"""Tests for markdown table rendering."""

import pytest

from repro.reporting.render import render_markdown_table


class TestMarkdownTable:
    def test_structure(self):
        output = render_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = output.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert lines[3] == "| 3 | 4 |"

    def test_pipes_escaped(self):
        output = render_markdown_table(["x"], [["a|b"]])
        assert "a\\|b" in output

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        output = render_markdown_table(["only"], [])
        assert output.splitlines() == ["| only |", "|---|"]

    def test_renders_a_real_table(self):
        from repro.reporting.paper_values import PAPER_TABLE4_FACTORS

        MB = 1 << 20
        rows = [
            [vendor, factors[1 * MB]]
            for vendor, factors in sorted(PAPER_TABLE4_FACTORS.items())
        ]
        output = render_markdown_table(["CDN", "1MB factor"], rows)
        assert output.count("\n") == len(rows) + 1
        assert "| akamai | 1707 |" in output
