"""Golden regression tests pinning the paper-shape invariants.

The benchmarks check measured values against the paper's tables with
tolerance bands; these tests pin the *shapes* that make the curves what
they are, so a refactor of the substrate (vendor profiles, window
logic, traffic accounting) cannot silently bend them:

* SBR factor grows linearly with resource size (Deletion vendors);
* Azure's factor plateaus once the origin pull caps at 16 MB;
* CloudFront's factor plateaus at its 10 MB expansion cap;
* KeyCDN's send-it-twice pattern halves its factor;
* OBR factors exceed Azure-backed OBR's ~50 by two orders of magnitude.
"""

from __future__ import annotations

import pytest

from repro.core.obr import ObrAttack
from repro.core.sbr import SbrAttack
from repro.runner.memo import measure_sbr

MB = 1 << 20


def _factor(vendor: str, size: int) -> float:
    # Memoized: shapes below probe overlapping (vendor, size) points.
    return measure_sbr(vendor, size).amplification


def test_sbr_factor_grows_linearly_with_size():
    """Fig 6a: Deletion vendors' factor is ~proportional to size."""
    for vendor in ("akamai", "cloudflare", "tencent"):
        base = _factor(vendor, 1 * MB)
        assert _factor(vendor, 2 * MB) / base == pytest.approx(2.0, rel=0.03), vendor
        assert _factor(vendor, 4 * MB) / base == pytest.approx(4.0, rel=0.03), vendor
        assert _factor(vendor, 8 * MB) / base == pytest.approx(8.0, rel=0.03), vendor


def test_azure_plateaus_at_16_mb():
    """Azure pulls at most 2 x 8 MB from the origin, so the factor is
    flat past 16 MB while still climbing before it."""
    below = _factor("azure", 12 * MB)
    at_cap = _factor("azure", 16 * MB)
    past_cap = [_factor("azure", s * MB) for s in (17, 20, 25)]
    assert at_cap > below  # still growing up to the cap
    for factor in past_cap:
        assert factor == pytest.approx(past_cap[0], rel=0.02)
    # The plateau sits at the 16 MB pull level, not above it.
    assert max(past_cap) <= at_cap * 1.02


def test_cloudfront_plateaus_at_10_mb():
    """CloudFront expands to MB-aligned windows capped at 10 MB.

    (The pre-cap anchor is 2 MB: CloudFront's fixed exploited case
    includes a 9 MB point that is unsatisfiable below 9 MB resources,
    which wobbles the curve around 8–9 MB without changing the cap.)
    """
    below = _factor("cloudfront", 2 * MB)
    at_cap = _factor("cloudfront", 10 * MB)
    past_cap = [_factor("cloudfront", s * MB) for s in (11, 14, 25)]
    assert at_cap > below
    for factor in past_cap:
        assert factor == pytest.approx(past_cap[0], rel=0.02)
    assert max(past_cap) <= at_cap * 1.02


def test_keycdn_factor_halves_on_the_second_request():
    """KeyCDN's Deletion fires on the *second* sighting: one request
    alone barely amplifies, and paying for two requests halves the
    factor relative to a hypothetical single-request exploit."""
    double = SbrAttack("keycdn", resource_size=10 * MB).run()
    assert double.statuses == (206, 206)

    # A single first-sighting request is forwarded lazily: the origin
    # returns just the requested byte, so there is no amplification.
    single = SbrAttack("keycdn", resource_size=10 * MB).run(
        range_cases=["bytes=0-0"]
    )
    assert single.amplification < 5.0

    # The exploited factor is half of what one request's share implies:
    # same origin pull, twice the client-side traffic.
    single_response = double.client_traffic / 2
    hypothetical_single_request_factor = double.origin_traffic / single_response
    assert double.amplification == pytest.approx(
        hypothetical_single_request_factor / 2, rel=0.01
    )

    # And it lands well below comparable single-request Deletion vendors.
    assert double.amplification < 0.65 * _factor("tencent", 10 * MB)


def test_obr_factors_dwarf_azure_backed_obr():
    """Table V: Azure's 64-part cap holds its factor near ~50; cascades
    through an uncapped BCDN amplify two orders of magnitude more."""
    azure_backed = ObrAttack("cloudflare", "azure").run()
    akamai_backed = ObrAttack("cloudflare", "akamai").run()

    assert azure_backed.overlap_count == 64  # the documented part limit
    assert azure_backed.amplification == pytest.approx(50, rel=0.35)

    assert akamai_backed.amplification > 1000
    assert akamai_backed.amplification >= 100 * azure_backed.amplification
