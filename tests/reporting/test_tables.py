"""Integration tests for table/figure regeneration.

Full-scale regeneration lives in the benchmarks; here the harnesses run
on reduced vendor subsets / sizes and are checked for structural
correctness against the paper's membership and shape.
"""

import pytest

from repro.core.feasibility import survey
from repro.reporting.figures import Fig6Series, fig6_series, fig7_series
from repro.reporting.paper_values import PAPER_TABLE5
from repro.reporting.tables import (
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)

MB = 1 << 20


@pytest.fixture(scope="module")
def small_survey():
    return survey(
        vendors=["akamai", "azure", "cdn77", "cloudflare", "tencent"],
        file_size=16 * 1024,
    )


class TestTable1:
    def test_rows_from_survey(self, small_survey):
        rows = table1_rows(feasibility=small_survey)
        assert [r.vendor for r in rows] == sorted(small_survey)
        akamai = next(r for r in rows if r.vendor == "akamai")
        assert akamai.vulnerable
        assert akamai.display_name == "Akamai"
        assert ("bytes=first-last", "deletion") in akamai.vulnerable_formats


class TestTable2:
    def test_frontends_only(self, small_survey):
        rows = table2_rows(feasibility=small_survey)
        names = {r.vendor for r in rows}
        assert names == {"cdn77", "cloudflare"}
        cdn77 = next(r for r in rows if r.vendor == "cdn77")
        assert cdn77.lazy_formats


class TestTable3:
    def test_backends_only(self, small_survey):
        rows = table3_rows(feasibility=small_survey)
        names = {r.vendor for r in rows}
        assert names == {"akamai", "azure"}
        azure = next(r for r in rows if r.vendor == "azure")
        assert azure.part_limit == 64
        akamai = next(r for r in rows if r.vendor == "akamai")
        assert akamai.part_limit is None


class TestTable4:
    def test_row_structure(self):
        rows = table4_rows(vendors=["akamai", "keycdn"], sizes=(1 * MB, 2 * MB))
        assert len(rows) == 2
        akamai = rows[0]
        assert akamai.factors[2 * MB] > akamai.factors[1 * MB]
        assert akamai.client_traffic[1 * MB] < 1500
        assert akamai.origin_traffic[1 * MB] > 1 * MB
        keycdn = rows[1]
        assert keycdn.exploited_cases == ("bytes=0-0", "bytes=0-0")


class TestTable5:
    def test_single_combination(self):
        rows = table5_rows(combinations=[("cdn77", "azure")])
        assert len(rows) == 1
        row = rows[0]
        assert row.max_n == 64
        paper = PAPER_TABLE5[("cdn77", "azure")]
        assert row.factor == pytest.approx(paper[3], rel=0.25)
        assert row.exploited_case_prefix.startswith("bytes=-1024,0-")


class TestFig6:
    def test_series_structure(self):
        series = fig6_series(vendors=["gcore"], sizes=[1 * MB, 2 * MB, 3 * MB])
        assert len(series) == 1
        curve = series[0]
        assert isinstance(curve, Fig6Series)
        assert len(curve.factors) == 3
        # Fig 6a: monotone growth for a plain-deletion vendor.
        assert curve.factors[0] < curve.factors[1] < curve.factors[2]
        # Fig 6b: flat, small client traffic.
        assert max(curve.client_traffic) <= 1500
        # Fig 6c: origin traffic tracks the resource size.
        assert curve.origin_traffic[2] == pytest.approx(3 * MB, rel=0.01)


class TestFig7:
    def test_series_structure(self):
        results = fig7_series(ms=(2, 13))
        assert [r.m for r in results] == [2, 13]
        assert not results[0].saturated
        assert results[1].saturated
