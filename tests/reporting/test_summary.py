"""Tests for the one-call full-report generator (quick mode)."""

import pytest

from repro.reporting.summary import generate_full_report


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    output_dir = tmp_path_factory.mktemp("report")
    written = generate_full_report(output_dir, quick=True)
    return output_dir, written


class TestGeneration:
    def test_all_artifacts_written_in_both_formats(self, report):
        output_dir, written = report
        stems = {
            "table1_sbr_feasibility",
            "table2_obr_forwarding",
            "table3_obr_replying",
            "table4_sbr_factors",
            "table5_obr_factors",
            "fig7_bandwidth",
        }
        names = {path.name for path in written}
        for stem in stems:
            assert f"{stem}.txt" in names
            assert f"{stem}.md" in names
        assert all(path.exists() and path.stat().st_size > 0 for path in written)

    def test_table4_mentions_paper_values(self, report):
        output_dir, _ = report
        content = (output_dir / "table4_sbr_factors.txt").read_text()
        assert "(1707)" in content  # Akamai's paper factor at 1 MB
        assert "Akamai" in content

    def test_markdown_is_table_shaped(self, report):
        output_dir, _ = report
        content = (output_dir / "table5_obr_factors.md").read_text()
        lines = content.splitlines()
        assert lines[0].startswith("| FCDN |")
        assert lines[1].startswith("|---")

    def test_fig7_quick_rows(self, report):
        output_dir, _ = report
        content = (output_dir / "fig7_bandwidth.txt").read_text()
        assert "yes" in content and "no" in content  # both regimes present

    def test_creates_missing_directories(self, tmp_path):
        nested = tmp_path / "a" / "b"
        written = generate_full_report(nested, quick=True)
        assert nested.exists()
        assert written
