"""Crash-safe checkpointing: journaling, restore rules, and resume runs."""

import json

import pytest

from repro.runner import GridRunner, RunCheckpoint, cell_digest
from repro.runner.experiments import register, sbr_cell
from repro.runner.grid import ExperimentCell, ExperimentGrid

KB = 1 << 10


def _echo_cell(value):
    return ExperimentCell.make("echo-ckpt", ("echo", value))


def _run_echo(cell):
    return cell.key[1] * 2


def _run_boom(cell):
    raise RuntimeError(f"boom {cell.key}")


register("echo-ckpt", _run_echo)
register("boom-ckpt", _run_boom)


def _grid(n=4):
    return ExperimentGrid("ckpt", [_echo_cell(i) for i in range(n)])


class TestCellDigest:
    def test_stable_for_equal_cells(self):
        assert cell_digest(_echo_cell(1)) == cell_digest(_echo_cell(1))

    def test_differs_by_key_and_params(self):
        assert cell_digest(_echo_cell(1)) != cell_digest(_echo_cell(2))
        a = ExperimentCell.make("echo-ckpt", ("echo", 1), rounds=1)
        b = ExperimentCell.make("echo-ckpt", ("echo", 1), rounds=2)
        assert cell_digest(a) != cell_digest(b)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        grid = _grid()
        checkpoint = RunCheckpoint(path)
        result = GridRunner(workers=1).run(grid, checkpoint=checkpoint)
        checkpoint.close()

        reloaded = RunCheckpoint(path)
        assert reloaded.completed_count == len(grid)
        restored = reloaded.restore(grid.cells)
        assert sorted(restored) == list(range(len(grid)))
        for index, outcome in restored.items():
            assert outcome == result.outcomes[index]

    def test_header_line_identifies_format(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = RunCheckpoint(path)
        GridRunner(workers=1).run(_grid(1), checkpoint=checkpoint)
        checkpoint.close()
        first = path.read_text().splitlines()[0]
        assert json.loads(first) == {"format": "repro-checkpoint-v1"}

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        grid = _grid(3)
        checkpoint = RunCheckpoint(path)
        GridRunner(workers=1).run(grid, checkpoint=checkpoint)
        checkpoint.close()
        with open(path, "a") as handle:
            handle.write('{"digest": "deadbeef", "ok": tru')  # killed mid-write
        reloaded = RunCheckpoint(path)
        assert reloaded.completed_count == 3
        assert sorted(reloaded.restore(grid.cells)) == [0, 1, 2]

    def test_failures_are_journaled_but_never_restored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        grid = ExperimentGrid(
            "ckpt", [_echo_cell(0), ExperimentCell.make("boom-ckpt", ("b",))]
        )
        checkpoint = RunCheckpoint(path)
        result = GridRunner(workers=1).run(grid, checkpoint=checkpoint)
        checkpoint.close()
        assert not result.outcomes[1].ok

        reloaded = RunCheckpoint(path)
        assert reloaded.completed_count == 2  # both journaled...
        assert sorted(reloaded.restore(grid.cells)) == [0]  # ...one restorable

    def test_edited_grid_falls_back_to_recompute(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = RunCheckpoint(path)
        GridRunner(workers=1).run(_grid(2), checkpoint=checkpoint)
        checkpoint.close()
        edited = ExperimentGrid("ckpt", [_echo_cell(7), _echo_cell(8)])
        assert RunCheckpoint(path).restore(edited.cells) == {}

    def test_reordered_grid_is_not_restored_at_wrong_index(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = RunCheckpoint(path)
        GridRunner(workers=1).run(_grid(2), checkpoint=checkpoint)
        checkpoint.close()
        reordered = [_echo_cell(1), _echo_cell(0)]
        assert RunCheckpoint(path).restore(reordered) == {}


class TestResumeRuns:
    def test_resume_skips_completed_cells_and_observer(self, tmp_path):
        path = tmp_path / "run.jsonl"
        grid = _grid()
        checkpoint = RunCheckpoint(path)
        first = GridRunner(workers=1).run(grid, checkpoint=checkpoint)
        checkpoint.close()

        notified = []
        rerun = GridRunner(
            workers=1, observer=lambda o, done, total: notified.append(o)
        ).run(grid, checkpoint=RunCheckpoint(path))
        assert notified == []  # nothing re-ran, nothing re-notified
        assert rerun.outcomes == first.outcomes

    def test_interrupted_run_resumes_to_identical_result(self, tmp_path):
        """Kill the run mid-grid (observer raises); the resumed run must
        produce the same outcomes as an uninterrupted one."""
        path = tmp_path / "run.jsonl"
        grid = _grid(6)
        uninterrupted = GridRunner(workers=1).run(grid)

        class Killed(Exception):
            pass

        def dying_observer(outcome, done, total):
            if done == 3:
                raise Killed()

        checkpoint = RunCheckpoint(path)
        with pytest.raises(Killed):
            GridRunner(workers=1, observer=dying_observer).run(
                grid, checkpoint=checkpoint
            )
        checkpoint.close()
        assert 0 < RunCheckpoint(path).completed_count < len(grid)

        resumed = GridRunner(workers=1).run(grid, checkpoint=RunCheckpoint(path))
        assert resumed.outcomes == uninterrupted.outcomes

    def test_resume_works_under_a_pool(self, tmp_path):
        path = tmp_path / "run.jsonl"
        grid = ExperimentGrid(
            "sbr-small", [sbr_cell("gcore", 64 * KB), sbr_cell("gcore", 128 * KB),
                          sbr_cell("fastly", 64 * KB), sbr_cell("fastly", 128 * KB)]
        )
        serial = GridRunner(workers=1).run(grid)

        checkpoint = RunCheckpoint(path)
        GridRunner(workers=1).run(
            ExperimentGrid("sbr-small", grid.cells[:2]), checkpoint=checkpoint
        )
        checkpoint.close()

        resumed = GridRunner(workers=2).run(grid, checkpoint=RunCheckpoint(path))
        assert resumed.outcomes[:2] == serial.outcomes[:2]
        assert resumed.outcomes == serial.outcomes
