"""Runner-level observability: timing stats, collected traces/metrics,
the progress observer, and the run-all harvest.

Satellite (b) lives here — :meth:`GridResult.cell_seconds` must surface
max/mean and failed-cell timing, not just a sum — plus the integration
bar: a collected run-all profiles **every** grid cell, its spans link
up per cell, and per-cell metric counters reconcile with the trace
events those same cells emitted.
"""

from __future__ import annotations

import pytest

from repro.core.sbr import sbr_grid
from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN
from repro.netsim.trace import summarize
from repro.obs.metrics import (
    SEGMENT_EXCHANGES,
    SEGMENT_REQUEST_BYTES,
    SEGMENT_RESPONSE_BYTES_DELIVERED,
    SEGMENT_RESPONSE_BYTES_SENT,
    MetricsRegistry,
)
from repro.runner import (
    CellFailure,
    CellOutcome,
    CellTiming,
    ExperimentGrid,
    GridRunner,
    build_run_all_grid,
    clear_all_memos,
    run_all,
)
from repro.runner.experiments import obr_cell, sbr_cell

MB = 1 << 20

#: (metric counter name, summarize()/SegmentStats field) pairs that must
#: reconcile between the metrics registry and the trace-event stream.
BYTE_COUNTERS = (
    (SEGMENT_EXCHANGES, "exchanges"),
    (SEGMENT_REQUEST_BYTES, "request_bytes"),
    (SEGMENT_RESPONSE_BYTES_SENT, "response_bytes_sent"),
    (SEGMENT_RESPONSE_BYTES_DELIVERED, "response_bytes_delivered"),
)


@pytest.fixture(autouse=True)
def _fresh_memos():
    """Memoized cells would otherwise skip the traced execution path."""
    clear_all_memos()
    yield
    clear_all_memos()


def _outcome(label, duration_s, ok=True, index=0):
    return CellOutcome(
        cell=sbr_cell(label, 1 * MB),
        index=index,
        value=None if not ok else object(),
        failure=None if ok else CellFailure("BoomError", "boom"),
        duration_s=duration_s,
    )


class TestCellTiming:
    def test_empty_run_is_all_zeros(self):
        timing = CellTiming.from_outcomes(())
        assert timing.count == 0
        assert timing.total_s == 0.0
        assert timing.slowest == ""

    def test_max_mean_and_slowest_label(self):
        timing = CellTiming.from_outcomes(
            (_outcome("akamai", 1.0), _outcome("fastly", 3.0), _outcome("gcore", 2.0))
        )
        assert timing.count == 3
        assert timing.total_s == 6.0
        assert timing.max_s == 3.0
        assert timing.mean_s == 2.0
        assert "fastly" in timing.slowest

    def test_failed_cells_counted_and_broken_out(self):
        """A cell that burned 30 s before raising still burned 30 s."""
        timing = CellTiming.from_outcomes(
            (_outcome("akamai", 1.0), _outcome("broken", 30.0, ok=False))
        )
        assert timing.count == 2
        assert timing.failed_count == 1
        assert timing.total_s == 31.0
        assert timing.max_s == 30.0
        assert timing.ok_s == 1.0
        assert timing.failed_s == 30.0
        assert "broken" in timing.slowest

    def test_grid_result_cell_seconds_returns_the_stats(self):
        grid = sbr_grid(vendors=["akamai", "fastly"], sizes=(1 * MB,))
        result = GridRunner(workers=1).run(grid)
        timing = result.cell_seconds()
        assert isinstance(timing, CellTiming)
        assert timing.count == 2
        assert timing.failed_count == 0
        assert timing.total_s >= timing.max_s >= timing.mean_s > 0
        assert timing.slowest in [o.cell.label for o in result]


class TestCollectedRuns:
    GRID = staticmethod(
        lambda: sbr_grid(vendors=["gcore", "keycdn"], sizes=(1 * MB,))
    )

    def test_collect_attaches_observations(self):
        result = GridRunner(workers=1, collect=True).run(self.GRID())
        for outcome in result:
            assert outcome.obs is not None
            assert outcome.obs.spans
            assert outcome.obs.events
            assert outcome.obs.metrics

    def test_collect_does_not_change_values(self):
        plain = GridRunner(workers=1).run(self.GRID())
        clear_all_memos()
        collected = GridRunner(workers=1, collect=True).run(self.GRID())
        assert plain == collected  # obs excluded from equality by design
        assert [o.value for o in plain] == [o.value for o in collected]

    def test_pool_collect_matches_serial_collect(self):
        serial = GridRunner(workers=1, collect=True).run(self.GRID())
        # Pool workers fork from this process: drop the memos the serial
        # run just populated or the forked cells would skip execution
        # (and so skip tracing) entirely.
        clear_all_memos()
        parallel = GridRunner(workers=2, collect=True).run(self.GRID())
        assert serial == parallel
        for a, b in zip(serial, parallel):
            assert a.obs.spans == b.obs.spans
            # Everything except the wall-clock histogram is deterministic.
            deterministic = lambda m: {  # noqa: E731
                k: v for k, v in m.items() if k != "repro_runner_cell_seconds"
            }
            assert deterministic(a.obs.metrics) == deterministic(b.obs.metrics)

    def test_span_ids_namespaced_per_cell(self):
        result = GridRunner(workers=1, collect=True).run(self.GRID())
        for outcome in result:
            prefix = f"c{outcome.index}."
            assert all(s.span_id.startswith(prefix) for s in outcome.obs.spans)
            roots = [s for s in outcome.obs.spans if s.parent_id is None]
            assert [r.name for r in roots] == ["runner.cell"]
            assert roots[0].attributes["ok"] is True

    def test_failed_cell_still_observed(self):
        grid = ExperimentGrid("oops", [sbr_cell("nonexistent-vendor", 1 * MB)])
        result = GridRunner(workers=1, collect=True).run(grid)
        (outcome,) = result
        assert not outcome.ok
        assert outcome.obs is not None
        (root,) = [s for s in outcome.obs.spans if s.parent_id is None]
        assert root.attributes["ok"] is False
        assert "nonexistent-vendor" in root.attributes["error"]

    def test_cell_metrics_reconcile_with_cell_events(self):
        """Per-cell byte counters equal the totals of that same cell's
        trace events — exactly for SBR, and for a pinned OBR cell too
        (no hidden max-n probes)."""
        grid = ExperimentGrid(
            "reconcile",
            [
                sbr_cell("gcore", 1 * MB),
                obr_cell("cloudflare", "akamai", overlap_count=20),
            ],
        )
        result = GridRunner(workers=1, collect=True).run(grid)
        for outcome in result:
            totals = summarize(outcome.obs.events)
            registry = MetricsRegistry()
            registry.merge_snapshot(outcome.obs.metrics)
            assert totals  # every cell emitted events
            for name, key in BYTE_COUNTERS:
                counter = registry.counter(name)
                for segment, bucket in totals.items():
                    assert counter.value(segment=segment) == bucket[key], (
                        f"{outcome.cell.label}: {name}[{segment}]"
                    )


class TestObserver:
    def test_observer_sees_every_cell_once_serial(self):
        calls = []
        runner = GridRunner(
            workers=1, observer=lambda o, done, total: calls.append((o, done, total))
        )
        result = runner.run(self.grid())
        assert [done for _, done, _ in calls] == [1, 2, 3]
        assert {total for _, _, total in calls} == {3}
        # Serial notification order is grid order.
        assert [o.index for o, _, _ in calls] == [o.index for o in result]

    def test_observer_sees_every_cell_once_pooled(self):
        calls = []
        runner = GridRunner(
            workers=2, observer=lambda o, done, total: calls.append((o, done, total))
        )
        runner.run(self.grid())
        assert sorted(done for _, done, _ in calls) == [1, 2, 3]
        assert sorted(o.index for o, _, _ in calls) == [0, 1, 2]

    @staticmethod
    def grid():
        return sbr_grid(vendors=["akamai", "fastly", "gcore"], sizes=(1 * MB,))


class TestRunAllHarvest:
    """The --trace/--metrics/--profile integration bar, on a trimmed
    quick grid (one SBR vendor; the two quick OBR cascades stay)."""

    @pytest.fixture(scope="class")
    def report(self):
        clear_all_memos()
        return run_all(workers=2, quick=True, vendors=["gcore"], collect_obs=True)

    def test_profile_lists_every_grid_cell(self, report):
        grid = build_run_all_grid(
            vendors=["gcore"],
            fig6_sizes=(1 * MB, 2 * MB, 3 * MB),
            table4_sizes=(1 * MB,),
            table5_combos=[("cloudflare", "akamai"), ("cdn77", "azure")],
            fig7_ms=(2, 12, 15),
            ccfc_sizes=(1 * MB,),
        )
        assert [c.label for c in report.cells] == [c.label for c in grid.cells]
        assert len(report.cells) == report.cell_count
        assert all(cell.ok for cell in report.cells)

    def test_timing_by_experiment_partitions_the_run(self, report):
        assert set(report.timing_by_experiment) == {"sbr", "obr", "ccfc", "flood"}
        assert (
            sum(t.count for t in report.timing_by_experiment.values())
            == report.timing.count
            == report.cell_count
        )
        assert report.timing.max_s >= max(
            t.max_s for t in report.timing_by_experiment.values()
        )

    def test_spans_link_up_within_each_cell(self, report):
        assert report.spans
        by_id = {span.span_id: span for span in report.spans}
        for span in report.spans:
            if span.parent_id is None:
                assert span.name == "runner.cell"
                continue
            parent = by_id[span.parent_id]  # KeyError = broken linkage
            assert parent.trace_id == span.trace_id

    def test_events_join_spans_and_merged_metrics_cover_them(self, report):
        """Merged segment counters >= the merged event totals: OBR max-n
        probe exchanges hit the counters but never produce report
        events, so the metrics side dominates (per-cell exactness is
        pinned in TestCollectedRuns)."""
        span_ids = {span.span_id for span in report.spans}
        assert report.events
        assert all(e.span_id in span_ids for e in report.events)
        registry = MetricsRegistry()
        registry.merge_snapshot(report.metrics)
        totals = summarize(report.events)
        assert CLIENT_CDN in totals and CDN_ORIGIN in totals
        for name, key in BYTE_COUNTERS:
            counter = registry.counter(name)
            for segment, bucket in totals.items():
                assert counter.value(segment=segment) >= bucket[key]

    def test_cell_counter_matches_cell_count(self, report):
        registry = MetricsRegistry()
        registry.merge_snapshot(report.metrics)
        assert (
            registry.counter("repro_runner_cells_total").value(status="ok")
            == report.cell_count
        )
