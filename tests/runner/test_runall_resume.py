"""run-all under checkpointing: kill mid-grid, resume, compare artifacts."""

import pytest

from repro.errors import ReproError
from repro.runner.runall import run_all, write_report


class Killed(Exception):
    pass


def _kill_after(n):
    def observer(outcome, done, total):
        if done == n:
            raise Killed()

    return observer


def _artifact_bytes(report, directory):
    return {
        path.name: path.read_bytes() for path in write_report(report, directory)
    }


class TestRunAllResume:
    def test_resume_without_checkpoint_path_is_an_error(self):
        with pytest.raises(ReproError):
            run_all(quick=True, vendors=["gcore"], resume=True)

    def test_existing_checkpoint_without_resume_is_an_error(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text('{"format": "repro-checkpoint-v1"}\n')
        with pytest.raises(ReproError):
            run_all(quick=True, vendors=["gcore"], checkpoint_path=path)

    def test_killed_run_resumes_to_byte_identical_artifacts(self, tmp_path):
        """The acceptance check: a mid-grid kill plus ``--resume`` ends
        with artifacts identical to an uninterrupted run's."""
        clean = run_all(workers=1, quick=True, vendors=["gcore"], faults=True)
        clean_files = _artifact_bytes(clean, tmp_path / "clean")

        path = tmp_path / "ckpt.jsonl"
        with pytest.raises(Killed):
            run_all(
                workers=1,
                quick=True,
                vendors=["gcore"],
                faults=True,
                checkpoint_path=path,
                observer=_kill_after(3),
            )
        assert path.exists()

        resumed = run_all(
            workers=1,
            quick=True,
            vendors=["gcore"],
            faults=True,
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.restored_cells > 0
        resumed_files = _artifact_bytes(resumed, tmp_path / "resumed")
        assert resumed_files == clean_files

    def test_fresh_run_then_resume_restores_everything(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        first = run_all(
            workers=1, quick=True, vendors=["gcore"], checkpoint_path=path
        )
        again = run_all(
            workers=1,
            quick=True,
            vendors=["gcore"],
            checkpoint_path=path,
            resume=True,
        )
        from repro.runner import RunCheckpoint

        assert again.restored_cells == RunCheckpoint(path).completed_count
        assert again.restored_cells > 0
        assert again.table4 == first.table4
        assert again.table5 == first.table5
        assert again.fig7 == first.fig7
