"""Runner degradation: cell retries, crash containment, failure chains."""

import os
import signal

import pytest

from repro.errors import ReproError
from repro.runner import RETRIES_ENV, GridRunner, resolve_cell_retries
from repro.runner.executor import WORKER_CRASH, CellFailure
from repro.runner.grid import ExperimentCell, ExperimentGrid
from repro.runner.experiments import register

_FLAKY_FAILURES = {}


def _run_flaky(cell):
    """Fails until its per-key budget is spent (serial/in-process only)."""
    key = cell.key
    budget = cell.kwargs()["failures"]
    seen = _FLAKY_FAILURES.get(key, 0)
    if seen < budget:
        _FLAKY_FAILURES[key] = seen + 1
        raise ConnectionError(f"transient {seen + 1}/{budget}")
    return "recovered"


def _run_crash(cell):
    os.kill(os.getpid(), signal.SIGKILL)


def _run_echo(cell):
    return cell.key[1]


register("flaky-res", _run_flaky)
register("crash-res", _run_crash)
register("echo-res", _run_echo)


def _flaky_cell(name, failures):
    return ExperimentCell.make("flaky-res", ("flaky", name), failures=failures)


class TestCellRetries:
    def setup_method(self):
        _FLAKY_FAILURES.clear()

    def test_retries_recover_a_transient_failure(self):
        grid = ExperimentGrid("flaky", [_flaky_cell("a", 2)])
        result = GridRunner(workers=1, cell_retries=2, retry_backoff_s=0.0).run(grid)
        assert result.outcomes[0].ok
        assert result.outcomes[0].value == "recovered"
        assert result.outcomes[0].attempts == 3

    def test_zero_retries_fail_immediately(self):
        grid = ExperimentGrid("flaky", [_flaky_cell("b", 1)])
        result = GridRunner(workers=1, cell_retries=0).run(grid)
        assert not result.outcomes[0].ok
        assert result.outcomes[0].failure.exception_type == "ConnectionError"
        assert result.outcomes[0].attempts == 1

    def test_budget_exhaustion_keeps_the_last_failure(self):
        grid = ExperimentGrid("flaky", [_flaky_cell("c", 5)])
        result = GridRunner(workers=1, cell_retries=2, retry_backoff_s=0.0).run(grid)
        assert not result.outcomes[0].ok
        assert result.outcomes[0].attempts == 3
        assert "3/5" in result.outcomes[0].failure.message


class TestRetriesResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "7")
        assert resolve_cell_retries(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "4")
        assert resolve_cell_retries() == 4

    def test_default_is_zero(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        assert resolve_cell_retries() == 0

    def test_negative_explicit_rejected(self):
        with pytest.raises(ReproError):
            resolve_cell_retries(-1)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "many")
        with pytest.raises(ReproError):
            resolve_cell_retries()


class TestWorkerCrashContainment:
    def test_crasher_is_contained_and_innocents_complete(self):
        grid = ExperimentGrid(
            "crashy",
            [
                ExperimentCell.make("echo-res", ("e", 1)),
                ExperimentCell.make("crash-res", ("kill",)),
                ExperimentCell.make("echo-res", ("e", 2)),
                ExperimentCell.make("echo-res", ("e", 3)),
            ],
        )
        result = GridRunner(workers=2).run(grid)
        by_label = {o.cell.label: o for o in result.outcomes}
        crashed = by_label["crash-res[kill]"]
        assert not crashed.ok
        assert crashed.failure.exception_type == WORKER_CRASH
        for label, outcome in by_label.items():
            if label != "crash-res[kill]":
                assert outcome.ok, f"{label} should have survived the broken pool"

    def test_restart_budget_exhaustion_aborts(self):
        grid = ExperimentGrid(
            "crashy", [ExperimentCell.make("crash-res", ("kill", i)) for i in range(2)]
        )
        with pytest.raises(ReproError, match="pool broke"):
            GridRunner(workers=2, max_pool_restarts=0).run(grid)


class TestCellFailureChain:
    def test_cause_chain_is_captured(self):
        try:
            try:
                raise KeyError("missing-vendor")
            except KeyError as inner:
                raise ValueError("bad cell config") from inner
        except ValueError as error:
            failure = CellFailure.from_exception(error)
        assert failure.exception_type == "ValueError"
        assert len(failure.chain) == 2
        assert failure.chain[0].startswith("ValueError")
        assert failure.chain[1].startswith("KeyError")
        assert "root cause: KeyError" in failure.describe()

    def test_implicit_context_is_followed(self):
        try:
            try:
                raise OSError("disk gone")
            except OSError:
                raise RuntimeError("while handling")  # no 'from'
        except RuntimeError as error:
            failure = CellFailure.from_exception(error)
        assert failure.chain[-1].startswith("OSError")

    def test_suppressed_context_is_not_followed(self):
        try:
            try:
                raise OSError("disk gone")
            except OSError:
                raise RuntimeError("clean slate") from None
        except RuntimeError as error:
            failure = CellFailure.from_exception(error)
        assert len(failure.chain) == 1
        assert failure.describe() == "RuntimeError: clean slate"

    def test_cyclic_chain_terminates(self):
        error = ValueError("self-caused")
        error.__cause__ = error
        failure = CellFailure.from_exception(error)
        assert failure.chain == ("ValueError: self-caused",)

    def test_chain_survives_pickling_in_equality(self):
        import pickle

        try:
            raise ValueError("x")
        except ValueError as error:
            failure = CellFailure.from_exception(error)
        clone = pickle.loads(pickle.dumps(failure))
        assert clone == failure


class TestCellFailureChainDeterminism:
    """Regression for the id()-keyed cycle guard flagged by
    ``repro purity``: the guard now compares identity directly, so no
    address-derived value exists on the checkpoint path."""

    def test_two_node_cycle_terminates(self):
        first = ValueError("a")
        second = KeyError("b")
        first.__cause__ = second
        second.__cause__ = first
        failure = CellFailure.from_exception(first)
        assert failure.chain == ("ValueError: a", "KeyError: 'b'")

    def test_equal_but_distinct_exceptions_both_recorded(self):
        # Identity (not equality) must drive the cycle guard: two
        # distinct-but-equal links are both part of the chain.
        first = ValueError("same")
        second = ValueError("same")
        first.__cause__ = second
        failure = CellFailure.from_exception(first)
        assert failure.chain == ("ValueError: same", "ValueError: same")
