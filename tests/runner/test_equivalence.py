"""Serial vs parallel execution produces identical results.

This is the runner's core guarantee: outcomes are keyed and merged in
grid order regardless of completion order, cell functions are pure, and
timing is excluded from comparison — so a pool run of the Table IV and
Table V grids must compare (and repr) equal to a serial run, including
when a cell raises.
"""

from __future__ import annotations

import pytest

from repro.core.obr import obr_grid
from repro.core.practical import flood_grid
from repro.core.sbr import sbr_grid
from repro.reporting.tables import table4_rows, table5_rows
from repro.runner import (
    CellFailure,
    ExperimentGrid,
    GridRunner,
    RunnerCellError,
    clear_all_memos,
)
from repro.runner.experiments import sbr_cell

MB = 1 << 20

TABLE4_SIZES = (1 * MB, 10 * MB, 25 * MB)


@pytest.fixture(autouse=True)
def _fresh_memos():
    """Memo state must never be able to mask a determinism bug."""
    clear_all_memos()
    yield
    clear_all_memos()


def test_table4_grid_serial_and_parallel_identical():
    grid = sbr_grid(sizes=TABLE4_SIZES)
    serial = GridRunner(workers=1).run(grid)
    parallel = GridRunner(workers=4).run(grid)
    assert serial == parallel
    assert repr(serial) == repr(parallel)
    assert [o.value for o in serial] == [o.value for o in parallel]
    assert all(o.ok for o in parallel)
    assert parallel.workers > serial.workers


def test_table5_grid_serial_and_parallel_identical():
    grid = obr_grid()
    assert len(grid) == 11
    serial = GridRunner(workers=1).run(grid)
    parallel = GridRunner(workers=4).run(grid)
    assert serial == parallel
    assert repr(serial) == repr(parallel)
    # The merged order is grid order, not completion order.
    assert [o.cell for o in parallel] == list(grid.cells)
    assert [o.index for o in parallel] == list(range(len(grid)))


def test_flood_grid_serial_and_parallel_identical():
    grid = flood_grid(ms=(1, 2, 12))
    serial = GridRunner(workers=1).run(grid)
    parallel = GridRunner(workers=3).run(grid)
    assert serial == parallel
    assert [o.value for o in serial] == [o.value for o in parallel]


def test_equivalence_holds_when_a_cell_raises():
    grid = ExperimentGrid(
        "with-failure",
        [
            sbr_cell("akamai", 1 * MB),
            sbr_cell("nonexistent-vendor", 1 * MB),
            sbr_cell("fastly", 1 * MB),
        ],
    )
    serial = GridRunner(workers=1).run(grid)
    parallel = GridRunner(workers=3).run(grid)

    assert serial == parallel
    # The failing cell is captured, not fatal; its neighbors complete.
    assert [o.ok for o in parallel] == [True, False, True]
    failure = parallel.outcomes[1].failure
    assert isinstance(failure, CellFailure)
    assert failure.exception_type == "ConfigurationError"
    assert "nonexistent-vendor" in failure.message
    # Unwrapping the failed cell raises with the cell's label.
    with pytest.raises(RunnerCellError, match="nonexistent-vendor"):
        parallel.values()
    # Healthy cells still unwrap.
    assert parallel.outcomes[0].unwrap().vendor == "akamai"


def test_table4_rows_parallel_identical_to_legacy_serial():
    """The reporting surface: runner-backed rows == legacy serial rows."""
    parallel = table4_rows(sizes=(1 * MB,), runner=GridRunner(workers=4))
    serial = table4_rows(sizes=(1 * MB,))
    assert parallel == serial


def test_table5_rows_parallel_identical_to_legacy_serial():
    combos = [("cloudflare", "akamai"), ("stackpath", "azure")]
    parallel = table5_rows(combinations=combos, runner=GridRunner(workers=2))
    serial = table5_rows(combinations=combos)
    assert parallel == serial


def test_serial_env_var_forces_serial_execution(monkeypatch):
    monkeypatch.setenv("REPRO_RUNNER_SERIAL", "1")
    runner = GridRunner(workers=8)
    assert runner.workers == 1
    grid = sbr_grid(vendors=["akamai"], sizes=(1 * MB,))
    result = runner.run(grid)
    assert result.workers == 1
    assert result.outcomes[0].ok


def test_grid_dedups_overlapping_cells():
    grid = sbr_grid(vendors=["akamai"], sizes=(1 * MB, 1 * MB, 2 * MB))
    assert len(grid) == 2
