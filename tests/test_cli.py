"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestVendors:
    def test_lists_all_13(self, capsys):
        assert main(["vendors"]) == 0
        output = capsys.readouterr().out
        for name in ("akamai", "cloudflare", "tencent", "gcore"):
            assert name in output


class TestSbr:
    def test_runs_and_reports(self, capsys):
        assert main(["sbr", "akamai", "--size-mb", "1"]) == 0
        output = capsys.readouterr().out
        assert "amplification" in output
        assert "1707" in output.replace(",", "") or "170" in output

    def test_rounds_flag(self, capsys):
        assert main(["sbr", "gcore", "--size-mb", "1", "--rounds", "3"]) == 0
        assert "3 round(s)" in capsys.readouterr().out

    def test_unknown_vendor_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["sbr", "notacdn"])


class TestObr:
    def test_runs_with_explicit_n(self, capsys):
        assert main(["obr", "cloudflare", "akamai", "--overlaps", "64"]) == 0
        output = capsys.readouterr().out
        assert "overlap count n:   64" in output
        assert "amplification" in output

    def test_self_cascade_is_a_clean_error(self, capsys):
        assert main(["obr", "akamai", "akamai", "--overlaps", "4"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSurvey:
    def test_prints_three_tables(self, capsys):
        assert main(["survey"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "Table II" in output
        assert "Table III" in output
        assert "StackPath" in output


class TestFlood:
    def test_saturated_marker(self, capsys):
        assert main(["flood", "--m", "14"]) == 0
        assert "SATURATED" in capsys.readouterr().out

    def test_below_saturation(self, capsys):
        assert main(["flood", "--m", "2"]) == 0
        assert "SATURATED" not in capsys.readouterr().out


class TestMatrix:
    def test_prints_all_vendors_and_policies(self, capsys):
        assert main(["matrix"]) == 0
        output = capsys.readouterr().out
        for vendor in ("akamai", "cloudfront", "keycdn"):
            assert vendor in output
        assert "DEL" in output and "EXP" in output and "lazy" in output


class TestReport:
    def test_quick_report_written(self, tmp_path, capsys):
        target = tmp_path / "out"
        assert main(["report", str(target), "--quick"]) == 0
        output = capsys.readouterr().out
        assert "table4_sbr_factors" in output
        assert (target / "table1_sbr_feasibility.md").exists()


class TestEconomics:
    def test_sbr_campaign(self, capsys):
        assert main(
            ["economics", "sbr", "akamai", "--size-mb", "1", "--rps", "1", "--hours", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "victim bill" in output
        assert "$" in output

    def test_obr_campaign(self, capsys):
        assert main(["economics", "obr", "cloudflare:akamai", "--rps", "1"]) == 0
        assert "OBR campaign" in capsys.readouterr().out

    def test_bad_sbr_vendor(self, capsys):
        assert main(["economics", "sbr", "notacdn"]) == 2

    def test_bad_obr_pair(self, capsys):
        assert main(["economics", "obr", "akamai:akamai"]) == 2

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
