"""Unit and property tests for the body model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.body import (
    Body,
    BytesBody,
    CompositeBody,
    SyntheticBody,
    make_body,
)


class TestBytesBody:
    def test_length_and_materialize(self):
        body = BytesBody(b"hello")
        assert len(body) == 5
        assert body.materialize() == b"hello"

    def test_slice(self):
        body = BytesBody(b"hello world")
        assert body.slice(6, 11).materialize() == b"world"

    def test_slice_clamps(self):
        body = BytesBody(b"abc")
        assert body.slice(-5, 100).materialize() == b"abc"
        assert body.slice(2, 1).materialize() == b""

    def test_first(self):
        assert BytesBody(b"abcdef").first(3).materialize() == b"abc"

    def test_equality(self):
        assert BytesBody(b"ab") == BytesBody(b"ab")
        assert BytesBody(b"ab") != BytesBody(b"ac")


class TestSyntheticBody:
    def test_length_without_allocation(self):
        body = SyntheticBody(25 * 1024 * 1024)
        assert len(body) == 25 * 1024 * 1024

    def test_materialize_small(self):
        body = SyntheticBody(5, pattern=b"ab")
        assert body.materialize() == b"ababa"

    def test_slice_shifts_offset(self):
        body = SyntheticBody(10, pattern=b"abcd")
        assert body.slice(2, 6).materialize() == body.materialize()[2:6]

    def test_nested_slices(self):
        body = SyntheticBody(100, pattern=b"0123456789")
        once = body.slice(13, 77)
        twice = once.slice(5, 20)
        assert twice.materialize() == body.materialize()[18:33]

    def test_byte_at(self):
        body = SyntheticBody(10, pattern=b"xyz")
        full = body.materialize()
        assert all(body.byte_at(i) == full[i] for i in range(10))

    def test_byte_at_out_of_range(self):
        with pytest.raises(IndexError):
            SyntheticBody(3).byte_at(3)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            SyntheticBody(-1)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            SyntheticBody(5, pattern=b"")

    def test_materialize_limit(self):
        huge = SyntheticBody(SyntheticBody.MATERIALIZE_LIMIT + 1)
        with pytest.raises(MemoryError):
            huge.materialize()

    def test_equals_bytes_body_with_same_content(self):
        synthetic = SyntheticBody(6, pattern=b"ab")
        assert synthetic == BytesBody(b"ababab")

    @given(
        length=st.integers(min_value=0, max_value=500),
        start=st.integers(min_value=-10, max_value=510),
        stop=st.integers(min_value=-10, max_value=510),
        pattern=st.binary(min_size=1, max_size=16),
    )
    @settings(max_examples=200)
    def test_slice_consistency_property(self, length, start, stop, pattern):
        """Slicing a synthetic body must equal slicing its materialization."""
        body = SyntheticBody(length, pattern=pattern)
        expected_start = max(0, min(start, length))
        expected_stop = max(expected_start, min(stop, length))
        assert (
            body.slice(start, stop).materialize()
            == body.materialize()[expected_start:expected_stop]
        )


class TestCompositeBody:
    def test_concatenation(self):
        body = CompositeBody([b"ab", BytesBody(b"cd"), SyntheticBody(2, pattern=b"x")])
        assert len(body) == 6
        assert body.materialize() == b"abcdxx"

    def test_empty(self):
        body = CompositeBody()
        assert len(body) == 0
        assert body.materialize() == b""

    def test_slice_across_parts(self):
        body = CompositeBody([b"abc", b"def", b"ghi"])
        assert body.slice(2, 7).materialize() == b"cdefg"

    def test_slice_within_one_part(self):
        body = CompositeBody([b"abc", b"def"])
        assert body.slice(4, 5).materialize() == b"e"

    def test_nested_composites(self):
        inner = CompositeBody([b"ab", b"cd"])
        outer = CompositeBody([b"__", inner, b"!!"])
        assert outer.materialize() == b"__abcd!!"

    @given(
        chunks=st.lists(st.binary(max_size=20), max_size=8),
        start=st.integers(min_value=-5, max_value=200),
        stop=st.integers(min_value=-5, max_value=200),
    )
    @settings(max_examples=200)
    def test_slice_property(self, chunks, start, stop):
        body = CompositeBody(chunks)
        joined = b"".join(chunks)
        expected_start = max(0, min(start, len(joined)))
        expected_stop = max(expected_start, min(stop, len(joined)))
        assert (
            body.slice(start, stop).materialize()
            == joined[expected_start:expected_stop]
        )


class TestMakeBody:
    def test_none_is_empty(self):
        assert len(make_body(None)) == 0

    def test_bytes_passthrough(self):
        assert make_body(b"ab").materialize() == b"ab"

    def test_str_is_utf8(self):
        assert make_body("héllo").materialize() == "héllo".encode("utf-8")

    def test_int_is_synthetic(self):
        body = make_body(1024)
        assert isinstance(body, SyntheticBody)
        assert len(body) == 1024

    def test_body_passthrough_identity(self):
        body = BytesBody(b"x")
        assert make_body(body) is body

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            make_body(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            make_body(3.14)

    def test_all_bodies_implement_interface(self):
        for body in (BytesBody(b"a"), SyntheticBody(1), CompositeBody([b"a"])):
            assert isinstance(body, Body)
