"""Unit tests for the ordered, case-insensitive header map."""

import pytest

from repro.errors import HeaderError
from repro.http.headers import Headers


class TestBasicOperations:
    def test_empty_headers(self):
        headers = Headers()
        assert len(headers) == 0
        assert headers.get("Host") is None
        assert "Host" not in headers

    def test_add_and_get(self):
        headers = Headers()
        headers.add("Host", "example.com")
        assert headers.get("Host") == "example.com"

    def test_lookup_is_case_insensitive(self):
        headers = Headers([("Content-Type", "text/plain")])
        assert headers.get("content-type") == "text/plain"
        assert headers.get("CONTENT-TYPE") == "text/plain"
        assert "cOnTeNt-TyPe" in headers

    def test_get_returns_first_value(self):
        headers = Headers([("Via", "1.1 a"), ("Via", "1.1 b")])
        assert headers.get("Via") == "1.1 a"

    def test_get_all_preserves_order(self):
        headers = Headers([("Via", "1.1 a"), ("Host", "h"), ("Via", "1.1 b")])
        assert headers.get_all("via") == ["1.1 a", "1.1 b"]

    def test_get_default(self):
        assert Headers().get("X-Nope", "fallback") == "fallback"

    def test_get_int(self):
        headers = Headers([("Content-Length", "42")])
        assert headers.get_int("Content-Length") == 42

    def test_get_int_missing_returns_default(self):
        assert Headers().get_int("Content-Length") is None
        assert Headers().get_int("Content-Length", 7) == 7

    def test_get_int_malformed_raises(self):
        headers = Headers([("Content-Length", "forty-two")])
        with pytest.raises(HeaderError):
            headers.get_int("Content-Length")

    def test_iteration_preserves_wire_order(self):
        items = [("B", "2"), ("A", "1"), ("C", "3")]
        assert Headers(items).items() == items

    def test_values_coerced_to_str(self):
        headers = Headers()
        headers.add("Content-Length", 10)
        assert headers.get("Content-Length") == "10"


class TestSetAndRemove:
    def test_set_replaces_in_place(self):
        headers = Headers([("A", "1"), ("B", "2"), ("A", "3")])
        headers.set("a", "9")
        assert headers.items() == [("a", "9"), ("B", "2")]

    def test_set_appends_when_absent(self):
        headers = Headers([("A", "1")])
        headers.set("B", "2")
        assert headers.items() == [("A", "1"), ("B", "2")]

    def test_remove_deletes_all_and_counts(self):
        headers = Headers([("Via", "a"), ("Host", "h"), ("VIA", "b")])
        assert headers.remove("via") == 2
        assert headers.items() == [("Host", "h")]

    def test_remove_missing_returns_zero(self):
        assert Headers().remove("X") == 0


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(HeaderError):
            Headers([("", "v")])

    @pytest.mark.parametrize("bad", ["Na me", "Na:me", "Na\tme", "Na(me)", "Nam\xe9"])
    def test_invalid_name_characters_rejected(self, bad):
        with pytest.raises(HeaderError):
            Headers([(bad, "v")])

    @pytest.mark.parametrize("bad", ["a\r\nb", "a\nb", "a\rb"])
    def test_crlf_injection_rejected(self, bad):
        with pytest.raises(HeaderError):
            Headers([("X", bad)])

    def test_set_validates_too(self):
        headers = Headers()
        with pytest.raises(HeaderError):
            headers.set("X", "bad\r\nvalue")


class TestWireSize:
    def test_wire_size_matches_serialize(self):
        headers = Headers([("Host", "example.com"), ("Range", "bytes=0-0")])
        assert headers.wire_size() == len(headers.serialize())

    def test_empty_wire_size(self):
        assert Headers().wire_size() == 0
        assert Headers().serialize() == b""

    def test_field_line_size(self):
        headers = Headers([("Range", "bytes=0-0")])
        # "Range: bytes=0-0\r\n" is 18 bytes
        assert headers.field_line_size("range") == 18

    def test_field_line_size_absent(self):
        assert Headers().field_line_size("Range") == 0

    def test_serialize_format(self):
        headers = Headers([("Host", "h"), ("A", "1")])
        assert headers.serialize() == b"Host: h\r\nA: 1\r\n"


class TestParseAndCopy:
    def test_parse_round_trip(self):
        original = Headers([("Host", "example.com"), ("Range", "bytes=0-0")])
        parsed = Headers.parse(original.serialize())
        assert parsed == original

    def test_parse_empty(self):
        assert len(Headers.parse(b"")) == 0

    def test_parse_malformed_line_raises(self):
        with pytest.raises(HeaderError):
            Headers.parse(b"no-colon-here\r\n")

    def test_copy_is_independent(self):
        original = Headers([("A", "1")])
        clone = original.copy()
        clone.add("B", "2")
        assert "B" not in original

    def test_equality_ignores_name_case(self):
        assert Headers([("HOST", "h")]) == Headers([("host", "h")])

    def test_equality_respects_values(self):
        assert Headers([("A", "1")]) != Headers([("A", "2")])
