"""Unit and property tests for the RFC 7233 range grammar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RangeNotSatisfiableError, RangeParseError
from repro.http.ranges import (
    ByteRangeSpec,
    RangeSpecifier,
    ResolvedRange,
    SuffixByteRangeSpec,
    coalesce_ranges,
    covering_span,
    distinct_resolved_bytes,
    format_content_range,
    format_unsatisfied_content_range,
    parse_content_range,
    parse_range_header,
    ranges_overlap,
    total_resolved_bytes,
    try_parse_range_header,
)


class TestParsing:
    def test_single_closed(self):
        spec = parse_range_header("bytes=0-499")
        assert spec.specs == (ByteRangeSpec(0, 499),)

    def test_single_open(self):
        spec = parse_range_header("bytes=9500-")
        assert spec.specs == (ByteRangeSpec(9500, None),)

    def test_suffix(self):
        spec = parse_range_header("bytes=-500")
        assert spec.specs == (SuffixByteRangeSpec(500),)

    def test_multiple_ranges(self):
        spec = parse_range_header("bytes=0-0,-1")
        assert spec.specs == (ByteRangeSpec(0, 0), SuffixByteRangeSpec(1))
        assert spec.is_multi

    def test_optional_whitespace_after_commas(self):
        spec = parse_range_header("bytes=0-0, 5-9,\t-2")
        assert len(spec) == 3

    def test_empty_list_elements_tolerated(self):
        # The #rule list grammar allows "a,,b".
        spec = parse_range_header("bytes=0-0,,5-9")
        assert len(spec) == 2

    def test_rfc_appendix_examples(self):
        # RFC 7233's canonical examples for a 10000-byte representation.
        assert parse_range_header("bytes=0-499").resolve(10000) == [ResolvedRange(0, 499)]
        assert parse_range_header("bytes=-500").resolve(10000) == [ResolvedRange(9500, 9999)]
        assert parse_range_header("bytes=9500-").resolve(10000) == [ResolvedRange(9500, 9999)]

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "bytes=",
            "bytes",
            "0-499",
            "bytes=a-b",
            "bytes=5-3",
            "bytes=--5",
            "bytes=-",
            "bytes=5--9",
            "bytes= 0-0",  # no space allowed between '=' and spec? it is OWS-trimmed per element
        ],
    )
    def test_malformed_rejected(self, bad):
        if bad == "bytes= 0-0":
            # OWS after the comma-separated element is legal; this parses.
            assert parse_range_header(bad).specs == (ByteRangeSpec(0, 0),)
            return
        with pytest.raises(RangeParseError):
            parse_range_header(bad)

    def test_non_bytes_unit_rejected_when_strict(self):
        with pytest.raises(RangeParseError):
            parse_range_header("items=0-5")

    def test_non_bytes_unit_allowed_when_lenient(self):
        spec = parse_range_header("items=0-5", strict_unit=False)
        assert spec.unit == "items"

    def test_try_parse_returns_none_on_garbage(self):
        assert try_parse_range_header("bytes=oops") is None
        assert try_parse_range_header(None) is None
        assert try_parse_range_header("bytes=0-0") is not None

    def test_round_trip(self):
        value = "bytes=0-0,5-,-200"
        assert parse_range_header(value).to_header_value() == value

    def test_negative_positions_unrepresentable(self):
        with pytest.raises(RangeParseError):
            ByteRangeSpec(-1, 5)
        with pytest.raises(RangeParseError):
            SuffixByteRangeSpec(-1)


class TestResolution:
    def test_closed_range_within_bounds(self):
        assert ByteRangeSpec(2, 5).resolve(10) == ResolvedRange(2, 5)

    def test_last_clamped_to_end(self):
        assert ByteRangeSpec(2, 100).resolve(10) == ResolvedRange(2, 9)

    def test_open_range(self):
        assert ByteRangeSpec(3).resolve(10) == ResolvedRange(3, 9)

    def test_first_past_end_unsatisfiable(self):
        assert ByteRangeSpec(10).resolve(10) is None
        assert ByteRangeSpec(11, 20).resolve(10) is None

    def test_suffix_normal(self):
        assert SuffixByteRangeSpec(3).resolve(10) == ResolvedRange(7, 9)

    def test_suffix_longer_than_file(self):
        assert SuffixByteRangeSpec(100).resolve(10) == ResolvedRange(0, 9)

    def test_suffix_zero_unsatisfiable(self):
        assert SuffixByteRangeSpec(0).resolve(10) is None

    def test_suffix_on_empty_file_unsatisfiable(self):
        assert SuffixByteRangeSpec(5).resolve(0) is None

    def test_specifier_drops_unsatisfiable_specs(self):
        spec = parse_range_header("bytes=0-0,50-60")
        assert spec.resolve(10) == [ResolvedRange(0, 0)]

    def test_specifier_preserves_order_and_duplicates(self):
        spec = parse_range_header("bytes=5-9,0-0,5-9")
        assert spec.resolve(10) == [
            ResolvedRange(5, 9),
            ResolvedRange(0, 0),
            ResolvedRange(5, 9),
        ]

    def test_all_unsatisfiable_raises_416_condition(self):
        spec = parse_range_header("bytes=50-60")
        with pytest.raises(RangeNotSatisfiableError) as exc_info:
            spec.resolve(10)
        assert exc_info.value.complete_length == 10

    def test_has_overlaps(self):
        assert parse_range_header("bytes=0-,0-").has_overlaps(10)
        assert not parse_range_header("bytes=0-0,5-9").has_overlaps(10)
        assert not parse_range_header("bytes=50-60").has_overlaps(10)

    def test_requested_bytes_double_counts_overlaps(self):
        spec = parse_range_header("bytes=0-,0-")
        assert spec.requested_bytes(10) == 20


class TestResolvedRange:
    def test_length(self):
        assert ResolvedRange(0, 0).length == 1
        assert ResolvedRange(3, 7).length == 5

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ResolvedRange(5, 3)
        with pytest.raises(ValueError):
            ResolvedRange(-1, 3)

    def test_overlaps(self):
        assert ResolvedRange(0, 5).overlaps(ResolvedRange(5, 9))
        assert not ResolvedRange(0, 4).overlaps(ResolvedRange(5, 9))

    def test_touches_includes_adjacency(self):
        assert ResolvedRange(0, 4).touches(ResolvedRange(5, 9))
        assert not ResolvedRange(0, 3).touches(ResolvedRange(5, 9))

    def test_union(self):
        assert ResolvedRange(0, 4).union(ResolvedRange(3, 9)) == ResolvedRange(0, 9)


class TestAnalysisHelpers:
    def test_coalesce_merges_overlapping(self):
        merged = coalesce_ranges([ResolvedRange(0, 5), ResolvedRange(3, 9)])
        assert merged == [ResolvedRange(0, 9)]

    def test_coalesce_merges_adjacent(self):
        merged = coalesce_ranges([ResolvedRange(0, 4), ResolvedRange(5, 9)])
        assert merged == [ResolvedRange(0, 9)]

    def test_coalesce_keeps_disjoint(self):
        ranges = [ResolvedRange(0, 1), ResolvedRange(5, 9)]
        assert coalesce_ranges(ranges) == ranges

    def test_coalesce_unsorted_input(self):
        merged = coalesce_ranges([ResolvedRange(5, 9), ResolvedRange(0, 6)])
        assert merged == [ResolvedRange(0, 9)]

    def test_coalesce_empty(self):
        assert coalesce_ranges([]) == []

    def test_covering_span(self):
        span = covering_span([ResolvedRange(3, 4), ResolvedRange(8, 9)])
        assert span == ResolvedRange(3, 9)

    def test_covering_span_empty_raises(self):
        with pytest.raises(ValueError):
            covering_span([])

    def test_total_vs_distinct_bytes(self):
        overlapping = [ResolvedRange(0, 9), ResolvedRange(0, 9)]
        assert total_resolved_bytes(overlapping) == 20
        assert distinct_resolved_bytes(overlapping) == 10

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
            ).map(lambda t: ResolvedRange(min(t), max(t))),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=200)
    def test_coalesce_properties(self, ranges):
        merged = coalesce_ranges(ranges)
        # Sorted, non-overlapping, non-adjacent.
        assert merged == sorted(merged)
        for a, b in zip(merged, merged[1:]):
            assert not a.touches(b)
        # Coverage preserved.
        covered = set()
        for r in ranges:
            covered.update(range(r.start, r.end + 1))
        merged_covered = set()
        for r in merged:
            merged_covered.update(range(r.start, r.end + 1))
        assert covered == merged_covered
        # Idempotent.
        assert coalesce_ranges(merged) == merged


class TestContentRange:
    def test_format(self):
        assert format_content_range(0, 0, 1000) == "bytes 0-0/1000"
        assert format_content_range(5, 9, None) == "bytes 5-9/*"

    def test_format_invalid(self):
        with pytest.raises(ValueError):
            format_content_range(5, 3, 10)

    def test_format_unsatisfied(self):
        assert format_unsatisfied_content_range(1000) == "bytes */1000"

    def test_parse_normal(self):
        resolved, complete = parse_content_range("bytes 0-0/1000")
        assert resolved == ResolvedRange(0, 0)
        assert complete == 1000

    def test_parse_unknown_length(self):
        resolved, complete = parse_content_range("bytes 5-9/*")
        assert resolved == ResolvedRange(5, 9)
        assert complete is None

    def test_parse_unsatisfied_form(self):
        resolved, complete = parse_content_range("bytes */1000")
        assert resolved is None
        assert complete == 1000

    @pytest.mark.parametrize("bad", ["bytes 5-3/10", "0-0/10", "bytes x-y/10", "bytes */x"])
    def test_parse_malformed(self, bad):
        with pytest.raises(RangeParseError):
            parse_content_range(bad)

    def test_round_trip(self):
        value = format_content_range(3, 9, 100)
        resolved, complete = parse_content_range(value)
        assert (resolved, complete) == (ResolvedRange(3, 9), 100)


# ---------------------------------------------------------------------------
# Property tests over the whole grammar
# ---------------------------------------------------------------------------

_spec_strategy = st.one_of(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.one_of(st.none(), st.integers(min_value=0, max_value=10_000)),
    ).map(
        lambda t: ByteRangeSpec(t[0], None if t[1] is None else max(t[0], t[1]))
    ),
    st.integers(min_value=0, max_value=10_000).map(SuffixByteRangeSpec),
)


class TestGrammarProperties:
    @given(specs=st.lists(_spec_strategy, min_size=1, max_size=8))
    @settings(max_examples=300)
    def test_format_parse_round_trip(self, specs):
        original = RangeSpecifier(specs)
        parsed = parse_range_header(original.to_header_value())
        assert parsed == original

    @given(
        specs=st.lists(_spec_strategy, min_size=1, max_size=8),
        length=st.integers(min_value=0, max_value=20_000),
    )
    @settings(max_examples=300)
    def test_resolution_stays_in_bounds(self, specs, length):
        specifier = RangeSpecifier(specs)
        try:
            resolved = specifier.resolve(length)
        except RangeNotSatisfiableError:
            return
        assert resolved
        for r in resolved:
            assert 0 <= r.start <= r.end < length
