"""Property-based round-trips for the RFC 7233 range grammar.

Two families of invariants:

* every valid ``Range`` header value this library can express or
  generate parses back to an equivalent :class:`RangeSpecifier`;
* ``multipart/byteranges`` encode/decode round-trips part boundaries,
  Content-Range windows, and byte counts exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.body import SyntheticBody
from repro.http.grammar import RangeCorpusGenerator, overlapping_open_ranges_value, obr_value_size
from repro.http.multipart import MultipartByteranges
from repro.http.ranges import (
    ByteRangeSpec,
    RangeSpecifier,
    ResolvedRange,
    SuffixByteRangeSpec,
    parse_range_header,
)

MAX_POS = 1 << 40  # range positions well past any resource in the paper


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def byte_range_specs(draw):
    first = draw(st.integers(min_value=0, max_value=MAX_POS))
    if draw(st.booleans()):
        last = None
    else:
        last = draw(st.integers(min_value=first, max_value=first + MAX_POS))
    return ByteRangeSpec(first, last)


suffix_specs = st.integers(min_value=0, max_value=MAX_POS).map(SuffixByteRangeSpec)

range_specifiers = st.lists(
    st.one_of(byte_range_specs(), suffix_specs), min_size=1, max_size=32
).map(RangeSpecifier)


@st.composite
def resolved_range_lists(draw, complete_length):
    count = draw(st.integers(min_value=1, max_value=12))
    ranges = []
    for _ in range(count):
        start = draw(st.integers(min_value=0, max_value=complete_length - 1))
        end = draw(st.integers(min_value=start, max_value=complete_length - 1))
        ranges.append(ResolvedRange(start, end))
    return ranges


# ---------------------------------------------------------------------------
# Range header round-trips
# ---------------------------------------------------------------------------

@given(range_specifiers)
def test_range_specifier_roundtrips_through_header_value(spec):
    parsed = parse_range_header(spec.to_header_value())
    assert parsed == spec
    # And serialization is a fixed point.
    assert parsed.to_header_value() == spec.to_header_value()


@given(range_specifiers, st.integers(min_value=1, max_value=MAX_POS))
def test_roundtrip_preserves_resolution(spec, complete_length):
    """Parsing back yields the same satisfiable windows (or the same 416)."""
    from repro.errors import RangeNotSatisfiableError

    parsed = parse_range_header(spec.to_header_value())
    try:
        expected = spec.resolve(complete_length)
    except RangeNotSatisfiableError:
        expected = None
    try:
        actual = parsed.resolve(complete_length)
    except RangeNotSatisfiableError:
        actual = None
    assert actual == expected


@given(
    st.integers(min_value=1, max_value=512),
    st.sampled_from([None, "-1024", "1-"]),
)
def test_obr_value_parses_with_declared_count_and_size(count, leading):
    """The OBR attack string: n specs, analytic size matches, parses clean."""
    value = overlapping_open_ranges_value(count, leading=leading)
    assert len(value) == obr_value_size(count, leading=leading)
    parsed = parse_range_header(value)
    assert len(parsed) == count


def test_generated_corpus_parses_back_equivalently():
    """Every ABNF-generated valid case (the Exp 1 dataset) round-trips."""
    for case in RangeCorpusGenerator(file_size=4096).full_corpus():
        parsed = parse_range_header(case.header_value)
        assert parsed.to_header_value() == case.header_value.replace(" ", ""), case
        reparsed = parse_range_header(parsed.to_header_value())
        assert reparsed == parsed, case


# ---------------------------------------------------------------------------
# multipart/byteranges round-trips
# ---------------------------------------------------------------------------

@st.composite
def multipart_payloads(draw):
    complete_length = draw(st.integers(min_value=1, max_value=4096))
    ranges = draw(resolved_range_lists(complete_length))
    return complete_length, ranges


@given(multipart_payloads())
@settings(max_examples=60)
def test_multipart_encode_decode_roundtrips(payload):
    complete_length, ranges = payload
    resource = SyntheticBody(complete_length)
    original = MultipartByteranges.build(
        resource, ranges, content_type="application/octet-stream"
    )
    blob = original.to_body().materialize()

    # Declared wire size is exact.
    assert len(blob) == original.wire_size()

    decoded = MultipartByteranges.parse(blob, original.boundary)
    assert len(decoded) == len(original)
    for original_part, decoded_part in zip(original.parts, decoded.parts):
        assert decoded_part.content_range == original_part.content_range
        assert decoded_part.complete_length == complete_length
        assert len(decoded_part.payload) == original_part.content_range.length
        assert (
            decoded_part.payload.materialize()
            == original_part.payload.materialize()
        )

    # Re-encoding the decoded payload is byte-identical.
    assert decoded.to_body().materialize() == blob


@given(multipart_payloads())
@settings(max_examples=30)
def test_multipart_wire_size_double_counts_overlaps(payload):
    """n overlapping parts carry n payloads — the OBR amplification core."""
    complete_length, ranges = payload
    resource = SyntheticBody(complete_length)
    multipart = MultipartByteranges.build(
        resource, ranges, content_type="application/octet-stream"
    )
    payload_bytes = sum(r.length for r in ranges)
    overhead = sum(multipart.part_overhead(p) for p in multipart.parts)
    closer = len(multipart.boundary) + 6
    assert multipart.wire_size() == payload_bytes + overhead + closer
