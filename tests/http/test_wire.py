"""Unit and property tests for wire-format parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MessageError
from repro.http.message import HttpRequest, HttpResponse
from repro.http.wire import parse_request, parse_response


class TestParseRequest:
    def test_round_trip(self):
        original = HttpRequest(
            "GET",
            "/file.bin?cb=3",
            headers=[("Host", "victim.example"), ("Range", "bytes=0-0")],
        )
        parsed = parse_request(original.serialize())
        assert parsed.method == "GET"
        assert parsed.target == "/file.bin?cb=3"
        assert parsed.headers == original.headers
        assert parsed.serialize() == original.serialize()

    def test_body_delimited_by_content_length(self):
        blob = (
            b"POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabcEXTRA"
        )
        parsed = parse_request(blob)
        assert parsed.body.materialize() == b"abc"

    def test_body_without_content_length_takes_rest(self):
        blob = b"POST /x HTTP/1.1\r\nHost: h\r\n\r\npayload"
        assert parse_request(blob).body.materialize() == b"payload"

    @pytest.mark.parametrize(
        "bad",
        [
            b"GET /x HTTP/1.1\r\nHost: h\r\n",  # no blank line
            b"GET /x\r\n\r\n",  # two-token request line
            b"GET /x NOTHTTP\r\n\r\n",  # bad version
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",  # truncated
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(MessageError):
            parse_request(bad)


class TestParseResponse:
    def test_round_trip(self):
        original = HttpResponse(
            206,
            headers=[("Content-Range", "bytes 0-0/1000"), ("Content-Length", "1")],
            body=b"x",
        )
        parsed = parse_response(original.serialize())
        assert parsed.status == 206
        assert parsed.reason == "Partial Content"
        assert parsed.serialize() == original.serialize()

    def test_status_only_line(self):
        parsed = parse_response(b"HTTP/1.1 204\r\n\r\n")
        assert parsed.status == 204
        assert parsed.reason == ""

    def test_reason_with_spaces(self):
        parsed = parse_response(b"HTTP/1.1 416 Range Not Satisfiable\r\n\r\n")
        assert parsed.reason == "Range Not Satisfiable"

    @pytest.mark.parametrize(
        "bad",
        [
            b"HTTP/1.1 abc OK\r\n\r\n",
            b"NOTHTTP 200 OK\r\n\r\n",
            b"HTTP/1.1\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(MessageError):
            parse_response(bad)


_token = st.text(alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12)


class TestRoundTripProperties:
    @given(
        target=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789/?=&.-", min_size=1, max_size=30
        ).map(lambda s: "/" + s),
        header_names=st.lists(_token, min_size=0, max_size=5, unique=True),
        body=st.binary(max_size=64),
    )
    @settings(max_examples=150)
    def test_request_round_trip(self, target, header_names, body):
        headers = [("Host", "h")] + [(n, "v") for n in header_names]
        headers.append(("Content-Length", str(len(body))))
        original = HttpRequest("GET", target, headers=headers, body=body)
        parsed = parse_request(original.serialize())
        assert parsed.serialize() == original.serialize()
        assert parsed.wire_size() == original.wire_size()

    @given(
        status=st.integers(min_value=100, max_value=599),
        body=st.binary(max_size=64),
    )
    @settings(max_examples=150)
    def test_response_round_trip(self, status, body):
        original = HttpResponse(
            status, headers=[("Content-Length", str(len(body)))], body=body
        )
        parsed = parse_response(original.serialize())
        assert parsed.serialize() == original.serialize()

    def test_cdn_response_parses_from_wire(self):
        """End-to-end: a simulated CDN response survives serialization."""
        from tests.conftest import get, make_node, make_origin

        node = make_node("cloudflare", make_origin(1000))
        response = get(node, range_value="bytes=5-9")
        parsed = parse_response(response.serialize())
        assert parsed.status == 206
        assert parsed.headers.get("Content-Range") == "bytes 5-9/1000"
        assert parsed.body.materialize() == response.body.materialize()
