"""Unit tests for HTTP request/response messages and wire accounting."""

import pytest

from repro.errors import MessageError
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse


class TestHttpRequest:
    def test_defaults(self):
        request = HttpRequest()
        assert request.method == "GET"
        assert request.target == "/"
        assert request.version == "HTTP/1.1"
        assert len(request.body) == 0

    def test_request_line(self):
        request = HttpRequest("GET", "/a/b?x=1")
        assert request.request_line() == "GET /a/b?x=1 HTTP/1.1"

    def test_host_property(self):
        request = HttpRequest(headers=[("Host", "example.com")])
        assert request.host == "example.com"
        assert HttpRequest().host is None

    def test_path_and_query(self):
        request = HttpRequest(target="/file.bin?cb=3&x=1")
        assert request.path == "/file.bin"
        assert request.query == "cb=3&x=1"

    def test_path_without_query(self):
        request = HttpRequest(target="/file.bin")
        assert request.path == "/file.bin"
        assert request.query == ""

    def test_range_header_property(self):
        request = HttpRequest(headers=[("Range", "bytes=0-0")])
        assert request.range_header == "bytes=0-0"

    def test_wire_size_matches_serialize(self):
        request = HttpRequest(
            "GET", "/x", headers=[("Host", "h"), ("Range", "bytes=0-0")], body=b"abc"
        )
        assert request.wire_size() == len(request.serialize())

    def test_header_block_size_matches_serialize_prefix(self):
        request = HttpRequest("GET", "/x", headers=[("Host", "h")])
        blob = request.serialize()
        assert blob.endswith(b"\r\n\r\n")
        assert request.header_block_size() == len(blob)

    def test_copy_is_deep_for_headers(self):
        request = HttpRequest(headers=[("Host", "h")])
        clone = request.copy()
        clone.headers.add("Range", "bytes=0-0")
        assert "Range" not in request.headers

    def test_invalid_method_rejected(self):
        with pytest.raises(MessageError):
            HttpRequest(method="GE T")
        with pytest.raises(MessageError):
            HttpRequest(method="")

    def test_invalid_target_rejected(self):
        with pytest.raises(MessageError):
            HttpRequest(target="/a b")
        with pytest.raises(MessageError):
            HttpRequest(target="")

    def test_headers_accepts_headers_instance(self):
        headers = Headers([("Host", "h")])
        request = HttpRequest(headers=headers)
        assert request.headers is headers


class TestHttpResponse:
    def test_reason_defaults_from_status(self):
        assert HttpResponse(206).reason == "Partial Content"
        assert HttpResponse(200).reason == "OK"
        assert HttpResponse(416).reason == "Range Not Satisfiable"

    def test_custom_reason(self):
        assert HttpResponse(200, reason="Fine").reason == "Fine"

    def test_status_line(self):
        assert HttpResponse(206).status_line() == "HTTP/1.1 206 Partial Content"

    def test_predicates(self):
        assert HttpResponse(200).is_success
        assert HttpResponse(206).is_partial
        assert not HttpResponse(416).is_success

    def test_wire_size_matches_serialize(self):
        response = HttpResponse(
            200, headers=[("Content-Length", "3")], body=b"abc"
        )
        assert response.wire_size() == len(response.serialize())

    def test_wire_size_with_synthetic_body(self):
        response = HttpResponse(200, body=10 * 1024 * 1024)
        assert response.wire_size() == response.header_block_size() + 10 * 1024 * 1024

    def test_declared_content_length(self):
        response = HttpResponse(200, headers=[("Content-Length", "99")])
        assert response.declared_content_length() == 99
        assert HttpResponse(200).declared_content_length() is None

    def test_content_type(self):
        response = HttpResponse(200, headers=[("Content-Type", "image/png")])
        assert response.content_type == "image/png"

    def test_invalid_status_rejected(self):
        with pytest.raises(MessageError):
            HttpResponse(99)
        with pytest.raises(MessageError):
            HttpResponse(600)

    def test_copy_is_independent(self):
        response = HttpResponse(200, headers=[("A", "1")], body=b"x")
        clone = response.copy()
        clone.headers.add("B", "2")
        assert "B" not in response.headers
        assert clone.body.materialize() == b"x"
