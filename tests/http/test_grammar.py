"""Unit tests for the ABNF-driven Range header generator."""

import pytest

from repro.http.grammar import (
    RangeCorpusGenerator,
    RangeFormat,
    max_overlapping_ranges_for_value_size,
    obr_value_size,
    overlapping_open_ranges_value,
    single_range_value,
    suffix_range_value,
)
from repro.http.ranges import parse_range_header


class TestAttackBuilders:
    def test_single_range_value(self):
        assert single_range_value(0, 0) == "bytes=0-0"
        assert single_range_value(5) == "bytes=5-"

    def test_suffix_range_value(self):
        assert suffix_range_value(1) == "bytes=-1"

    def test_overlapping_open_ranges(self):
        assert overlapping_open_ranges_value(3) == "bytes=0-,0-,0-"

    def test_overlapping_with_leading(self):
        assert overlapping_open_ranges_value(3, leading="-1024") == "bytes=-1024,0-,0-"
        assert overlapping_open_ranges_value(3, leading="1-") == "bytes=1-,0-,0-"

    def test_single_with_leading(self):
        assert overlapping_open_ranges_value(1, leading="-1024") == "bytes=-1024"

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            overlapping_open_ranges_value(0)

    @pytest.mark.parametrize("n", [1, 2, 7, 100, 5455])
    @pytest.mark.parametrize("leading", [None, "-1024", "1-"])
    def test_value_size_is_exact(self, n, leading):
        value = overlapping_open_ranges_value(n, leading=leading)
        assert obr_value_size(n, leading=leading) == len(value)

    def test_generated_values_are_valid_range_headers(self):
        for n in (1, 2, 64, 500):
            value = overlapping_open_ranges_value(n, leading="-1024")
            spec = parse_range_header(value)
            assert len(spec) == n

    @pytest.mark.parametrize("limit", [10, 16, 100, 16384, 32768])
    @pytest.mark.parametrize("leading", [None, "-1024", "1-"])
    def test_max_for_value_size_is_tight(self, limit, leading):
        n = max_overlapping_ranges_for_value_size(limit, leading=leading)
        if n == 0:
            assert obr_value_size(1, leading=leading) > limit
            return
        assert obr_value_size(n, leading=leading) <= limit
        assert obr_value_size(n + 1, leading=leading) > limit


class TestCorpusGenerator:
    def test_generation_is_deterministic(self):
        one = RangeCorpusGenerator(file_size=4096, seed=1).full_corpus()
        two = RangeCorpusGenerator(file_size=4096, seed=1).full_corpus()
        assert [c.header_value for c in one] == [c.header_value for c in two]

    def test_different_seeds_differ(self):
        one = RangeCorpusGenerator(file_size=4096, seed=1).full_corpus()
        two = RangeCorpusGenerator(file_size=4096, seed=2).full_corpus()
        assert [c.header_value for c in one] != [c.header_value for c in two]

    def test_every_case_is_grammatically_valid(self):
        corpus = RangeCorpusGenerator(file_size=4096).full_corpus()
        assert len(corpus) > 50
        for case in corpus:
            spec = parse_range_header(case.header_value)
            assert len(spec) >= 1

    def test_all_formats_covered(self):
        corpus = RangeCorpusGenerator(file_size=4096).full_corpus()
        formats = {case.format for case in corpus}
        assert formats == set(RangeFormat)

    def test_attack_shapes_present(self):
        corpus = RangeCorpusGenerator(file_size=4096).full_corpus()
        values = [c.header_value for c in corpus]
        assert "bytes=0-0" in values  # the SBR shape
        assert any(v.startswith("bytes=0-,0-") for v in values)  # the OBR shape

    def test_multi_open_cases_overlap(self):
        generator = RangeCorpusGenerator(file_size=4096)
        for case in generator.multi_open_cases():
            spec = parse_range_header(case.header_value)
            assert spec.has_overlaps(4096)

    def test_multi_closed_cases_do_not_overlap(self):
        generator = RangeCorpusGenerator(file_size=4096)
        for case in generator.multi_closed_cases():
            spec = parse_range_header(case.header_value)
            assert not spec.has_overlaps(4096)

    def test_tiny_file_size_rejected(self):
        with pytest.raises(ValueError):
            RangeCorpusGenerator(file_size=2)
