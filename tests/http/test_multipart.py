"""Unit and property tests for the multipart/byteranges codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MultipartError
from repro.http.body import BytesBody, SyntheticBody
from repro.http.multipart import (
    DEFAULT_BOUNDARY,
    MultipartByteranges,
    MultipartPart,
    multipart_response_size,
)
from repro.http.ranges import ResolvedRange


def _build(resource: bytes, ranges, boundary=DEFAULT_BOUNDARY):
    return MultipartByteranges.build(
        resource_body=BytesBody(resource),
        ranges=ranges,
        content_type="application/octet-stream",
        boundary=boundary,
    )


class TestConstruction:
    def test_build_slices_payloads(self):
        multipart = _build(b"0123456789", [ResolvedRange(1, 3), ResolvedRange(8, 9)])
        assert multipart.parts[0].payload.materialize() == b"123"
        assert multipart.parts[1].payload.materialize() == b"89"

    def test_build_keeps_overlapping_duplicates(self):
        # The OBR back-end case: no overlap checking at this layer.
        multipart = _build(b"abcd", [ResolvedRange(0, 3)] * 5)
        assert len(multipart) == 5
        assert all(p.payload.materialize() == b"abcd" for p in multipart.parts)

    def test_part_payload_length_mismatch_rejected(self):
        with pytest.raises(MultipartError):
            MultipartPart(
                content_type="text/plain",
                content_range=ResolvedRange(0, 5),
                complete_length=10,
                payload=BytesBody(b"ab"),
            )

    def test_bad_boundary_rejected(self):
        with pytest.raises(MultipartError):
            MultipartByteranges([], boundary="")
        with pytest.raises(MultipartError):
            MultipartByteranges([], boundary="x" * 71)

    def test_content_type_header(self):
        multipart = _build(b"ab", [ResolvedRange(0, 1)], boundary="XYZ")
        assert multipart.content_type_header == "multipart/byteranges; boundary=XYZ"


class TestEncoding:
    def test_wire_size_matches_body_length(self):
        multipart = _build(b"0123456789", [ResolvedRange(0, 0), ResolvedRange(5, 9)])
        body = multipart.to_body()
        assert multipart.wire_size() == len(body)
        assert multipart.wire_size() == len(body.materialize())

    def test_encoding_structure(self):
        multipart = _build(b"abcdef", [ResolvedRange(1, 2)], boundary="BND")
        blob = multipart.to_body().materialize()
        assert blob.startswith(b"--BND\r\n")
        assert b"Content-Range: bytes 1-2/6\r\n" in blob
        assert blob.endswith(b"--BND--\r\n")

    def test_synthetic_resource_never_materialized(self):
        resource = SyntheticBody(1024)
        multipart = MultipartByteranges.build(
            resource_body=resource,
            ranges=[ResolvedRange(0, 1023)] * 100,
            content_type="application/octet-stream",
        )
        # Sizing a 100-part payload must not materialize the parts.
        assert multipart.wire_size() > 100 * 1024

    def test_analytic_size_agrees_with_obr_shape(self):
        # The OBR planner's formula must agree exactly with the encoder
        # for uniform full-resource parts.
        n, size = 64, 1024
        multipart = MultipartByteranges.build(
            resource_body=SyntheticBody(size),
            ranges=[ResolvedRange(0, size - 1)] * n,
            content_type="application/octet-stream",
        )
        assert multipart.wire_size() == multipart_response_size(n, size, size)


class TestDecoding:
    def test_round_trip(self):
        original = _build(b"0123456789", [ResolvedRange(0, 0), ResolvedRange(3, 7)])
        parsed = MultipartByteranges.parse(
            original.to_body().materialize(), DEFAULT_BOUNDARY
        )
        assert len(parsed) == 2
        assert parsed.parts[0].content_range == ResolvedRange(0, 0)
        assert parsed.parts[0].payload.materialize() == b"0"
        assert parsed.parts[1].payload.materialize() == b"34567"
        assert parsed.parts[1].complete_length == 10

    def test_parse_missing_closer(self):
        with pytest.raises(MultipartError):
            MultipartByteranges.parse(b"--B\r\nstuff", "B")

    def test_parse_wrong_boundary(self):
        blob = _build(b"ab", [ResolvedRange(0, 1)]).to_body().materialize()
        with pytest.raises(MultipartError):
            MultipartByteranges.parse(blob, "not-the-boundary")

    def test_parse_part_without_content_range(self):
        blob = b"--B\r\nContent-Type: text/plain\r\n\r\nxx\r\n--B--\r\n"
        with pytest.raises(MultipartError):
            MultipartByteranges.parse(blob, "B")

    def test_parse_empty_payload_rejected(self):
        with pytest.raises(MultipartError):
            MultipartByteranges.parse(b"--B--\r\n", "B")

    @given(
        ranges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=63),
            ).map(lambda t: ResolvedRange(min(t), max(t))),
            min_size=1,
            max_size=6,
        ),
        boundary=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=40
        ),
    )
    @settings(max_examples=100)
    def test_round_trip_property(self, ranges, boundary):
        resource = bytes(range(64))
        original = MultipartByteranges.build(
            resource_body=BytesBody(resource),
            ranges=ranges,
            content_type="application/octet-stream",
            boundary=boundary,
        )
        parsed = MultipartByteranges.parse(original.to_body().materialize(), boundary)
        assert len(parsed) == len(original)
        for mine, theirs in zip(original.parts, parsed.parts):
            assert mine.content_range == theirs.content_range
            assert mine.payload.materialize() == theirs.payload.materialize()
            assert theirs.complete_length == 64


class TestAmplificationArithmetic:
    def test_n_part_response_grows_linearly(self):
        """The OBR premise: n parts cost ~n times the resource."""
        resource = SyntheticBody(1024)
        sizes = []
        for n in (1, 10, 100):
            multipart = MultipartByteranges.build(
                resource_body=resource,
                ranges=[ResolvedRange(0, 1023)] * n,
                content_type="application/octet-stream",
            )
            sizes.append(multipart.wire_size())
        per_part = (sizes[2] - sizes[1]) / 90
        assert per_part > 1024  # payload plus per-part overhead
        # Linearity: going 10 -> 100 parts adds ten times what 1 -> 10 did.
        assert sizes[2] - sizes[1] == 10 * (sizes[1] - sizes[0])
