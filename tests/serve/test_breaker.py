"""The circuit breaker's three-state machine under an injected clock."""

from __future__ import annotations

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make(threshold=3, reset=5.0, probes=1):
    return CircuitBreaker(
        failure_threshold=threshold,
        reset_timeout_s=reset,
        half_open_probes=probes,
    )


class TestClosed:
    def test_allows_and_stays_closed_on_success(self):
        breaker = make()
        for t in range(10):
            assert breaker.allow(float(t))
            breaker.record_success(float(t))
        assert breaker.state == CLOSED

    def test_success_resets_the_failure_streak(self):
        breaker = make(threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state == CLOSED  # never three *consecutive*

    def test_consecutive_failures_trip_it(self):
        breaker = make(threshold=3)
        for t in range(3):
            breaker.record_failure(float(t))
        assert breaker.state == OPEN


class TestOpen:
    def test_refuses_until_the_reset_timeout(self):
        breaker = make(threshold=1, reset=5.0)
        breaker.record_failure(100.0)
        assert breaker.state == OPEN
        assert not breaker.allow(100.0)
        assert not breaker.allow(104.9)

    def test_timeout_expiry_flips_to_half_open_and_admits_a_probe(self):
        breaker = make(threshold=1, reset=5.0)
        breaker.record_failure(100.0)
        assert breaker.allow(105.0)
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def test_probe_success_closes(self):
        breaker = make(threshold=1, reset=5.0)
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        breaker.record_success(5.1)
        assert breaker.state == CLOSED
        assert breaker.allow(5.2)

    def test_probe_failure_reopens_and_restarts_the_timeout(self):
        breaker = make(threshold=1, reset=5.0)
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        breaker.record_failure(5.1)
        assert breaker.state == OPEN
        assert not breaker.allow(9.0)  # timeout restarted at 5.1
        assert breaker.allow(10.2)

    def test_only_the_configured_probes_are_admitted(self):
        breaker = make(threshold=1, reset=5.0, probes=2)
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        assert breaker.allow(5.0)
        assert not breaker.allow(5.0)  # both probe slots taken
        breaker.record_success(5.1)
        assert breaker.state == HALF_OPEN  # one success is not enough
        breaker.record_success(5.2)
        assert breaker.state == CLOSED


class TestValidationAndGauge:
    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)

    def test_gauge_encoding_is_stable(self):
        breaker = make(threshold=1)
        assert breaker.gauge_value() == 0.0
        breaker.record_failure(0.0)
        assert breaker.gauge_value() == 2.0
        breaker.allow(99.0)
        assert breaker.gauge_value() == 1.0
