"""Cancellation safety: killing an in-flight batch leaves no debris.

The async driver yields to the event loop between items, so a
cancellation lands on an item boundary.  These tests cancel a batch
mid-flight and assert the invariants ISSUE.md names: no memo-cache
corruption, no leaked tasks, and the service still returns well-formed
responses afterwards.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.app import AnalysisService, ServeConfig
from tests.serve.conftest import batch_request, body_json

KB = 1024


def counting_service(processed):
    """A service whose exact runner records each item it computes."""

    def runner(vendor, size):
        processed.append((vendor, size))
        return 9.0

    return AnalysisService(
        ServeConfig(default_deadline_ms=20000), exact_runner=runner
    )


def exact_items(n):
    return [
        {"vendor": "fastly", "size": KB * (i + 1), "exact": True}
        for i in range(n)
    ]


class TestCancelMidBatch:
    def test_cancelled_batch_leaves_service_consistent(self):
        asyncio.run(self._cancel_mid_batch())

    async def _cancel_mid_batch(self):
        processed = []
        service = counting_service(processed)
        request = batch_request("/v1/analyze", exact_items(8))

        tasks_before = asyncio.all_tasks()
        batch = asyncio.create_task(service.handle_async(request))
        while len(processed) < 3:
            await asyncio.sleep(0)
        batch.cancel()
        with pytest.raises(asyncio.CancelledError):
            await batch

        # Cancellation landed on an item boundary: some items ran fully,
        # the rest never started.
        completed = len(processed)
        assert 3 <= completed < 8

        # The cancelled outcome is recorded, and no orphan task remains.
        counter = service.metrics.counter("repro_serve_requests_total")
        assert counter.value(endpoint="analyze", outcome="cancelled") == 1
        await asyncio.sleep(0)
        assert asyncio.all_tasks() == tasks_before

        # The memo holds exactly the completed items — no half-written
        # entries for the items the cancellation cut off.
        findings = service.memo.table("findings")
        assert len(findings) == completed
        assert findings.stats.misses == completed

        # A follow-up request is well-formed and reuses the cached work.
        response = await service.handle_async(request)
        assert response.status == 200
        payload = body_json(response)
        assert len(payload["results"]) == 8
        assert payload["partial"] is False
        assert all("finding" in item for item in payload["results"])
        assert findings.stats.hits == completed
        assert findings.stats.misses == 8  # only the cut-off items recompute

    def test_cancel_before_first_item_is_clean(self):
        asyncio.run(self._cancel_immediately())

    async def _cancel_immediately(self):
        processed = []
        service = counting_service(processed)
        batch = asyncio.create_task(
            service.handle_async(batch_request("/v1/analyze", exact_items(4)))
        )
        batch.cancel()
        with pytest.raises(asyncio.CancelledError):
            await batch
        assert processed == []
        assert len(service.memo.table("findings")) == 0
        # The service still answers.
        response = await service.handle_async(
            batch_request("/v1/analyze", [{"vendor": "azure", "size": KB}])
        )
        assert response.status == 200
        assert body_json(response)["partial"] is False
