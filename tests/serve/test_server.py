"""The asyncio edge: admission under real concurrency, wire guards.

These tests run a real ``ServeServer`` on an ephemeral port inside the
test's own event loop.  Saturation is made deterministic by an exact
runner that blocks worker threads on a gate the test controls, so
"in-flight" is a fact, not a race.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.serve.admission import ADMIT, ENQUEUE
from repro.serve.app import AnalysisService, ServeConfig
from repro.serve.server import ServeServer

KB = 1024


def analyze_payload(items, deadline_ms=None):
    body = json.dumps({"items": items}).encode()
    head = (
        f"POST /v1/analyze HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if deadline_ms is not None:
        head += f"X-Deadline-Ms: {deadline_ms}\r\n"
    return head.encode() + b"\r\n" + body


async def raw_roundtrip(port, payload):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw


def parse_head(raw):
    head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1")
    lines = head.split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def wait_until(predicate, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.005)


class TestSaturationShedding:
    def test_overload_sheds_429_with_retry_after_and_recovers(self):
        asyncio.run(self._scenario())

    async def _scenario(self):
        gate = threading.Event()

        def blocking_runner(vendor, size):
            assert gate.wait(timeout=30.0)
            return 42.0

        service = AnalysisService(
            ServeConfig(max_inflight=2, queue_depth=1, max_queue_wait_s=30.0),
            exact_runner=blocking_runner,
        )
        server = ServeServer(service, port=0, workers=4)
        await server.start()
        payload = analyze_payload(
            [{"vendor": "cloudflare", "size": 64 * KB, "exact": True}],
            deadline_ms=20000,
        )
        try:
            # Two requests occupy both in-flight slots (blocked on the
            # gate), one waits in the queue...
            tasks = [asyncio.create_task(raw_roundtrip(server.port, payload))]
            await wait_until(lambda: service.admission.inflight == 1)
            tasks.append(asyncio.create_task(raw_roundtrip(server.port, payload)))
            await wait_until(lambda: service.admission.inflight == 2)
            tasks.append(asyncio.create_task(raw_roundtrip(server.port, payload)))
            await wait_until(lambda: service.admission.queued == 1)

            # ...so the next two are shed immediately with Retry-After.
            for _ in range(2):
                status, headers = parse_head(
                    await raw_roundtrip(server.port, payload)
                )
                assert status == 429
                assert int(headers["retry-after"]) >= 1

            gate.set()  # storm over: everything admitted completes
            responses = await asyncio.gather(*tasks)
            statuses = sorted(parse_head(raw)[0] for raw in responses)
            assert statuses == [200, 200, 200]
            assert service.admission.inflight == 0
            assert service.admission.queued == 0

            # The shed outcome reached the metrics too.
            counter = service.metrics.counter("repro_serve_requests_total")
            assert counter.value(endpoint="analyze", outcome="shed") == 2
        finally:
            gate.set()
            server.initiate_drain()


class TestQueueTimeoutReconciliation:
    """The ``wait_for`` cancel-then-raise window (3.10/3.11) must not
    leak queue slots or fake a promotion.

    Each test stages the exact post-timeout state ``_wait_in_queue``
    can observe and checks :meth:`ServeServer._resolve_queue_timeout`
    keeps the admission counters truthful.
    """

    def make_server(self):
        service = AnalysisService(
            ServeConfig(max_inflight=1, queue_depth=4, max_queue_wait_s=30.0)
        )
        return service, ServeServer(service, port=0)

    def test_timeout_with_future_still_queued_leaves_cleanly(self):
        asyncio.run(self._still_queued())

    async def _still_queued(self):
        service, server = self.make_server()
        assert service.admission.decide(0.0).outcome == ADMIT
        assert service.admission.decide(0.0).outcome == ENQUEUE
        future = asyncio.get_running_loop().create_future()
        server._waiters.append(future)
        future.cancel()  # what wait_for does on timeout
        assert server._resolve_queue_timeout(future) is False
        assert not server._waiters
        assert service.admission.queued == 0
        assert service.admission.inflight == 1

    def test_timeout_racing_a_real_promotion_takes_the_slot(self):
        asyncio.run(self._real_promotion())

    async def _real_promotion(self):
        service, server = self.make_server()
        assert service.admission.decide(0.0).outcome == ADMIT
        assert service.admission.decide(0.0).outcome == ENQUEUE
        future = asyncio.get_running_loop().create_future()
        server._waiters.append(future)
        # The running request finishes and promotes us just as the
        # timeout lands: the future holds a result, so we keep the slot.
        service.admission.release(0.0)
        server._promote_next()
        assert future.done() and not future.cancelled()
        assert server._resolve_queue_timeout(future) is True
        assert service.admission.queued == 0
        assert service.admission.inflight == 1

    def test_timeout_racing_a_cancelled_pop_releases_the_queue_slot(self):
        asyncio.run(self._cancelled_pop())

    async def _cancelled_pop(self):
        service, server = self.make_server()
        assert service.admission.decide(0.0).outcome == ADMIT
        assert service.admission.decide(0.0).outcome == ENQUEUE
        future = asyncio.get_running_loop().create_future()
        server._waiters.append(future)
        # The regression: wait_for cancels the future, then a release
        # pops-and-skips it before TimeoutError propagates.  No
        # promotion happened, so we must leave the queue — the old code
        # claimed the slot and leaked the queued count.
        future.cancel()
        service.admission.release(0.0)
        server._promote_next()
        assert not server._waiters
        assert server._resolve_queue_timeout(future) is False
        assert service.admission.queued == 0
        assert service.admission.inflight == 0


class TestLoopResponsiveness:
    def test_healthz_answers_while_the_single_worker_is_blocked(self):
        asyncio.run(self._scenario())

    async def _scenario(self):
        gate = threading.Event()

        def blocking_runner(vendor, size):
            assert gate.wait(timeout=30.0)
            return 3.0

        service = AnalysisService(
            ServeConfig(max_inflight=2), exact_runner=blocking_runner
        )
        server = ServeServer(service, port=0, workers=1)
        await server.start()
        payload = analyze_payload(
            [{"vendor": "cloudflare", "size": 64 * KB, "exact": True}],
            deadline_ms=20000,
        )
        try:
            batch = asyncio.create_task(raw_roundtrip(server.port, payload))
            await wait_until(lambda: service.admission.inflight == 1)
            # The only worker thread is parked mid-simulation; the
            # event loop must still serve liveness probes promptly.
            raw = await asyncio.wait_for(
                raw_roundtrip(
                    server.port, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                ),
                timeout=5.0,
            )
            assert parse_head(raw)[0] == 200
            gate.set()
            assert parse_head(await batch)[0] == 200
        finally:
            gate.set()
            server.initiate_drain()


class TestWireGuards:
    def test_bad_and_hostile_inputs(self):
        asyncio.run(self._scenario())

    async def _scenario(self):
        service = AnalysisService(ServeConfig(max_body_bytes=1024))
        server = ServeServer(service, port=0)
        await server.start()
        try:
            # Declared body larger than the cap: refused before reading.
            raw = await raw_roundtrip(
                server.port,
                b"POST /v1/analyze HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 1048576\r\n\r\n",
            )
            assert parse_head(raw)[0] == 413

            # Garbage request line.
            raw = await raw_roundtrip(server.port, b"NONSENSE\r\n\r\n\r\n")
            assert parse_head(raw)[0] == 400

            # Non-batch endpoints bypass admission entirely.
            raw = await raw_roundtrip(
                server.port, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            assert parse_head(raw)[0] == 200
        finally:
            server.initiate_drain()


class TestDrain:
    def test_drain_finishes_inflight_work_and_flushes_the_ledger(self, tmp_path):
        asyncio.run(self._scenario(tmp_path))

    async def _scenario(self, tmp_path):
        from repro.obs.runlog import RunLedger

        gate = threading.Event()

        def blocking_runner(vendor, size):
            assert gate.wait(timeout=30.0)
            return 7.0

        runlog = tmp_path / "serve-runlog.jsonl"
        service = AnalysisService(
            ServeConfig(max_inflight=2, queue_depth=2),
            exact_runner=blocking_runner,
        )
        server = ServeServer(
            service, port=0, workers=2, runlog=str(runlog), drain_grace_s=30.0
        )
        runner = asyncio.create_task(server.run_until_drained(announce=False))
        await wait_until(lambda: server.port != 0)
        payload = analyze_payload(
            [{"vendor": "fastly", "size": 64 * KB, "exact": True}],
            deadline_ms=20000,
        )
        inflight = asyncio.create_task(raw_roundtrip(server.port, payload))
        await wait_until(lambda: service.admission.inflight == 1)

        server.initiate_drain()
        # New connections are refused once draining.
        with pytest.raises(OSError):
            await raw_roundtrip(server.port, payload)
        # The in-flight request still completes.
        gate.set()
        raw = await inflight
        assert parse_head(raw)[0] == 200

        assert await runner == 0
        records = RunLedger(runlog).load()
        assert len(records) == 1
        assert records[0].command == "serve"
        assert records[0].cell_count >= 1
        assert "repro_serve_requests_total" in records[0].metrics
