"""Admission control: admit / enqueue / shed accounting and policy."""

from __future__ import annotations

import pytest

from repro.defense.ratelimit import TokenBucket
from repro.serve.admission import ADMIT, ENQUEUE, SHED, AdmissionController


def make(max_inflight=2, queue_depth=2, **kwargs):
    return AdmissionController(max_inflight, queue_depth, **kwargs)


class TestCapacity:
    def test_admits_until_max_inflight(self):
        controller = make(max_inflight=2)
        assert controller.decide(0.0).outcome == ADMIT
        assert controller.decide(0.0).outcome == ADMIT
        assert controller.inflight == 2

    def test_then_enqueues_until_queue_depth(self):
        controller = make(max_inflight=1, queue_depth=2)
        assert controller.decide(0.0).outcome == ADMIT
        assert controller.decide(0.0).outcome == ENQUEUE
        assert controller.decide(0.0).outcome == ENQUEUE
        assert controller.queued == 2

    def test_then_sheds_queue_full_with_a_retry_hint(self):
        controller = make(max_inflight=1, queue_depth=1)
        controller.decide(0.0)
        controller.decide(0.0)
        decision = controller.decide(0.0)
        assert decision.outcome == SHED
        assert decision.reason == "queue-full"
        assert decision.retry_after_s > 0

    def test_zero_queue_depth_sheds_immediately_at_saturation(self):
        controller = make(max_inflight=1, queue_depth=0)
        controller.decide(0.0)
        assert controller.decide(0.0).outcome == SHED


class TestLifecycle:
    def test_release_frees_a_slot_for_the_next_admit(self):
        controller = make(max_inflight=1, queue_depth=0)
        controller.decide(0.0)
        controller.release(0.1)
        assert controller.inflight == 0
        assert controller.decide(1.0).outcome == ADMIT

    def test_promote_moves_queued_to_inflight(self):
        controller = make(max_inflight=1, queue_depth=1)
        controller.decide(0.0)
        controller.decide(0.0)
        controller.release(0.1)
        controller.promote()
        assert controller.inflight == 1
        assert controller.queued == 0

    def test_leave_queue_counts_as_shed(self):
        controller = make(max_inflight=1, queue_depth=1)
        controller.decide(0.0)
        controller.decide(0.0)
        before = controller.shed_total
        controller.leave_queue()
        assert controller.queued == 0
        assert controller.shed_total == before + 1

    def test_misuse_raises_instead_of_corrupting_counters(self):
        controller = make()
        with pytest.raises(RuntimeError):
            controller.release(0.0)
        with pytest.raises(RuntimeError):
            controller.promote()
        with pytest.raises(RuntimeError):
            controller.leave_queue()

    def test_release_feeds_the_ewma_estimate(self):
        controller = make(initial_service_estimate_s=0.1, ewma_alpha=0.5)
        controller.decide(0.0)
        controller.release(0.3)
        assert controller.service_estimate_s == pytest.approx(0.2)


class TestRateLimiting:
    def test_bucket_exhaustion_sheds_with_the_bucket_retry_after(self):
        bucket = TokenBucket(capacity=2, refill_rate=1.0)
        controller = make(max_inflight=10, bucket=bucket)
        assert controller.decide(0.0).outcome == ADMIT
        assert controller.decide(0.0).outcome == ADMIT
        decision = controller.decide(0.0)
        assert decision.outcome == SHED
        assert decision.reason == "rate"
        assert decision.retry_after_s == pytest.approx(1.0)

    def test_bucket_refills_with_time(self):
        bucket = TokenBucket(capacity=1, refill_rate=1.0)
        controller = make(max_inflight=10, bucket=bucket)
        controller.decide(0.0)
        assert controller.decide(0.0).outcome == SHED
        controller.release(0.01)
        assert controller.decide(1.5).outcome == ADMIT


class TestWaitBudget:
    def test_predicted_wait_beyond_budget_sheds_before_queueing(self):
        controller = make(
            max_inflight=1,
            queue_depth=100,
            max_queue_wait_s=1.0,
            initial_service_estimate_s=0.6,
        )
        controller.decide(0.0)  # admit
        assert controller.decide(0.0).outcome == ENQUEUE  # predicted 0.6s
        decision = controller.decide(0.0)  # predicted 1.2s > 1.0s budget
        assert decision.outcome == SHED
        assert decision.reason == "wait-budget"
        assert decision.retry_after_s == pytest.approx(1.2)

    def test_estimated_wait_scales_with_position_and_parallelism(self):
        controller = make(
            max_inflight=2, queue_depth=10, initial_service_estimate_s=0.5
        )
        assert controller.estimated_wait_s(0) == 0.0
        assert controller.estimated_wait_s(1) == pytest.approx(0.5)
        assert controller.estimated_wait_s(2) == pytest.approx(0.5)
        assert controller.estimated_wait_s(3) == pytest.approx(1.0)
