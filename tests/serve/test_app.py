"""The analysis service's routing, batch semantics, and degradation."""

from __future__ import annotations

import json

from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.http.message import HttpRequest
from repro.serve.app import AnalysisService, ServeConfig
from repro.serve.breaker import CLOSED, OPEN
from repro.serve.deadline import DEADLINE_EXCEEDED

from tests.serve.conftest import FakeClock, batch_request, body_json

KB = 1024
MB = 1 << 20


def get(service, path):
    return service.handle(HttpRequest(method="GET", target=path))


class TestRouting:
    def test_healthz(self):
        service = AnalysisService()
        response = get(service, "/healthz")
        assert response.status == 200
        assert body_json(response) == {"status": "ok"}

    def test_readyz_flips_to_503_while_draining(self):
        service = AnalysisService()
        assert get(service, "/readyz").status == 200
        service.draining = True
        response = get(service, "/readyz")
        assert response.status == 503
        assert body_json(response) == {"status": "draining"}

    def test_unknown_path_is_404(self):
        assert get(AnalysisService(), "/nope").status == 404

    def test_wrong_methods_are_405(self):
        service = AnalysisService()
        assert service.handle(
            HttpRequest(method="GET", target="/v1/analyze")
        ).status == 405
        assert service.handle(
            HttpRequest(method="POST", target="/healthz")
        ).status == 405

    def test_malformed_json_is_400(self):
        service = AnalysisService()
        response = service.handle(
            HttpRequest(
                method="POST",
                target="/v1/analyze",
                headers=[("Content-Length", "5")],
                body=b"{oops",
            )
        )
        assert response.status == 400

    def test_missing_or_empty_items_are_400(self):
        service = AnalysisService()
        for payload in ({}, {"items": []}, {"items": "x"}, []):
            body = json.dumps(payload).encode()
            response = service.handle(
                HttpRequest(
                    method="POST",
                    target="/v1/analyze",
                    headers=[("Content-Length", str(len(body)))],
                    body=body,
                )
            )
            assert response.status == 400

    def test_oversized_batches_are_rejected(self):
        service = AnalysisService(ServeConfig(max_batch_items=2))
        response = service.handle(
            batch_request("/v1/analyze", [{"vendor": "fastly"}] * 3)
        )
        assert response.status == 400

    def test_oversized_body_is_413(self):
        service = AnalysisService(ServeConfig(max_body_bytes=64))
        response = service.handle(
            batch_request("/v1/analyze", [{"vendor": "fastly"}] * 8)
        )
        assert response.status == 413


class TestAnalyzeBatch:
    def test_sbr_obr_and_safe_items(self):
        service = AnalysisService()
        response = service.handle(
            batch_request(
                "/v1/analyze",
                [
                    {"vendor": "cloudflare", "size": MB},
                    {"fcdn": "cdn77", "bcdn": "akamai", "size": KB},
                    {"fcdn": "akamai", "bcdn": "cdn77", "size": KB},
                ],
            )
        )
        assert response.status == 200
        payload = body_json(response)
        kinds = [item["finding"]["kind"] for item in payload["results"]]
        assert kinds == ["sbr", "obr", "safe"]
        assert payload["partial"] is False
        assert payload["degraded"] is False
        assert payload["results"][0]["finding"]["factor_bound"] > 1000

    def test_ccfc_items_classify_and_measure_exactly(self):
        service = AnalysisService()
        response = service.handle(
            batch_request(
                "/v1/analyze",
                [
                    {
                        "vendor": "cloudflare",
                        "attack": "ccfc",
                        "size": MB,
                        "exact": True,
                    },
                    {"vendor": "tencent", "attack": "ccfc", "size": MB},
                    {"vendor": "fastly", "attack": "obr"},
                    {"fcdn": "cdn77", "bcdn": "akamai", "attack": "ccfc"},
                ],
            )
        )
        assert response.status == 200
        results = body_json(response)["results"]
        vulnerable = results[0]
        assert vulnerable["finding"]["kind"] == "ccfc"
        assert vulnerable["finding"]["data"]["encoding"] == "br"
        # The wire-level replay must land inside the (2dp-rounded)
        # closed-form bound it is reported against.
        assert vulnerable["exact_factor"] <= (
            vulnerable["finding"]["factor_bound"] + 0.01
        )
        assert vulnerable["exact_factor"] > 1000
        safe = results[1]
        assert safe["finding"]["kind"] == "safe"
        assert safe["finding"]["data"]["attack"] == "ccfc"
        assert "error" in results[2]  # a vendor item cannot ask for OBR
        assert "error" in results[3]  # a pair item cannot ask for CCFC

    def test_per_item_errors_do_not_fail_the_batch(self):
        service = AnalysisService()
        response = service.handle(
            batch_request(
                "/v1/analyze",
                [
                    {"vendor": "nosuch"},
                    {"vendor": "fastly", "size": "big"},
                    {"fcdn": "cdn77", "bcdn": "cdn77"},
                    {"vendor": "fastly", "fcdn": "cdn77", "bcdn": "akamai"},
                    {"vendor": "azure", "size": 4 * KB},
                ],
            )
        )
        assert response.status == 200
        results = body_json(response)["results"]
        assert all("error" in item for item in results[:4])
        assert results[4]["finding"]["subject"] == "azure"

    def test_exact_on_obr_items_is_skipped_with_an_explanation(self):
        calls = []

        def runner(vendor, size):
            calls.append((vendor, size))
            return 1.0

        service = AnalysisService(exact_runner=runner)
        response = service.handle(
            batch_request(
                "/v1/analyze",
                [{"fcdn": "cdn77", "bcdn": "akamai", "size": KB, "exact": True}],
            )
        )
        assert response.status == 200
        payload = body_json(response)
        assert payload["results"][0]["exact_skipped"] == (
            "exact measurement applies to SBR/CCFC items only"
        )
        assert payload["degraded"] is False
        assert calls == []  # the exact runner never fires for OBR

    def test_answers_match_the_analyze_command(self):
        from repro.analysis.report import analyze_vendor_matrix

        service = AnalysisService()
        response = service.handle(
            batch_request("/v1/analyze", [{"vendor": "huawei", "size": MB}])
        )
        served = body_json(response)["results"][0]["finding"]
        direct = analyze_vendor_matrix(resource_size=MB, vendors=["huawei"])
        assert served == direct.findings[0].to_dict()


class TestRecommendBatch:
    def test_vulnerable_item_gets_a_recommendation(self):
        service = AnalysisService()
        response = service.handle(
            batch_request("/v1/recommend", [{"vendor": "cloudflare", "size": MB}])
        )
        assert response.status == 200
        item = body_json(response)["results"][0]
        assert item["recommendation"]["chosen"] is not None
        assert item["resolved"] is True
        residual = item["recommendation"]["chosen"]["residual_factor"]
        assert residual < item["finding"]["factor_bound"]

    def test_safe_item_needs_no_recommendation(self):
        service = AnalysisService()
        response = service.handle(
            batch_request(
                "/v1/recommend", [{"fcdn": "akamai", "bcdn": "cdn77", "size": KB}]
            )
        )
        item = body_json(response)["results"][0]
        assert item["finding"]["kind"] == "safe"
        assert item["recommendation"] is None
        assert item["resolved"] is True


class TestDeadline:
    def test_expiry_mid_batch_returns_partial_results(self):
        clock = FakeClock(tick=1.0)
        service = AnalysisService(clock=clock)
        response = service.handle(
            batch_request(
                "/v1/analyze",
                [{"vendor": "fastly", "size": KB}] * 4,
                headers=[("X-Deadline-Ms", "2500")],
            )
        )
        assert response.status == 200
        payload = body_json(response)
        assert payload["partial"] is True
        assert payload["deadline_ms"] == 2500
        markers = [item for item in payload["results"] if "error" in item]
        answered = [item for item in payload["results"] if "finding" in item]
        assert len(answered) == 2
        assert len(markers) == 2
        assert all(item["error"] == DEADLINE_EXCEEDED for item in markers)
        # The deadline outcome is what the request counter records.
        counter = service.metrics.counter("repro_serve_requests_total")
        assert counter.value(endpoint="analyze", outcome="deadline") == 1


class TestBreakerDegradation:
    def exact_item(self, size=256 * KB):
        return {"vendor": "cloudflare", "size": size, "exact": True}

    def test_failures_open_the_breaker_and_probes_recover(self):
        clock = FakeClock()
        calls = {"n": 0}
        failing = {"on": True}

        def runner(vendor, size):
            calls["n"] += 1
            if failing["on"]:
                raise RuntimeError("simulated exact-sim outage")
            return 123.0

        service = AnalysisService(
            ServeConfig(
                breaker_failure_threshold=2,
                breaker_reset_timeout_s=5.0,
                breaker_half_open_probes=1,
            ),
            clock=clock,
            exact_runner=runner,
        )

        def run():
            response = service.handle(
                batch_request("/v1/analyze", [self.exact_item()])
            )
            return body_json(response)

        first = run()
        assert first["degraded"] is True
        assert "exact-sim-failed" in first["results"][0]["degraded_reason"]
        assert "finding" in first["results"][0]  # bounds still answered
        second = run()
        assert service.breaker.state == OPEN

        third = run()  # breaker refuses without calling the runner
        assert calls["n"] == 2
        assert third["results"][0]["degraded_reason"] == "breaker-open"

        failing["on"] = False
        clock.advance(5.0)
        fourth = run()  # half-open probe succeeds and closes the breaker
        assert fourth["degraded"] is False
        assert fourth["results"][0]["exact_factor"] == 123.0
        assert service.breaker.state == CLOSED
        counter = service.metrics.counter("repro_serve_requests_total")
        assert counter.value(endpoint="analyze", outcome="degraded") == 3

    def test_slow_exact_sims_count_as_breaker_failures(self):
        clock = FakeClock()

        def slow_runner(vendor, size):
            clock.advance(2.0)  # simulate a 2 s simulation
            return 50.0

        service = AnalysisService(
            ServeConfig(exact_timeout_s=1.0, breaker_failure_threshold=2),
            clock=clock,
            exact_runner=slow_runner,
        )
        for _ in range(2):
            response = service.handle(
                batch_request(
                    "/v1/analyze",
                    [self.exact_item()],
                    headers=[("X-Deadline-Ms", "20000")],
                )
            )
            # The answer itself is still served (it did complete).
            assert "exact_factor" in body_json(response)["results"][0]
        assert service.breaker.state == OPEN

    def test_fault_injected_exact_sims_degrade_and_recover(self):
        """The acceptance scenario: origin faults exhaust the exact
        simulation's retry budget, the breaker opens, answers flip to
        bounds-only ``degraded: true``, and once the faults clear a
        half-open probe restores exact service."""
        clock = FakeClock()
        plan = FaultPlan(
            seed=7, rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=1.0),)
        )
        service = AnalysisService(
            ServeConfig(
                breaker_failure_threshold=1,
                breaker_reset_timeout_s=5.0,
                breaker_half_open_probes=1,
            ),
            clock=clock,
            fault_plan=plan,
        )
        item = {"vendor": "cloudflare", "size": 64 * KB, "exact": True}

        faulted = body_json(
            service.handle(batch_request("/v1/analyze", [item]))
        )
        assert faulted["degraded"] is True
        assert "exact-sim-failed" in faulted["results"][0]["degraded_reason"]
        assert service.breaker.state == OPEN

        refused = body_json(
            service.handle(batch_request("/v1/analyze", [item]))
        )
        assert refused["results"][0]["degraded_reason"] == "breaker-open"

        service.fault_plan = None  # the origin outage ends
        clock.advance(5.0)
        recovered = body_json(
            service.handle(batch_request("/v1/analyze", [item]))
        )
        assert recovered["degraded"] is False
        assert recovered["results"][0]["exact_factor"] > 1
        assert service.breaker.state == CLOSED


class TestSharedMemo:
    def test_findings_are_cached_across_requests(self):
        service = AnalysisService()
        request = batch_request("/v1/analyze", [{"vendor": "fastly", "size": MB}])
        service.handle(request)
        table = service.memo.table("findings")
        assert table.stats.misses == 1
        service.handle(batch_request("/v1/analyze", [{"vendor": "fastly", "size": MB}]))
        assert table.stats.hits == 1

    def test_memo_stays_bounded_under_size_churn(self):
        service = AnalysisService(ServeConfig(memo_entries=6))  # 2 per table
        items = [{"vendor": "fastly", "size": KB * (i + 1)} for i in range(5)]
        service.handle(batch_request("/v1/analyze", items))
        table = service.memo.table("findings")
        assert len(table) == 2
        assert table.stats.evictions == 3
        assert service.memo.entries() <= 6


class TestMetricsEndpoint:
    def test_exposition_carries_the_serve_families(self):
        service = AnalysisService()
        service.handle(batch_request("/v1/analyze", [{"vendor": "fastly"}]))
        response = get(service, "/metrics")
        assert response.status == 200
        text = response.body.materialize().decode()
        for family in (
            "repro_serve_requests_total",
            "repro_serve_request_seconds",
            "repro_serve_queue_depth",
            "repro_serve_inflight",
            "repro_serve_breaker_state",
            "repro_serve_memo_entries",
            "repro_memo_lookups_total",
        ):
            assert family in text
        assert 'endpoint="analyze",outcome="ok"} 1' in text
