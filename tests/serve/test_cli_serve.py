"""End-to-end: the ``repro serve`` subprocess and the stampede client.

This is the acceptance scenario run for real: boot the CLI server in a
child process, talk to it over TCP, stampede it past its admission
limits, SIGTERM it, and check the exit code and the run ledger.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.request

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
STAMPEDE = os.path.join(REPO, "scripts", "stampede.py")


def spawn_server(runlog, *extra):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--max-inflight", "2",
            "--queue-depth", "2",
            "--runlog", str(runlog),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline().strip()
    # "repro serve: listening on 127.0.0.1:PORT"
    assert line.startswith("repro serve: listening on "), line
    port = int(line.rsplit(":", 1)[1])
    return proc, port


def finish(proc):
    try:
        out, err = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, err = proc.communicate()
        raise AssertionError(f"server did not drain\nstdout={out}\nstderr={err}")
    return out, err


@pytest.fixture
def server(tmp_path):
    runlog = tmp_path / "runlog.jsonl"
    proc, port = spawn_server(runlog)
    try:
        yield proc, port, runlog
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


class TestServeSubprocess:
    def test_sigterm_drains_to_exit_zero_and_writes_the_ledger(self, server):
        from repro.obs.runlog import RunLedger

        proc, port, runlog = server
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=10
        ) as resp:
            assert resp.status == 200
            assert json.load(resp) == {"status": "ok"}

        body = json.dumps(
            {"items": [{"vendor": "cloudflare", "size": 1 << 20}]}
        ).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/analyze",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            payload = json.load(resp)
        assert payload["results"][0]["finding"]["kind"] == "sbr"

        proc.send_signal(signal.SIGTERM)
        out, _ = finish(proc)
        assert proc.returncode == 0
        assert "repro serve: drained" in out

        records = RunLedger(runlog).load()
        assert len(records) == 1
        assert records[0].command == "serve"
        assert records[0].cell_count == 1  # healthz bypasses admission
        assert "repro_serve_requests_total" in records[0].metrics

    def test_stampede_at_ten_times_max_inflight_sees_only_200_and_429(
        self, server
    ):
        proc, port, runlog = server
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        result = subprocess.run(
            [
                sys.executable, STAMPEDE,
                "--port", str(port),
                "--concurrency", "20",  # 10x --max-inflight 2
                "--requests", "60",
                "--items", "8",
                "--expect-shed",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        summary = json.loads(result.stdout)
        statuses = {int(code) for code in summary["by_status"]}
        assert statuses <= {200, 429}
        assert summary["missing_retry_after"] == 0
        assert summary["errors"] == []
        assert summary["by_status"].get("429", 0) > 0

        proc.send_signal(signal.SIGTERM)
        finish(proc)
        assert proc.returncode == 0
