"""Deadline resolution and expiry arithmetic."""

from __future__ import annotations

import pytest

from repro.serve.deadline import Deadline, resolve_deadline_ms


class TestResolveDeadlineMs:
    def test_absent_header_uses_the_default(self):
        assert resolve_deadline_ms(None, 2000, 20000) == 2000

    def test_client_can_tighten(self):
        assert resolve_deadline_ms("250", 2000, 20000) == 250

    def test_client_can_extend_up_to_the_server_max(self):
        assert resolve_deadline_ms("5000", 2000, 20000) == 5000
        assert resolve_deadline_ms("999999", 2000, 20000) == 20000

    def test_garbage_falls_back_to_the_default(self):
        assert resolve_deadline_ms("soon", 2000, 20000) == 2000
        assert resolve_deadline_ms("", 2000, 20000) == 2000
        assert resolve_deadline_ms("-5", 2000, 20000) == 2000
        assert resolve_deadline_ms("0", 2000, 20000) == 2000

    def test_result_is_always_at_least_one_ms(self):
        assert resolve_deadline_ms("1", 2000, 20000) == 1
        assert resolve_deadline_ms(None, 1, 20000) == 1


class TestDeadline:
    def test_remaining_counts_down_and_clamps(self):
        deadline = Deadline(started_at=10.0, budget_s=2.0)
        assert deadline.remaining(10.0) == 2.0
        assert deadline.remaining(11.5) == 0.5
        assert deadline.remaining(13.0) == 0.0
        assert deadline.remaining(99.0) == 0.0

    def test_expired_is_inclusive_at_the_boundary(self):
        deadline = Deadline(started_at=0.0, budget_s=1.0)
        assert not deadline.expired(0.999)
        assert deadline.expired(1.0)
        assert deadline.expired(2.0)

    def test_non_positive_budget_is_rejected(self):
        with pytest.raises(ValueError):
            Deadline(started_at=0.0, budget_s=0.0)
