"""Shared helpers for the serve tests: fake clocks, request builders."""

from __future__ import annotations

import json

import pytest

from repro.http.message import HttpRequest


class FakeClock:
    """A deterministic clock: optionally ticks per call, or advances
    only when told to."""

    def __init__(self, now: float = 0.0, tick: float = 0.0) -> None:
        self.now = now
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        self.now += seconds


def batch_request(path: str, items, headers=()) -> HttpRequest:
    body = json.dumps({"items": items}).encode("utf-8")
    pairs = [("Content-Length", str(len(body))), ("Content-Type", "application/json")]
    pairs.extend(headers)
    return HttpRequest(method="POST", target=path, headers=pairs, body=body)


def body_json(response):
    return json.loads(response.body.materialize().decode("utf-8"))


@pytest.fixture
def fake_clock():
    return FakeClock()
