"""Unit tests for per-connection traffic accounting."""

from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.connection import Connection
from repro.netsim.overhead import TcpOverheadModel


def _request():
    return HttpRequest("GET", "/x", headers=[("Host", "h")])


def _response(body_size=100):
    return HttpResponse(200, headers=[("Content-Length", str(body_size))], body=body_size)


class TestExchange:
    def test_records_exact_wire_sizes(self):
        connection = Connection(segment="client-cdn")
        request, response = _request(), _response(100)
        record = connection.exchange(request, response)
        assert record.request_bytes == request.wire_size()
        assert record.response_bytes_sent == response.wire_size()
        assert record.response_bytes_delivered == response.wire_size()
        assert not record.truncated
        assert record.status == 200

    def test_deliver_cap_truncates(self):
        connection = Connection(segment="cdn-origin")
        response = _response(1000)
        record = connection.exchange(_request(), response, deliver_cap=50)
        assert record.response_bytes_delivered == 50
        assert record.response_bytes_sent == response.wire_size()
        assert record.truncated

    def test_deliver_cap_larger_than_response_is_noop(self):
        connection = Connection(segment="cdn-origin")
        response = _response(10)
        record = connection.exchange(_request(), response, deliver_cap=10_000)
        assert not record.truncated

    def test_negative_cap_clamped_to_zero(self):
        connection = Connection(segment="cdn-origin")
        record = connection.exchange(_request(), _response(10), deliver_cap=-5)
        assert record.response_bytes_delivered == 0

    def test_aggregates_across_exchanges(self):
        connection = Connection(segment="client-cdn")
        for _ in range(3):
            connection.exchange(_request(), _response(10))
        assert connection.exchange_count == 3
        assert connection.request_bytes == 3 * _request().wire_size()
        assert connection.response_bytes_sent == 3 * _response(10).wire_size()


class TestOverheadIntegration:
    def test_tcp_overhead_applied(self):
        model = TcpOverheadModel(mss=1460, header_bytes=40)
        connection = Connection(segment="cdn-origin", overhead=model)
        request, response = _request(), _response(3000)
        record = connection.exchange(request, response)
        assert record.request_bytes == model.framed_size(request.wire_size())
        # First exchange also pays the handshake.
        assert record.response_bytes_sent == (
            model.framed_size(response.wire_size()) + model.connection_setup_bytes()
        )

    def test_handshake_counted_once_per_connection(self):
        model = TcpOverheadModel()
        connection = Connection(segment="cdn-origin", overhead=model)
        first = connection.exchange(_request(), _response(10))
        second = connection.exchange(_request(), _response(10))
        assert first.response_bytes_sent - second.response_bytes_sent == (
            model.connection_setup_bytes()
        )
