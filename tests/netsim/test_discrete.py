"""Tests for the processor-sharing link — including cross-validation
against the fluid simulator (two independent models of Fig 7)."""

import pytest

from repro.errors import SimulationError
from repro.netsim.bandwidth import FluidSimulator, Link
from repro.netsim.discrete import (
    ProcessorSharingLink,
    saturation_rate_bound,
)


def _mbps(value):
    return value * 1e6


class TestSingleJob:
    def test_completion_time_exact(self):
        # 1 Mbit job on a 1 Mbps link: exactly 1 second.
        link = ProcessorSharingLink(_mbps(1))
        job = link.add_job(125_000, arrival_time=0.0)
        link.run()
        assert job.finish_time == pytest.approx(1.0)
        assert job.sojourn_time == pytest.approx(1.0)

    def test_late_arrival(self):
        link = ProcessorSharingLink(_mbps(1))
        job = link.add_job(125_000, arrival_time=5.0)
        link.run()
        assert job.finish_time == pytest.approx(6.0)

    def test_zero_size_job_finishes_instantly(self):
        link = ProcessorSharingLink(_mbps(1))
        job = link.add_job(0, arrival_time=2.0)
        link.run()
        assert job.finish_time == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            ProcessorSharingLink(0)
        link = ProcessorSharingLink(_mbps(1))
        with pytest.raises(SimulationError):
            link.add_job(-1)
        link.run()
        with pytest.raises(SimulationError):
            link.add_job(1)


class TestSharing:
    def test_two_simultaneous_jobs_halve_the_rate(self):
        link = ProcessorSharingLink(_mbps(1))
        a = link.add_job(125_000)
        b = link.add_job(125_000)
        link.run()
        # Each gets 0.5 Mbps: both finish at t=2.
        assert a.finish_time == pytest.approx(2.0)
        assert b.finish_time == pytest.approx(2.0)

    def test_short_job_preempts_share_then_leaves(self):
        link = ProcessorSharingLink(_mbps(1))
        long_job = link.add_job(250_000)          # 2 Mbit
        short_job = link.add_job(62_500)          # 0.5 Mbit
        link.run()
        # Shared until the short job finishes at t=1 (0.5 Mbit at 0.5 Mbps),
        # then the long job runs alone: 2 - 0.5 = 1.5 Mbit left at 1 Mbps.
        assert short_job.finish_time == pytest.approx(1.0)
        assert long_job.finish_time == pytest.approx(2.5)

    def test_staggered_arrival(self):
        link = ProcessorSharingLink(_mbps(1))
        first = link.add_job(125_000, arrival_time=0.0)   # 1 Mbit
        second = link.add_job(125_000, arrival_time=0.5)  # 1 Mbit
        link.run()
        # First runs alone 0.5s (0.5 Mbit done), then shares: 0.5 Mbit
        # at 0.5 Mbps -> finishes at 1.5; second: 0.5 Mbit left then alone.
        assert first.finish_time == pytest.approx(1.5)
        assert second.finish_time == pytest.approx(2.0)

    def test_makespan(self):
        link = ProcessorSharingLink(_mbps(10))
        for second in range(3):
            link.add_job(10 * 125_000, arrival_time=float(second))
        link.run()
        # 30 Mbit total on a 10 Mbps link: work conserving -> 3 seconds.
        assert link.makespan() == pytest.approx(3.0)


class TestSaturationBound:
    def test_bound_formula(self):
        # 10 MB jobs on 1000 Mbps: ~11.9 jobs/s.
        bound = saturation_rate_bound(10 * (1 << 20), 1000e6)
        assert bound == pytest.approx(11.92, rel=0.01)

    def test_invalid(self):
        with pytest.raises(SimulationError):
            saturation_rate_bound(0, 1e6)


class TestCrossValidationAgainstFluidModel:
    """The tick-based fluid simulator and the exact PS model must agree —
    two independent implementations of the same physics."""

    def test_makespan_agreement_under_oversubscription(self):
        # 40 Mbit of demand on a 10 Mbps link, arrivals over 2 seconds.
        sizes_and_arrivals = [(10 * 125_000, float(s)) for s in range(4)]

        ps = ProcessorSharingLink(_mbps(10))
        for size, arrival in sizes_and_arrivals:
            ps.add_job(size, arrival)
        ps.run()

        fluid = FluidSimulator([Link("l", _mbps(10))], dt=0.05)
        transfers = [
            fluid.add_transfer(size, ["l"], start_time=arrival)
            for size, arrival in sizes_and_arrivals
        ]
        fluid.run(10.0)

        assert max(t.finish_time for t in transfers) == pytest.approx(
            ps.makespan(), abs=0.1
        )

    def test_steady_throughput_agreement(self):
        # Sustained oversubscription: both models pin at capacity.
        ps = ProcessorSharingLink(_mbps(10))
        fluid = FluidSimulator([Link("l", _mbps(10))], dt=0.05)
        for second in range(10):
            for _ in range(3):
                ps.add_job(125_000 * 5, float(second))
                fluid.add_transfer(125_000 * 5, ["l"], start_time=float(second))
        ps.run()
        fluid.run(12.0)
        ps_throughput = ps.throughput_between(2.0, 10.0)
        fluid_throughput = fluid.mean_throughput_bps("l", start=2.0, end=10.0)
        assert ps_throughput == pytest.approx(_mbps(10), rel=0.05)
        assert fluid_throughput == pytest.approx(ps_throughput, rel=0.05)

    def test_fig7_crossover_agrees_with_the_analytic_bound(self):
        """The fluid Fig 7 experiment's saturation threshold must match
        the PS model's capacity/job-size bound."""
        from repro.core.practical import BandwidthAttackSimulation

        simulation = BandwidthAttackSimulation(vendor="cloudflare")
        origin_bytes, _ = simulation.per_request_traffic()
        bound = saturation_rate_bound(origin_bytes, 1000e6)
        threshold = simulation.saturation_threshold()
        assert threshold is not None
        # The smallest integer m at/above the bound.
        assert threshold == int(bound) + 1
