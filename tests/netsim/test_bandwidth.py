"""Unit tests for the fluid-flow bandwidth simulator."""

import pytest

from repro.errors import SimulationError
from repro.netsim.bandwidth import FluidSimulator, Link


def _mbps(value):
    return value * 1e6


class TestSetup:
    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Link("l", 0)
        with pytest.raises(SimulationError):
            Link("l", -1)

    def test_duplicate_link_names(self):
        with pytest.raises(SimulationError):
            FluidSimulator([Link("l", 1), Link("l", 2)])

    def test_unknown_link_in_transfer(self):
        simulator = FluidSimulator([Link("a", _mbps(1))])
        with pytest.raises(SimulationError):
            simulator.add_transfer(100, ["nope"])

    def test_invalid_dt(self):
        with pytest.raises(SimulationError):
            FluidSimulator([Link("a", _mbps(1))], dt=0)

    def test_negative_size_rejected(self):
        simulator = FluidSimulator([Link("a", _mbps(1))])
        with pytest.raises(SimulationError):
            simulator.add_transfer(-1, ["a"])

    def test_run_backwards_rejected(self):
        simulator = FluidSimulator([Link("a", _mbps(1))])
        simulator.run(1.0)
        with pytest.raises(SimulationError):
            simulator.run(0.5)


class TestSingleTransfer:
    def test_transfer_completes_at_expected_time(self):
        # 1 Mbps link, 1 Mbit transfer -> ~1 second.
        simulator = FluidSimulator([Link("a", _mbps(1))], dt=0.1)
        transfer = simulator.add_transfer(125_000, ["a"])
        simulator.run(2.0)
        assert transfer.done
        assert transfer.finish_time == pytest.approx(1.0, abs=0.15)

    def test_throughput_bounded_by_capacity(self):
        simulator = FluidSimulator([Link("a", _mbps(10))], dt=0.1)
        simulator.add_transfer(100 * 125_000, ["a"])
        simulator.run(1.0)
        for sample in simulator.samples_for("a"):
            assert sample.throughput_bps <= _mbps(10) * 1.001

    def test_transfer_not_started_does_not_consume(self):
        simulator = FluidSimulator([Link("a", _mbps(1))], dt=0.1)
        simulator.add_transfer(125_000, ["a"], start_time=5.0)
        simulator.run(1.0)
        assert simulator.mean_throughput_bps("a") == 0.0


class TestFairSharing:
    def test_equal_split_between_two_transfers(self):
        simulator = FluidSimulator([Link("a", _mbps(10))], dt=0.1)
        first = simulator.add_transfer(10 * 125_000, ["a"])
        second = simulator.add_transfer(10 * 125_000, ["a"])
        simulator.run(0.5)
        # Both progressed equally while sharing.
        assert first.remaining == pytest.approx(second.remaining)

    def test_max_min_respects_both_bottlenecks(self):
        # Transfer X uses links a+b; transfer Y uses only a.
        # b (1 Mbps) bottlenecks X, so Y should soak up the rest of a.
        simulator = FluidSimulator(
            [Link("a", _mbps(10)), Link("b", _mbps(1))], dt=0.1
        )
        simulator.add_transfer(1e9, ["a", "b"], label="x")
        simulator.add_transfer(1e9, ["a"], label="y")
        simulator.run(1.0)
        a_throughput = simulator.mean_throughput_bps("a")
        b_throughput = simulator.mean_throughput_bps("b")
        assert b_throughput == pytest.approx(_mbps(1), rel=0.05)
        assert a_throughput == pytest.approx(_mbps(10), rel=0.05)


class TestSaturation:
    def test_demand_below_capacity_passes_through(self):
        simulator = FluidSimulator([Link("a", _mbps(100))], dt=0.1)
        # 5 transfers x 1 Mbit starting at t=0: 5 Mbit total, finishes fast.
        for _ in range(5):
            simulator.add_transfer(125_000, ["a"])
        simulator.run(2.0)
        assert all(t.done for t in simulator.transfers)

    def test_oversubscription_pins_link_at_capacity(self):
        simulator = FluidSimulator([Link("a", _mbps(10))], dt=0.1)
        # 100 Mbit of demand in the first second on a 10 Mbps link.
        for second in range(3):
            for _ in range(4):
                simulator.add_transfer(10 * 125_000, ["a"], start_time=float(second))
        simulator.run(3.0)
        mean = simulator.mean_throughput_bps("a", start=0.5, end=3.0)
        assert mean == pytest.approx(_mbps(10), rel=0.02)

    def test_queue_drains_after_arrivals_stop(self):
        simulator = FluidSimulator([Link("a", _mbps(10))], dt=0.1)
        for _ in range(10):
            simulator.add_transfer(10 * 125_000, ["a"], start_time=0.0)
        simulator.run(15.0)
        assert all(t.done for t in simulator.transfers)
        # Link goes quiet once the queue drains (100 Mbit / 10 Mbps = 10 s).
        assert simulator.mean_throughput_bps("a", start=11.0, end=15.0) == 0.0


class TestDeterminism:
    """The allocator must be a pure function of the transfer list.

    Regression tests for the id()-keyed rate map flagged by
    ``repro purity``: rates are now keyed by position in the active
    list, so two identical simulations — different objects, different
    addresses — produce byte-identical sample streams.
    """

    @staticmethod
    def _run_once():
        simulator = FluidSimulator(
            [Link("a", _mbps(10)), Link("b", _mbps(1))], dt=0.1
        )
        simulator.add_transfer(1e7, ["a", "b"], label="x")
        simulator.add_transfer(1e7, ["a"], label="y")
        simulator.add_transfer(5e6, ["b"], label="z", start_time=0.5)
        simulator.run(3.0)
        return simulator

    def test_identical_runs_produce_identical_samples(self):
        first = self._run_once()
        second = self._run_once()
        assert first.transfers != []  # guard against a silent no-op run
        assert [s for s in first.samples_for("a")] == [
            s for s in second.samples_for("a")
        ]
        assert [s for s in first.samples_for("b")] == [
            s for s in second.samples_for("b")
        ]
        assert [t.remaining for t in first.transfers] == [
            t.remaining for t in second.transfers
        ]

    def test_rates_keyed_by_position_not_identity(self):
        simulator = FluidSimulator([Link("a", _mbps(10))], dt=0.1)
        transfers = [simulator.add_transfer(1e7, ["a"]) for _ in range(3)]
        rates = simulator._max_min_rates(transfers)
        assert sorted(rates) == [0, 1, 2]
        assert all(rate > 0 for rate in rates.values())
