"""Unit tests for the simulation clock."""

import pytest

from repro.errors import SimulationError
from repro.netsim.clock import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now == 0.0


def test_custom_start():
    assert SimClock(5.0).now == 5.0


def test_advance():
    clock = SimClock()
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.5) == 2.0
    assert clock.now == 2.0


def test_advance_by_zero_is_allowed():
    clock = SimClock(3.0)
    assert clock.advance(0.0) == 3.0


def test_advance_backwards_rejected():
    with pytest.raises(SimulationError):
        SimClock().advance(-0.1)


def test_advance_to():
    clock = SimClock(1.0)
    assert clock.advance_to(4.0) == 4.0


def test_advance_to_past_rejected():
    clock = SimClock(5.0)
    with pytest.raises(SimulationError):
        clock.advance_to(4.9)
