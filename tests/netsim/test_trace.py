"""Tests for trace export/import."""

import io

from repro.core.sbr import SbrAttack
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN, TrafficLedger
from repro.netsim.trace import dump_jsonl, ledger_events, load_jsonl, summarize

MB = 1 << 20


def _populated_ledger():
    ledger = TrafficLedger()
    for segment, size in ((CLIENT_CDN, 100), (CDN_ORIGIN, 5000), (CDN_ORIGIN, 7000)):
        connection = ledger.open_connection(segment, client_label="a", server_label="b")
        request = HttpRequest("GET", "/x", headers=[("Host", "h")])
        connection.exchange(request, HttpResponse(200, body=size), note=f"{segment}:{size}")
    return ledger


class TestEvents:
    def test_flattening_preserves_order_and_counts(self):
        events = ledger_events(_populated_ledger())
        assert [e.sequence for e in events] == [0, 1, 2]
        assert [e.segment for e in events] == [CLIENT_CDN, CDN_ORIGIN, CDN_ORIGIN]
        assert events[1].note == f"{CDN_ORIGIN}:5000"

    def test_round_trip_through_jsonl(self):
        ledger = _populated_ledger()
        buffer = io.StringIO()
        count = dump_jsonl(ledger, buffer)
        assert count == 3
        buffer.seek(0)
        loaded = load_jsonl(buffer)
        assert loaded == ledger_events(ledger)

    def test_blank_lines_ignored_on_load(self):
        ledger = _populated_ledger()
        buffer = io.StringIO()
        dump_jsonl(ledger, buffer)
        buffer.write("\n\n")
        buffer.seek(0)
        assert len(load_jsonl(buffer)) == 3

    def test_summary_matches_ledger_stats(self):
        ledger = _populated_ledger()
        totals = summarize(ledger_events(ledger))
        for segment in (CLIENT_CDN, CDN_ORIGIN):
            stats = ledger.segment_stats(segment)
            assert totals[segment]["exchanges"] == stats.exchange_count
            assert totals[segment]["response_bytes_sent"] == stats.response_bytes_sent
            assert (
                totals[segment]["response_bytes_delivered"]
                == stats.response_bytes_delivered
            )

    def test_attack_run_exports_cleanly(self):
        """An SBR run's ledger is exportable and its summary reproduces
        the amplification arithmetic."""
        attack = SbrAttack("gcore", resource_size=1 * MB)
        deployment = attack.build_deployment()
        client = deployment.client()
        client.get("/target.bin?cb=0", range_value="bytes=0-0")
        events = ledger_events(deployment.ledger)
        totals = summarize(events)
        factor = (
            totals[CDN_ORIGIN]["response_bytes_delivered"]
            / totals[CLIENT_CDN]["response_bytes_delivered"]
        )
        assert factor > 1500
