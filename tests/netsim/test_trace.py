"""Tests for trace export/import."""

import io
import json

from repro.core.sbr import SbrAttack
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN, TrafficLedger
from repro.netsim.trace import (
    TraceEvent,
    dump_joined_jsonl,
    dump_jsonl,
    ledger_events,
    load_joined_jsonl,
    load_jsonl,
    summarize,
)
from repro.obs.tracer import SpanRecord, Tracer, use_tracer

MB = 1 << 20


def _populated_ledger():
    ledger = TrafficLedger()
    for segment, size in ((CLIENT_CDN, 100), (CDN_ORIGIN, 5000), (CDN_ORIGIN, 7000)):
        connection = ledger.open_connection(segment, client_label="a", server_label="b")
        request = HttpRequest("GET", "/x", headers=[("Host", "h")])
        connection.exchange(request, HttpResponse(200, body=size), note=f"{segment}:{size}")
    return ledger


class TestEvents:
    def test_flattening_preserves_order_and_counts(self):
        events = ledger_events(_populated_ledger())
        assert [e.sequence for e in events] == [0, 1, 2]
        assert [e.segment for e in events] == [CLIENT_CDN, CDN_ORIGIN, CDN_ORIGIN]
        assert events[1].note == f"{CDN_ORIGIN}:5000"

    def test_round_trip_through_jsonl(self):
        ledger = _populated_ledger()
        buffer = io.StringIO()
        count = dump_jsonl(ledger, buffer)
        assert count == 3
        buffer.seek(0)
        loaded = load_jsonl(buffer)
        assert loaded == ledger_events(ledger)

    def test_blank_lines_ignored_on_load(self):
        ledger = _populated_ledger()
        buffer = io.StringIO()
        dump_jsonl(ledger, buffer)
        buffer.write("\n\n")
        buffer.seek(0)
        assert len(load_jsonl(buffer)) == 3

    def test_summary_matches_ledger_stats(self):
        ledger = _populated_ledger()
        totals = summarize(ledger_events(ledger))
        for segment in (CLIENT_CDN, CDN_ORIGIN):
            stats = ledger.segment_stats(segment)
            assert totals[segment]["exchanges"] == stats.exchange_count
            assert totals[segment]["response_bytes_sent"] == stats.response_bytes_sent
            assert (
                totals[segment]["response_bytes_delivered"]
                == stats.response_bytes_delivered
            )

    def test_untraced_json_matches_pre_observability_schema(self):
        """Without a tracer the emitted JSON has no id keys at all — the
        byte format is identical to the pre-observability schema."""
        event = ledger_events(_populated_ledger())[0]
        payload = json.loads(event.to_json())
        assert "trace_id" not in payload
        assert "span_id" not in payload

    def test_traced_exchanges_stamp_ids_into_events(self):
        ledger = TrafficLedger()
        tracer = Tracer()
        with use_tracer(tracer):
            connection = ledger.open_connection(CLIENT_CDN)
            request = HttpRequest("GET", "/x", headers=[("Host", "h")])
            connection.exchange(request, HttpResponse(200, body=10))
        (event,) = ledger_events(ledger)
        (span,) = tracer.finished_spans()
        assert event.trace_id == span.trace_id
        assert event.span_id == span.span_id


class TestSchemaCompat:
    """Satellite: forward/backward schema compatibility of from_json."""

    def _event(self, **overrides):
        base = dict(
            sequence=0, segment=CLIENT_CDN, client="a", server="b",
            connection_index=0, exchange_index=0, status=206,
            request_bytes=100, response_bytes_sent=5000,
            response_bytes_delivered=5000, truncated=False, note="",
        )
        base.update(overrides)
        return TraceEvent(**base)

    def test_old_schema_line_loads_in_new_consumer(self):
        """A line written before trace ids existed parses; ids default
        to None."""
        old_line = self._event().to_json()  # untraced == old schema
        loaded = TraceEvent.from_json(old_line)
        assert loaded.trace_id is None
        assert loaded.span_id is None
        assert loaded == self._event()

    def test_new_schema_line_round_trips_with_ids(self):
        event = self._event(trace_id="t0", span_id="s3")
        loaded = TraceEvent.from_json(event.to_json())
        assert loaded == event
        assert loaded.span_id == "s3"

    def test_unknown_keys_ignored(self):
        """A line from a *future* schema (extra keys) still loads — the
        old-consumer direction of the compat satellite."""
        payload = json.loads(self._event(trace_id="t0", span_id="s1").to_json())
        payload["hop_latency_ns"] = 12345
        payload["labels"] = {"dc": "fra1"}
        loaded = TraceEvent.from_json(json.dumps(payload))
        assert loaded == self._event(trace_id="t0", span_id="s1")

    def test_round_trip_across_both_schemas(self):
        """old → new → old: parsing an old line and re-serializing it
        reproduces the old bytes exactly."""
        old_line = self._event().to_json()
        assert TraceEvent.from_json(old_line).to_json() == old_line


class TestJoinedStream:
    def test_joined_dump_and_load_partition_by_kind(self):
        ledger = _populated_ledger()
        spans = (
            SpanRecord("t0", "s0", None, "client.request", 0.0, 1.0),
            SpanRecord("t0", "s1", "s0", "cdn.handle", 0.0, 1.0),
        )
        buffer = io.StringIO()
        count = dump_joined_jsonl(ledger_events(ledger), spans, buffer)
        assert count == 5
        buffer.seek(0)
        events, loaded_spans = load_joined_jsonl(buffer)
        assert events == ledger_events(ledger)
        assert tuple(loaded_spans) == spans

    def test_plain_loader_still_reads_event_only_streams(self):
        ledger = _populated_ledger()
        buffer = io.StringIO()
        dump_joined_jsonl(ledger_events(ledger), (), buffer)
        buffer.seek(0)
        assert load_jsonl(buffer) == ledger_events(ledger)

    def test_attack_run_exports_cleanly(self):
        """An SBR run's ledger is exportable and its summary reproduces
        the amplification arithmetic."""
        attack = SbrAttack("gcore", resource_size=1 * MB)
        deployment = attack.build_deployment()
        client = deployment.client()
        client.get("/target.bin?cb=0", range_value="bytes=0-0")
        events = ledger_events(deployment.ledger)
        totals = summarize(events)
        factor = (
            totals[CDN_ORIGIN]["response_bytes_delivered"]
            / totals[CLIENT_CDN]["response_bytes_delivered"]
        )
        assert factor > 1500
