"""Unit tests for segment-level traffic aggregation."""

from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.overhead import TcpOverheadModel
from repro.netsim.tap import (
    BCDN_ORIGIN,
    CDN_ORIGIN,
    CLIENT_CDN,
    FCDN_BCDN,
    TrafficLedger,
)


def _exchange(connection, body_size=100, cap=None):
    request = HttpRequest("GET", "/x", headers=[("Host", "h")])
    response = HttpResponse(200, body=body_size)
    return connection.exchange(request, response, deliver_cap=cap)


class TestLedger:
    def test_canonical_segment_names(self):
        assert CLIENT_CDN == "client-cdn"
        assert CDN_ORIGIN == "cdn-origin"
        assert FCDN_BCDN == "fcdn-bcdn"
        assert BCDN_ORIGIN == "bcdn-origin"

    def test_open_connection_tracks(self):
        ledger = TrafficLedger()
        connection = ledger.open_connection(CLIENT_CDN)
        assert ledger.connections == [connection]
        assert ledger.connections_on(CLIENT_CDN) == [connection]
        assert ledger.connections_on(CDN_ORIGIN) == []

    def test_segment_stats_aggregate_connections(self):
        ledger = TrafficLedger()
        a = ledger.open_connection(CDN_ORIGIN)
        b = ledger.open_connection(CDN_ORIGIN)
        _exchange(a, 100)
        _exchange(a, 200)
        _exchange(b, 300)
        stats = ledger.segment_stats(CDN_ORIGIN)
        assert stats.connection_count == 2
        assert stats.exchange_count == 3
        assert stats.response_bytes_sent == (
            a.response_bytes_sent + b.response_bytes_sent
        )

    def test_delivered_vs_sent(self):
        ledger = TrafficLedger()
        connection = ledger.open_connection(CDN_ORIGIN)
        _exchange(connection, 1000, cap=50)
        stats = ledger.segment_stats(CDN_ORIGIN)
        assert stats.response_bytes_delivered == 50
        assert stats.response_bytes_sent > 1000

    def test_empty_segment_stats(self):
        stats = TrafficLedger().segment_stats("nothing-here")
        assert stats.connection_count == 0
        assert stats.response_bytes_sent == 0

    def test_segment_names_in_first_seen_order(self):
        ledger = TrafficLedger()
        ledger.open_connection(FCDN_BCDN)
        ledger.open_connection(CLIENT_CDN)
        ledger.open_connection(FCDN_BCDN)
        assert ledger.segment_names() == [FCDN_BCDN, CLIENT_CDN]

    def test_all_stats(self):
        ledger = TrafficLedger()
        _exchange(ledger.open_connection(CLIENT_CDN), 10)
        _exchange(ledger.open_connection(CDN_ORIGIN), 20)
        stats = ledger.all_stats()
        assert set(stats) == {CLIENT_CDN, CDN_ORIGIN}

    def test_response_bytes_shorthand(self):
        ledger = TrafficLedger()
        _exchange(ledger.open_connection(CDN_ORIGIN), 500, cap=10)
        assert ledger.response_bytes(CDN_ORIGIN, delivered=True) == 10
        assert ledger.response_bytes(CDN_ORIGIN) > 500

    def test_overhead_model_shared_by_connections(self):
        ledger = TrafficLedger(overhead=TcpOverheadModel())
        connection = ledger.open_connection(CDN_ORIGIN)
        record = _exchange(connection, 100)
        # Framed size exceeds pure payload size.
        assert record.response_bytes_sent > HttpResponse(200, body=100).wire_size()

    def test_total_bytes(self):
        ledger = TrafficLedger()
        _exchange(ledger.open_connection(CDN_ORIGIN), 100)
        stats = ledger.segment_stats(CDN_ORIGIN)
        assert stats.total_bytes == stats.request_bytes + stats.response_bytes_sent
