"""Unit tests for the TCP/IP framing model."""

import pytest

from repro.netsim.overhead import NullOverheadModel, TcpOverheadModel


class TestNullModel:
    def test_identity(self):
        model = NullOverheadModel()
        assert model.framed_size(0) == 0
        assert model.framed_size(12345) == 12345
        assert model.connection_setup_bytes() == 0


class TestTcpModel:
    def test_single_segment(self):
        model = TcpOverheadModel(mss=1460, header_bytes=40)
        assert model.framed_size(100) == 140

    def test_exact_segment_boundary(self):
        model = TcpOverheadModel(mss=1460, header_bytes=40)
        assert model.framed_size(1460) == 1500
        assert model.framed_size(1461) == 1461 + 80

    def test_zero_payload(self):
        assert TcpOverheadModel().framed_size(0) == 0

    def test_large_payload_overhead_fraction(self):
        model = TcpOverheadModel(mss=1460, header_bytes=40)
        payload = 10 * 1024 * 1024
        framed = model.framed_size(payload)
        # ~2.7% framing overhead for full-size segments.
        assert 1.025 < framed / payload < 1.03

    def test_setup_cost(self):
        assert TcpOverheadModel(header_bytes=40).connection_setup_bytes() == 200

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TcpOverheadModel(mss=0)
        with pytest.raises(ValueError):
            TcpOverheadModel(header_bytes=-1)
