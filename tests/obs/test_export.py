"""Tests for the Chrome trace-event and Prometheus textfile exporters."""

import io
import json

from repro.netsim.trace import TraceEvent, dump_joined_jsonl
from repro.obs.export import (
    TRACE_EVENT_KEYS,
    chrome_trace,
    chrome_trace_events,
    chrome_trace_from_jsonl,
    write_chrome_trace,
    write_prometheus_textfile,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord


def _span(name="cell", trace_id="t1", span_id="s1", parent_id=None,
          start=1.0, end=2.5):
    return SpanRecord(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start=start,
        end=end,
        attributes={"vendor": "akamai"},
    )


def _event(sequence=0, trace_id="t1"):
    return TraceEvent(
        sequence=sequence,
        segment="client-cdn",
        client="attacker",
        server="edge",
        connection_index=0,
        exchange_index=0,
        status=206,
        request_bytes=120,
        response_bytes_sent=900,
        response_bytes_delivered=900,
        truncated=False,
        note="",
        trace_id=trace_id,
        span_id="s1",
    )


class TestChromeTraceEvents:
    def test_every_event_carries_the_required_keys(self):
        events = chrome_trace_events([_span()], [_event()])
        assert events
        for event in events:
            assert all(key in event for key in TRACE_EVENT_KEYS)

    def test_span_becomes_complete_event_in_microseconds(self):
        meta, span_event = chrome_trace_events([_span(start=1.0, end=2.5)], [])
        assert meta["ph"] == "M"
        assert span_event["ph"] == "X"
        assert span_event["ts"] == 1.0 * 1e6
        assert span_event["dur"] == 1.5 * 1e6
        assert span_event["args"]["vendor"] == "akamai"
        assert span_event["args"]["span_id"] == "s1"

    def test_exchange_becomes_instant_event_with_byte_args(self):
        events = chrome_trace_events([], [_event(sequence=7)])
        instant = events[-1]
        assert instant["ph"] == "i"
        assert instant["ts"] == 7.0
        assert instant["args"]["response_bytes_sent"] == 900

    def test_trace_ids_map_to_stable_thread_lanes(self):
        spans = [_span(trace_id="t1"), _span(trace_id="t2", span_id="s2")]
        events = chrome_trace_events(spans, [_event(trace_id="t2")])
        lanes = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
        assert lanes == {"t1": 1, "t2": 2}
        assert events[-1]["tid"] == 2  # the t2 exchange rides t2's lane

    def test_untraced_exchange_gets_its_own_lane(self):
        events = chrome_trace_events([], [_event(trace_id=None)])
        lanes = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
        assert lanes == {"untraced": 1}

    def test_output_is_deterministic(self):
        spans, events = [_span()], [_event()]
        assert chrome_trace_events(spans, events) == chrome_trace_events(
            spans, events
        )


class TestChromeTraceFile:
    def test_trace_object_shape(self):
        trace = chrome_trace([_span()], [_event()])
        assert isinstance(trace["traceEvents"], list)
        assert trace["displayTimeUnit"] == "ms"

    def test_round_trip_from_joined_jsonl(self):
        stream = io.StringIO()
        dump_joined_jsonl([_event()], [_span()], stream)
        stream.seek(0)
        trace = chrome_trace_from_jsonl(stream)
        assert trace == chrome_trace([_span()], [_event()])

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(
            chrome_trace([_span()], [_event()]), tmp_path / "out.trace.json"
        )
        loaded = json.loads(path.read_text(encoding="utf-8"))
        for event in loaded["traceEvents"]:
            assert all(key in event for key in TRACE_EVENT_KEYS)


class TestPrometheusTextfile:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "hits").inc(3, vendor="akamai")
        return registry.snapshot()

    def test_writes_exposition_text(self, tmp_path):
        target = tmp_path / "metrics.prom"
        path, families = write_prometheus_textfile(self._snapshot(), target)
        assert path == target
        assert families == 1
        text = target.read_text(encoding="utf-8")
        assert 'repro_hits_total{vendor="akamai"} 3' in text
        assert not (tmp_path / "metrics.prom.tmp").exists()

    def test_replaces_existing_file_atomically(self, tmp_path):
        target = tmp_path / "metrics.prom"
        target.write_text("stale\n", encoding="utf-8")
        write_prometheus_textfile(self._snapshot(), target)
        assert "stale" not in target.read_text(encoding="utf-8")

    def test_empty_snapshot_writes_empty_file(self, tmp_path):
        target = tmp_path / "metrics.prom"
        _, families = write_prometheus_textfile({}, target)
        assert families == 0
        assert target.read_text(encoding="utf-8") == ""
