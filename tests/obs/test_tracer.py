"""Tests for the span tracer: ids, nesting, context propagation, and
the null-object disabled path."""

import json

import pytest

from repro.netsim.clock import SimClock
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    current_span,
    current_tracer,
    use_tracer,
)


class TestTracer:
    def test_root_span_has_no_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        (record,) = tracer.finished_spans()
        assert record.name == "root"
        assert record.parent_id is None
        assert record.trace_id == "t0"
        assert record.span_id == "s0"

    def test_nested_spans_link_parent_child(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.parent_id == parent.span_id
                assert child.trace_id == parent.trace_id
        child_record, parent_record = tracer.finished_spans()
        assert child_record.name == "child"
        assert child_record.parent_id == parent_record.span_id

    def test_sibling_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.finished_spans()
        assert first.trace_id == "t0"
        assert second.trace_id == "t1"
        assert first.span_id != second.span_id

    def test_id_prefix_namespaces_all_ids(self):
        tracer = Tracer(id_prefix="c7.")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        for record in tracer.finished_spans():
            assert record.trace_id == "c7.t0"
            assert record.span_id.startswith("c7.s")

    def test_ids_are_deterministic_across_tracers(self):
        def run():
            tracer = Tracer()
            with tracer.span("x"):
                with tracer.span("y"):
                    pass
            return [
                (r.trace_id, r.span_id, r.parent_id, r.name)
                for r in tracer.finished_spans()
            ]

        assert run() == run()

    def test_attributes_captured_last_write_wins(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set(vendor="akamai", bytes=1)
            span.set(bytes=2)
        (record,) = tracer.finished_spans()
        assert record.attributes == {"vendor": "akamai", "bytes": 2}

    def test_sim_clock_drives_start_end(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        clock.advance(5.0)
        with tracer.span("s"):
            clock.advance(2.5)
        (record,) = tracer.finished_spans()
        assert record.start == 5.0
        assert record.end == 7.5

    def test_exception_unwinds_and_still_records(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        names = [r.name for r in tracer.finished_spans()]
        assert names == ["inner", "outer"]
        assert tracer.current_span is NULL_SPAN

    def test_current_span_is_null_when_idle(self):
        assert Tracer().current_span is NULL_SPAN


class TestContextPropagation:
    def test_default_tracer_is_the_null_singleton(self):
        assert current_tracer() is NULL_TRACER
        assert current_span() is NULL_SPAN

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with tracer.span("s") as span:
                assert current_span() is span
        assert current_tracer() is NULL_TRACER

    def test_nested_use_tracer_restores_outer(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer


class TestNullPath:
    def test_null_tracer_returns_shared_singletons(self):
        tracer = NullTracer()
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.current_span is NULL_SPAN
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("x") as span:
            assert span.recording is False
            assert span.trace_id is None
            assert span.span_id is None
            assert span.set(a=1) is span
        assert NULL_TRACER.finished_spans() == ()
        assert NULL_TRACER.events() == ()

    def test_null_record_ledger_is_a_no_op(self):
        NULL_TRACER.record_ledger(object())
        assert NULL_TRACER.events() == ()

    def test_enabled_flags(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True


class TestSpanRecordSerialization:
    def _record(self):
        return SpanRecord(
            trace_id="t0",
            span_id="s1",
            parent_id="s0",
            name="cdn.handle",
            start=0.0,
            end=1.5,
            wall_ms=3.25,
            attributes={"vendor": "akamai", "hit": False},
        )

    def test_round_trip(self):
        record = self._record()
        assert SpanRecord.from_json(record.to_json()) == record

    def test_json_is_tagged_as_span(self):
        assert json.loads(self._record().to_json())["kind"] == "span"

    def test_from_json_tolerates_unknown_keys(self):
        payload = json.loads(self._record().to_json())
        payload["future_field"] = {"nested": True}
        loaded = SpanRecord.from_json(json.dumps(payload))
        assert loaded == self._record()

    def test_wall_ms_excluded_from_equality(self):
        a = self._record()
        b = SpanRecord(**{**a.__dict__, "wall_ms": 99.0})
        assert a == b
