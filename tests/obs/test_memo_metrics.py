"""Memo lookups as metrics: visible in-process and across the pool.

Per-process memo stats die with their worker process, which used to
make memo effectiveness invisible in pooled runs (a sweep could silently
re-simulate every cell and nothing would notice).  Named memos now emit
``repro_memo_lookups_total{memo=...,result=hit|miss}`` to the context's
active registry; the runner snapshots per-cell registries across the
process boundary and merges them, so the pool-wide hit/miss split is
reconstructible from any collected run.
"""

from repro.core.sbr import sbr_grid
from repro.obs.metrics import MEMO_LOOKUPS, MetricsRegistry, use_metrics
from repro.runner.executor import GridRunner
from repro.runner.memo import Memo, clear_all_memos, measure_sbr, memo_stats

MB = 1 << 20


def _lookups(registry, memo, result):
    return registry.counter(MEMO_LOOKUPS).value(memo=memo, result=result)


class TestMemoRecording:
    def test_named_memo_records_hit_and_miss(self):
        memo = Memo(maxsize=4, name="test_memo_records")
        registry = MetricsRegistry()
        with use_metrics(registry):
            memo.get_or_compute("k", lambda: 1)
            memo.get_or_compute("k", lambda: 1)
        assert _lookups(registry, "test_memo_records", "miss") == 1
        assert _lookups(registry, "test_memo_records", "hit") == 1

    def test_unnamed_memo_stays_silent(self):
        memo = Memo(maxsize=4)
        registry = MetricsRegistry()
        with use_metrics(registry):
            memo.get_or_compute("k", lambda: 1)
            memo.get_or_compute("k", lambda: 1)
        assert MEMO_LOOKUPS not in registry
        assert memo.stats.hits == 1  # local stats still track

    def test_no_active_registry_is_free(self):
        memo = Memo(maxsize=4, name="test_memo_silent")
        memo.get_or_compute("k", lambda: 1)
        memo.get_or_compute("k", lambda: 1)
        assert memo.stats.lookups == 2  # and nothing raised

    def test_measure_sbr_reports_to_registry_and_stats(self):
        clear_all_memos()
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = measure_sbr("gcore", 1 * MB)
            second = measure_sbr("gcore", 1 * MB)
        assert first is second
        assert _lookups(registry, "measure_sbr", "miss") == 1
        assert _lookups(registry, "measure_sbr", "hit") == 1
        stats = memo_stats()["measure_sbr"]
        assert stats.misses == 1
        assert stats.hits == 1

    def test_named_memos_are_enumerable(self):
        assert "measure_sbr" in memo_stats()


class TestCrossProcessMerge:
    def test_pooled_run_reconstructs_lookup_totals(self):
        """Two workers, four distinct SBR cells: the merged snapshots
        must account for exactly one memo lookup per cell, even though
        each worker warmed (and discarded) its own table."""
        clear_all_memos()
        grid = sbr_grid(["gcore"], (1 * MB, 2 * MB, 3 * MB, 4 * MB))
        result = GridRunner(workers=2, collect=True).run(grid)

        merged = MetricsRegistry()
        for outcome in result:
            assert outcome.obs is not None
            merged.merge_snapshot(outcome.obs.metrics)

        misses = _lookups(merged, "measure_sbr", "miss")
        hits = _lookups(merged, "measure_sbr", "hit")
        assert misses + hits == len(grid)
        # The parent's tables were cleared and every cell key is
        # distinct, so no worker can have seen a key twice.
        assert misses == len(grid)

    def test_run_all_collect_surfaces_memo_metrics(self):
        from repro.runner.runall import run_all

        clear_all_memos()
        report = run_all(workers=1, quick=True, vendors=["gcore"], collect_obs=True)
        samples = report.metrics[MEMO_LOOKUPS]["samples"]
        by_labels = {
            (s["labels"]["memo"], s["labels"]["result"]): s["value"]
            for s in samples
        }
        # Quick/gcore runs three distinct fig6 SBR cells (Table IV's
        # 1 MB cell dedupes into them); the flood cells carry a pinned
        # per-request probe and never consult the memo.
        assert by_labels[("measure_sbr", "miss")] == 3
        assert ("measure_sbr", "hit") not in by_labels
