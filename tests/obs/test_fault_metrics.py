"""Fault and retry instrumentation flowing into the metrics registry."""

from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    use_faults,
)
from repro.obs.metrics import (
    FAULTS_INJECTED,
    FETCH_ATTEMPTS,
    FETCH_RETRIES,
    RETRY_BACKOFF_SECONDS,
    MetricsRegistry,
    use_metrics,
)

from tests.conftest import get, make_node, make_origin


class TestRecordHelpers:
    def test_record_fault_labels(self):
        registry = MetricsRegistry()
        registry.record_fault("origin", "origin-error")
        registry.record_fault("origin", "origin-error")
        registry.record_fault("cdn-origin", "reset")
        counter = registry.counter(FAULTS_INJECTED)
        assert counter.value(site="origin", kind="origin-error") == 2
        assert counter.value(site="cdn-origin", kind="reset") == 1

    def test_record_retry_accrues_backoff(self):
        registry = MetricsRegistry()
        registry.record_retry("gcore", 0.5)
        registry.record_retry("gcore", 1.0)
        assert registry.counter(FETCH_RETRIES).value(vendor="gcore") == 2
        assert registry.counter(RETRY_BACKOFF_SECONDS).value(
            vendor="gcore"
        ) == 1.5

    def test_record_fetch_attempts_split_by_outcome(self):
        registry = MetricsRegistry()
        registry.record_fetch_attempts("gcore", 1, ok=True)
        registry.record_fetch_attempts("gcore", 3, ok=False)
        histogram = registry.histogram(FETCH_ATTEMPTS)
        assert histogram.count(vendor="gcore", outcome="ok") == 1
        assert histogram.count(vendor="gcore", outcome="exhausted") == 1
        assert histogram.sum(vendor="gcore", outcome="exhausted") == 3


class TestPipelineEmission:
    def test_faulted_pipeline_emits_fault_and_retry_series(self):
        plan = FaultPlan(
            seed=1, rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=1.0),)
        )
        registry = MetricsRegistry()
        node = make_node("gcore", make_origin(1000))
        with use_metrics(registry), use_faults(FaultInjector(plan)):
            get(node, range_value="bytes=0-0")
        assert registry.counter(FAULTS_INJECTED).value(
            site="origin", kind="origin-error"
        ) == 3  # gcore's budget: three attempts, all faulted
        assert registry.counter(FETCH_RETRIES).value(vendor="gcore") == 2
        assert registry.counter(RETRY_BACKOFF_SECONDS).value(vendor="gcore") > 0
        histogram = registry.histogram(FETCH_ATTEMPTS)
        assert histogram.count(vendor="gcore", outcome="exhausted") == 1

    def test_no_metrics_context_is_harmless(self):
        plan = FaultPlan(
            seed=1, rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=1.0),)
        )
        injector = FaultInjector(plan)
        node = make_node("gcore", make_origin(1000))
        with use_faults(injector):
            get(node, range_value="bytes=0-0")
        assert injector.stats.total_injected == 3  # stats still tally
