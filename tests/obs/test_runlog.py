"""Tests for the persistent run ledger: record determinism, the strict
loader, ledger append/load/resolve, and cross-run diff gating."""

import json

import pytest

from repro.obs.runlog import (
    RUNLOG_SCHEMA_VERSION,
    CellRecord,
    RunLedger,
    RunLogError,
    RunRecord,
    config_digest,
    diff_runs,
    record_from_analysis,
    record_from_dict,
    record_from_json,
    record_from_runall,
)


def _record(
    run_id="a" * 16,
    label="run-all-quick",
    cells=(),
    factors=None,
    started_at=1000.0,
):
    config = {"quick": True}
    return RunRecord(
        schema_version=RUNLOG_SCHEMA_VERSION,
        run_id=run_id,
        command="run-all",
        label=label,
        started_at=started_at,
        wall_s=2.5,
        workers=2,
        cell_count=len(cells),
        config=config,
        config_digest=config_digest(config),
        phase_seconds={"grid": 2.0},
        cells=tuple(cells),
        factors=dict(factors or {}),
        fastpath={"answered": 3, "hit_rate": 0.75},
        metrics={},
        artifacts={"table4.txt": "0" * 64},
    )


def _cell(label, seconds, experiment="sbr", ok=True):
    return CellRecord(label=label, experiment=experiment, seconds=seconds, ok=ok)


class TestRecordDeterminism:
    def test_fixed_clock_yields_byte_identical_records(self):
        from repro.analysis.report import analyze_vendor_matrix

        report = analyze_vendor_matrix()
        clock = lambda: 1234.5  # noqa: E731
        first = record_from_analysis(report, {"size_mb": 10}, wall_s=1.0, clock=clock)
        second = record_from_analysis(report, {"size_mb": 10}, wall_s=1.0, clock=clock)
        assert first.to_json() == second.to_json()
        assert first.run_id == second.run_id

    def test_round_trip_through_strict_loader_is_lossless(self):
        record = _record(
            cells=[_cell("sbr[akamai, 1MB]", 0.25)],
            factors={"sbr:akamai:1048576": 724.0},
        )
        loaded = record_from_json(record.to_json())
        assert loaded == record
        assert loaded.to_json() == record.to_json()

    def test_serialization_is_canonical(self):
        line = _record().to_json()
        payload = json.loads(line)
        assert line == json.dumps(payload, sort_keys=True, separators=(",", ":"))
        assert "\n" not in line


class TestStrictLoader:
    def test_missing_field_raises(self):
        payload = _record().to_dict()
        del payload["wall_s"]
        with pytest.raises(RunLogError):
            record_from_dict(payload)

    def test_unknown_schema_version_raises(self):
        payload = _record().to_dict()
        payload["schema_version"] = RUNLOG_SCHEMA_VERSION + 1
        with pytest.raises(RunLogError):
            record_from_dict(payload)

    def test_bool_in_numeric_field_raises(self):
        payload = _record().to_dict()
        payload["wall_s"] = True
        with pytest.raises(RunLogError):
            record_from_dict(payload)

    def test_non_numeric_factor_raises(self):
        payload = _record().to_dict()
        payload["factors"] = {"sbr:akamai:1048576": "big"}
        with pytest.raises(RunLogError):
            record_from_dict(payload)

    def test_cells_must_be_an_array_of_objects(self):
        payload = _record().to_dict()
        payload["cells"] = "oops"
        with pytest.raises(RunLogError):
            record_from_dict(payload)
        payload["cells"] = ["oops"]
        with pytest.raises(RunLogError):
            record_from_dict(payload)

    def test_non_json_line_raises(self):
        with pytest.raises(RunLogError):
            record_from_json("{truncated")


class TestRunLedger:
    def test_append_then_load_round_trips(self, tmp_path):
        ledger = RunLedger(tmp_path / "runlog.jsonl")
        first = _record(run_id="f" * 16)
        second = _record(run_id="0" * 16)
        ledger.append(first)
        ledger.append(second)
        assert ledger.load() == [first, second]
        assert len(ledger) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        assert RunLedger(tmp_path / "absent.jsonl").load() == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "runlog.jsonl"
        ledger = RunLedger(path)
        ledger.append(_record())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "run_id"')  # killed writer
        assert len(ledger.load()) == 1

    def test_malformed_middle_line_raises(self, tmp_path):
        path = tmp_path / "runlog.jsonl"
        ledger = RunLedger(path)
        ledger.append(_record())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("corrupt\n")
        ledger.append(_record(run_id="b" * 16))
        with pytest.raises(RunLogError):
            ledger.load()

    def test_resolve_by_index_and_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "runlog.jsonl")
        first = _record(run_id="aaaa000000000000")
        second = _record(run_id="bbbb000000000000")
        ledger.append(first)
        ledger.append(second)
        assert ledger.resolve("0") == first
        assert ledger.resolve("-1") == second
        assert ledger.resolve("bbbb") == second

    def test_resolve_errors(self, tmp_path):
        ledger = RunLedger(tmp_path / "runlog.jsonl")
        with pytest.raises(RunLogError):
            ledger.resolve("0")  # empty ledger
        ledger.append(_record(run_id="aaaa000000000000"))
        ledger.append(_record(run_id="aabb000000000000"))
        with pytest.raises(RunLogError):
            ledger.resolve("5")  # out of range
        with pytest.raises(RunLogError):
            ledger.resolve("aa")  # ambiguous prefix
        with pytest.raises(RunLogError):
            ledger.resolve("zz")  # no match


class TestDiffRuns:
    def test_identical_runs_pass_the_gate(self):
        record = _record(
            cells=[_cell("a", 1.0), _cell("b", 0.2)],
            factors={"sbr:akamai:1048576": 724.0},
        )
        diff = diff_runs(record, record)
        assert diff.ok
        assert diff.gate_failures() == []
        assert diff.timing_regressions() == ()
        assert diff.factor_regressions() == ()

    def test_synthetically_slowed_cell_fails_the_gate(self):
        before = _record(cells=[_cell("a", 1.0), _cell("b", 0.2)])
        after = _record(cells=[_cell("a", 2.0), _cell("b", 0.2)])
        diff = diff_runs(before, after, threshold=0.5, min_seconds=0.1)
        assert not diff.ok
        (regression,) = diff.timing_regressions()
        assert regression.label == "a"
        assert regression.ratio == 2.0
        assert any("slowed" in failure for failure in diff.gate_failures())

    def test_fast_cells_below_min_seconds_never_gate(self):
        before = _record(cells=[_cell("a", 0.001)])
        after = _record(cells=[_cell("a", 0.05)])  # 50x, but trivial
        diff = diff_runs(before, after, threshold=0.5, min_seconds=0.1)
        assert diff.ok

    def test_factor_drift_fails_in_either_direction(self):
        before = _record(factors={"sbr:akamai:1048576": 724.0})
        lower = _record(factors={"sbr:akamai:1048576": 700.0})
        diff = diff_runs(before, lower)
        assert not diff.ok
        (drift,) = diff.factor_regressions()
        assert drift.key == "sbr:akamai:1048576"
        assert drift.relative < 0

    def test_added_and_removed_cells_reported_not_gated(self):
        before = _record(cells=[_cell("a", 1.0)])
        after = _record(cells=[_cell("b", 1.0)])
        diff = diff_runs(before, after)
        assert diff.added_cells == ("b",)
        assert diff.removed_cells == ("a",)
        assert diff.ok

    def test_negative_thresholds_rejected(self):
        record = _record()
        with pytest.raises(RunLogError):
            diff_runs(record, record, threshold=-1.0)
        with pytest.raises(RunLogError):
            diff_runs(record, record, min_seconds=-1.0)


class TestRunallRecord:
    def test_quick_runall_record_round_trips(self):
        from repro.runner.runall import run_all

        report = run_all(workers=1, quick=True)
        record = record_from_runall(
            report, "run-all-quick", {"quick": True}, wall_s=1.0,
            clock=lambda: 42.0,
        )
        assert record.command == "run-all"
        assert record.cell_count == report.cell_count
        assert record.fastpath is not None
        assert record.fastpath["answered"] == report.fastpath.answered
        assert any(key.startswith("sbr:") for key in record.factors)
        assert any(key.startswith("obr:") for key in record.factors)
        assert record.phase_seconds.keys() == report.phase_seconds.keys()
        loaded = record_from_json(record.to_json())
        assert loaded == record
