"""Tests for the metrics registry: instruments, snapshots, merging, and
Prometheus rendering."""

import json

import pytest

from repro.obs.metrics import (
    AMPLIFICATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc(segment="a")
        counter.inc(2, segment="a")
        counter.inc(segment="b")
        assert counter.value(segment="a") == 3
        assert counter.value(segment="b") == 1
        assert counter.value(segment="missing") == 0

    def test_counter_rejects_decrease(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("c").inc(-1)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(MetricError):
            registry.gauge("c")


class TestGauge:
    def test_set_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5, node="x")
        gauge.set(3, node="x")
        assert gauge.value(node="x") == 3

    def test_inc_adjusts(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.inc(2)
        gauge.inc(-0.5)
        assert gauge.value() == 1.5


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == 55.5
        (sample,) = histogram.samples()
        assert sample["buckets"] == [1, 1, 1]  # <=1, <=10, +Inf overflow

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", buckets=(5.0, 1.0))


class TestSnapshotAndMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("bytes", "help text").inc(100, segment="client-cdn")
        registry.gauge("depth").set(4)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        return registry

    def test_snapshot_is_json_serializable_and_ordered(self):
        snapshot = self._populated().snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)  # must not raise

    def test_merge_adds_counters_and_histograms(self):
        a, b = self._populated(), self._populated()
        a.merge_snapshot(b.snapshot())
        assert a.counter("bytes").value(segment="client-cdn") == 200
        assert a.histogram("lat", buckets=(1.0,)).count() == 2
        assert a.gauge("depth").value() == 4  # last-wins, not additive

    def test_merge_into_empty_reconstructs(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_bucket_mismatch_raises(self):
        target = MetricsRegistry()
        target.histogram("lat", buckets=(1.0, 2.0))
        source = MetricsRegistry()
        source.histogram("lat", buckets=(1.0,)).observe(0.5)
        snapshot = source.snapshot()
        snapshot["lat"]["bucket_bounds"] = [1.0, 2.0]  # lie about bounds
        with pytest.raises(MetricError):
            target.merge_snapshot(snapshot)

    def test_merge_unknown_type_raises(self):
        with pytest.raises(MetricError):
            MetricsRegistry().merge_snapshot({"x": {"type": "summary"}})


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "hits").inc(3, vendor="akamai")
        registry.gauge("repro_depth").set(2.5)
        text = registry.to_prometheus()
        assert "# TYPE repro_hits_total counter" in text
        assert '# HELP repro_hits_total hits' in text
        assert 'repro_hits_total{vendor="akamai"} 3' in text
        assert "repro_depth 2.5" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="10"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 55.5" in text
        assert "repro_lat_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, note='say "hi"\\now')
        line = registry.to_prometheus().splitlines()[-1]
        assert '\\"hi\\"' in line
        assert "\\\\now" in line


class TestConvenienceRecorders:
    def test_record_cache_and_rewrite_and_amplification(self):
        registry = MetricsRegistry()
        registry.record_cache_lookup("akamai", hit=True)
        registry.record_cache_lookup("akamai", hit=False)
        registry.record_rewrite("akamai", "deletion")
        registry.record_amplification(43000.0, "cdn-origin")
        registry.record_cell("sbr", 0.25, ok=True)
        registry.record_cell("obr", 1.5, ok=False)
        snapshot = registry.snapshot()
        hits = registry.counter("repro_cache_lookups_total")
        assert hits.value(vendor="akamai", result="hit") == 1
        assert hits.value(vendor="akamai", result="miss") == 1
        assert (
            registry.counter("repro_range_rewrites_total").value(
                vendor="akamai", policy="deletion"
            )
            == 1
        )
        amp = snapshot["repro_amplification_factor"]
        assert amp["bucket_bounds"] == list(AMPLIFICATION_BUCKETS)
        assert amp["samples"][0]["count"] == 1
        cells = registry.counter("repro_runner_cells_total")
        assert cells.value(status="ok") == 1
        assert cells.value(status="failed") == 1


class TestContextPropagation:
    def test_default_is_none(self):
        assert current_metrics() is None

    def test_use_metrics_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_metrics(registry) as active:
            assert active is registry
            assert current_metrics() is registry
        assert current_metrics() is None


def test_instrument_classes_exported():
    assert Counter("c").type_name == "counter"
    assert Gauge("g").type_name == "gauge"
    assert Histogram("h").type_name == "histogram"
