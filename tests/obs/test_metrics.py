"""Tests for the metrics registry: instruments, snapshots, merging, and
Prometheus rendering."""

import json

import pytest

from repro.obs.metrics import (
    AMPLIFICATION_BUCKETS,
    FASTPATH_CELLS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc(segment="a")
        counter.inc(2, segment="a")
        counter.inc(segment="b")
        assert counter.value(segment="a") == 3
        assert counter.value(segment="b") == 1
        assert counter.value(segment="missing") == 0

    def test_counter_rejects_decrease(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("c").inc(-1)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(MetricError):
            registry.gauge("c")


class TestGauge:
    def test_set_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5, node="x")
        gauge.set(3, node="x")
        assert gauge.value(node="x") == 3

    def test_inc_adjusts(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.inc(2)
        gauge.inc(-0.5)
        assert gauge.value() == 1.5


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == 55.5
        (sample,) = histogram.samples()
        assert sample["buckets"] == [1, 1, 1]  # <=1, <=10, +Inf overflow

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", buckets=(5.0, 1.0))


class TestSnapshotAndMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("bytes", "help text").inc(100, segment="client-cdn")
        registry.gauge("depth").set(4)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        return registry

    def test_snapshot_is_json_serializable_and_ordered(self):
        snapshot = self._populated().snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)  # must not raise

    def test_merge_adds_counters_and_histograms(self):
        a, b = self._populated(), self._populated()
        a.merge_snapshot(b.snapshot())
        assert a.counter("bytes").value(segment="client-cdn") == 200
        assert a.histogram("lat", buckets=(1.0,)).count() == 2
        assert a.gauge("depth").value() == 4  # last-wins, not additive

    def test_merge_into_empty_reconstructs(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_bucket_mismatch_raises(self):
        target = MetricsRegistry()
        target.histogram("lat", buckets=(1.0, 2.0))
        source = MetricsRegistry()
        source.histogram("lat", buckets=(1.0,)).observe(0.5)
        snapshot = source.snapshot()
        snapshot["lat"]["bucket_bounds"] = [1.0, 2.0]  # lie about bounds
        with pytest.raises(MetricError):
            target.merge_snapshot(snapshot)

    def test_merge_unknown_type_raises(self):
        with pytest.raises(MetricError):
            MetricsRegistry().merge_snapshot({"x": {"type": "summary"}})

    def test_merge_same_length_different_bounds_raises(self):
        # Same bucket *count* but different bounds used to merge
        # silently, corrupting the distribution; now any bound
        # disagreement is refused.
        target = MetricsRegistry()
        target.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        source = MetricsRegistry()
        source.histogram("lat", buckets=(1.0, 5.0)).observe(3.0)
        with pytest.raises(MetricError):
            target.merge_snapshot(source.snapshot())

    def test_merge_counter_into_gauge_raises(self):
        target = MetricsRegistry()
        target.gauge("x").set(1)
        source = MetricsRegistry()
        source.counter("x").inc(1)
        with pytest.raises(MetricError):
            target.merge_snapshot(source.snapshot())

    def test_merge_gauge_into_counter_raises(self):
        target = MetricsRegistry()
        target.counter("x").inc(1)
        source = MetricsRegistry()
        source.gauge("x").set(1)
        with pytest.raises(MetricError):
            target.merge_snapshot(source.snapshot())

    def test_merge_histogram_into_counter_raises(self):
        target = MetricsRegistry()
        target.counter("x").inc(1)
        source = MetricsRegistry()
        source.histogram("x", buckets=(1.0,)).observe(0.5)
        with pytest.raises(MetricError):
            target.merge_snapshot(source.snapshot())

    def test_merge_disjoint_label_sets_keeps_both(self):
        target = MetricsRegistry()
        target.counter("hits").inc(2, vendor="akamai")
        source = MetricsRegistry()
        source.counter("hits").inc(3, vendor="fastly")
        target.merge_snapshot(source.snapshot())
        counter = target.counter("hits")
        assert counter.value(vendor="akamai") == 2
        assert counter.value(vendor="fastly") == 3

    def test_merge_disjoint_histogram_labels_keeps_both(self):
        target = MetricsRegistry()
        target.histogram("lat", buckets=(1.0,)).observe(0.5, segment="a")
        source = MetricsRegistry()
        source.histogram("lat", buckets=(1.0,)).observe(2.0, segment="b")
        target.merge_snapshot(source.snapshot())
        histogram = target.histogram("lat", buckets=(1.0,))
        assert histogram.count(segment="a") == 1
        assert histogram.count(segment="b") == 1

    def test_redeclaring_histogram_with_other_bounds_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("lat", buckets=(1.0, 3.0))


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "hits").inc(3, vendor="akamai")
        registry.gauge("repro_depth").set(2.5)
        text = registry.to_prometheus()
        assert "# TYPE repro_hits_total counter" in text
        assert '# HELP repro_hits_total hits' in text
        assert 'repro_hits_total{vendor="akamai"} 3' in text
        assert "repro_depth 2.5" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="10"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 55.5" in text
        assert "repro_lat_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, note='say "hi"\\now')
        line = registry.to_prometheus().splitlines()[-1]
        assert '\\"hi\\"' in line
        assert "\\\\now" in line

    def test_newline_in_label_value_escaped(self):
        # A literal newline in a label value would tear the exposition
        # line in two; it must render as the two characters backslash-n.
        registry = MetricsRegistry()
        registry.counter("c").inc(1, note="line1\nline2")
        text = registry.to_prometheus()
        (sample_line,) = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert '\\nline2' in sample_line
        assert "\n" not in sample_line

    def test_newline_and_backslash_in_help_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "first\nsecond \\ third").inc(1)
        text = registry.to_prometheus()
        (help_line,) = [
            line for line in text.splitlines() if line.startswith("# HELP")
        ]
        assert help_line == "# HELP c first\\nsecond \\\\ third"


class TestConvenienceRecorders:
    def test_record_cache_and_rewrite_and_amplification(self):
        registry = MetricsRegistry()
        registry.record_cache_lookup("akamai", hit=True)
        registry.record_cache_lookup("akamai", hit=False)
        registry.record_rewrite("akamai", "deletion")
        registry.record_amplification(43000.0, "cdn-origin")
        registry.record_cell("sbr", 0.25, ok=True)
        registry.record_cell("obr", 1.5, ok=False)
        snapshot = registry.snapshot()
        hits = registry.counter("repro_cache_lookups_total")
        assert hits.value(vendor="akamai", result="hit") == 1
        assert hits.value(vendor="akamai", result="miss") == 1
        assert (
            registry.counter("repro_range_rewrites_total").value(
                vendor="akamai", policy="deletion"
            )
            == 1
        )
        amp = snapshot["repro_amplification_factor"]
        assert amp["bucket_bounds"] == list(AMPLIFICATION_BUCKETS)
        assert amp["samples"][0]["count"] == 1
        cells = registry.counter("repro_runner_cells_total")
        assert cells.value(status="ok") == 1
        assert cells.value(status="failed") == 1


class TestFastPathCounter:
    def test_record_fastpath_cells_by_outcome(self):
        registry = MetricsRegistry()
        registry.record_fastpath_cells("answered", 41)
        registry.record_fastpath_cells("refused")
        registry.record_fastpath_cells("validated", 5)
        counter = registry.counter(FASTPATH_CELLS)
        assert counter.value(outcome="answered") == 41
        assert counter.value(outcome="refused") == 1
        assert counter.value(outcome="validated") == 5
        assert counter.value(outcome="ineligible") == 0


class TestContextPropagation:
    def test_default_is_none(self):
        assert current_metrics() is None

    def test_use_metrics_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_metrics(registry) as active:
            assert active is registry
            assert current_metrics() is registry
        assert current_metrics() is None


def test_instrument_classes_exported():
    assert Counter("c").type_name == "counter"
    assert Gauge("g").type_name == "gauge"
    assert Histogram("h").type_name == "histogram"
