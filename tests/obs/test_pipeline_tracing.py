"""End-to-end tracing/metrics through the attack pipeline.

The acceptance bar: a traced run emits at least one span per hop per
exchange with parent/child linkage, per-exchange byte attributes that
sum to the TrafficLedger's per-segment totals, and a metrics snapshot
whose per-segment byte counters equal those totals **exactly**.
"""

from collections import defaultdict

from repro.core.obr import ObrAttack
from repro.core.sbr import SbrAttack
from repro.netsim.tap import BCDN_ORIGIN, CDN_ORIGIN, CLIENT_CDN, FCDN_BCDN
from repro.obs.metrics import (
    SEGMENT_EXCHANGES,
    SEGMENT_REQUEST_BYTES,
    SEGMENT_RESPONSE_BYTES_DELIVERED,
    SEGMENT_RESPONSE_BYTES_SENT,
    MetricsRegistry,
    use_metrics,
)
from repro.obs.tracer import Tracer, use_tracer

MB = 1 << 20

#: The hop spans a single-CDN exchange must produce at least once.
SINGLE_CDN_HOPS = (
    "client.request",
    "cdn.handle",
    "cdn.cache.lookup",
    "cdn.fetch",
    "cdn.upstream",
    "origin.handle",
    "net.exchange",
)


def traced_sbr(vendor="gcore", size=1 * MB, **kwargs):
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        result = SbrAttack(vendor, resource_size=size, **kwargs).run()
    return result, tracer, registry


def by_name(spans):
    grouped = defaultdict(list)
    for span in spans:
        grouped[span.name].append(span)
    return grouped


class TestSpanTree:
    def test_every_hop_emits_a_span(self):
        _, tracer, _ = traced_sbr()
        names = by_name(tracer.finished_spans())
        for hop in SINGLE_CDN_HOPS:
            assert names[hop], f"no span for hop {hop}"

    def test_parent_child_linkage_is_closed_and_rooted(self):
        _, tracer, _ = traced_sbr()
        spans = tracer.finished_spans()
        by_id = {span.span_id: span for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert [root.name for root in roots] == ["attack.sbr"]
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]  # KeyError = broken linkage
            assert parent.trace_id == span.trace_id
            assert parent.start <= span.start

    def test_hop_nesting_matches_the_topology(self):
        """client.request > cdn.handle > cdn.fetch > cdn.upstream >
        origin.handle — each hop's span parents the next hop's."""
        _, tracer, _ = traced_sbr()
        spans = tracer.finished_spans()
        by_id = {span.span_id: span for span in spans}

        def parent_name(span):
            return by_id[span.parent_id].name if span.parent_id else None

        names = by_name(spans)
        assert all(parent_name(s) == "attack.sbr" for s in names["client.request"])
        assert all(parent_name(s) == "client.request" for s in names["cdn.handle"])
        assert all(parent_name(s) == "cdn.handle" for s in names["cdn.cache.lookup"])
        assert all(parent_name(s) == "cdn.handle" for s in names["cdn.fetch"])
        assert all(parent_name(s) == "cdn.fetch" for s in names["cdn.upstream"])
        assert all(parent_name(s) == "cdn.upstream" for s in names["origin.handle"])

    def test_one_exchange_span_per_ledger_exchange(self):
        result, tracer, _ = traced_sbr()
        exchange_spans = by_name(tracer.finished_spans())["net.exchange"]
        ledger_exchanges = sum(
            stats.exchange_count for stats in result.report.segments.values()
        )
        assert len(exchange_spans) == ledger_exchanges

    def test_exchange_byte_attributes_sum_to_ledger_totals(self):
        result, tracer, _ = traced_sbr()
        sums = defaultdict(lambda: defaultdict(int))
        for span in by_name(tracer.finished_spans())["net.exchange"]:
            for key in ("request_bytes", "response_bytes_sent",
                        "response_bytes_delivered"):
                sums[span.attributes["segment"]][key] += span.attributes[key]
        for segment, stats in result.report.segments.items():
            assert sums[segment]["request_bytes"] == stats.request_bytes
            assert sums[segment]["response_bytes_sent"] == stats.response_bytes_sent
            assert (
                sums[segment]["response_bytes_delivered"]
                == stats.response_bytes_delivered
            )

    def test_span_attributes_carry_vendor_policy_and_cache(self):
        _, tracer, _ = traced_sbr(vendor="gcore")
        names = by_name(tracer.finished_spans())
        handle = names["cdn.handle"][0]
        assert handle.attributes["vendor"] == "gcore"
        assert handle.attributes["range"] == "bytes=0-0"
        assert handle.attributes["cache"] == "miss"
        assert handle.attributes["policy"] == "deletion"
        lookup = names["cdn.cache.lookup"][0]
        assert lookup.attributes["hit"] is False

    def test_attack_span_amplification_matches_result(self):
        result, tracer, _ = traced_sbr()
        (attack,) = by_name(tracer.finished_spans())["attack.sbr"]
        assert attack.attributes["amplification"] == result.amplification


class TestLedgerEventCapture:
    def test_events_join_spans_on_ids(self):
        _, tracer, _ = traced_sbr()
        span_ids = {span.span_id for span in tracer.finished_spans()}
        events = tracer.events()
        assert events
        for event in events:
            assert event.trace_id is not None
            assert event.span_id in span_ids

    def test_event_bytes_match_their_span_attributes(self):
        _, tracer, _ = traced_sbr()
        by_id = {span.span_id: span for span in tracer.finished_spans()}
        for event in tracer.events():
            attrs = by_id[event.span_id].attributes
            assert attrs["segment"] == event.segment
            assert attrs["request_bytes"] == event.request_bytes
            assert attrs["response_bytes_sent"] == event.response_bytes_sent
            assert attrs["response_bytes_delivered"] == event.response_bytes_delivered


class TestMetricsEqualLedger:
    def _assert_counters_equal_segments(self, registry, segments):
        for name, field in (
            (SEGMENT_REQUEST_BYTES, "request_bytes"),
            (SEGMENT_RESPONSE_BYTES_SENT, "response_bytes_sent"),
            (SEGMENT_RESPONSE_BYTES_DELIVERED, "response_bytes_delivered"),
        ):
            counter = registry.counter(name)
            for segment, stats in segments.items():
                assert counter.value(segment=segment) == getattr(stats, field), (
                    f"{name}[{segment}]"
                )
        exchanges = registry.counter(SEGMENT_EXCHANGES)
        for segment, stats in segments.items():
            assert exchanges.value(segment=segment) == stats.exchange_count

    def test_sbr_segment_counters_equal_ledger_exactly(self):
        result, _, registry = traced_sbr()
        assert set(result.report.segments) == {CLIENT_CDN, CDN_ORIGIN}
        self._assert_counters_equal_segments(registry, result.report.segments)

    def test_keycdn_double_request_counted(self):
        """KeyCDN's exploited case sends the same request twice; both
        rounds land in the counters and the ledger identically."""
        result, _, registry = traced_sbr(vendor="keycdn")
        self._assert_counters_equal_segments(registry, result.report.segments)
        assert registry.counter(SEGMENT_EXCHANGES).value(segment=CLIENT_CDN) == 2

    def test_azure_dual_connection_counted(self):
        """Azure's two back-to-origin connections (deletion + expansion)
        both appear — and the truncated first delivery keeps sent >
        delivered on cdn-origin."""
        result, tracer, registry = traced_sbr(vendor="azure", size=10 * MB)
        self._assert_counters_equal_segments(registry, result.report.segments)
        upstream_notes = [
            span.attributes.get("note", "")
            for span in tracer.finished_spans()
            if span.name == "cdn.upstream"
        ]
        assert len(upstream_notes) == 2
        assert any("deletion" in note for note in upstream_notes)
        assert any("expansion" in note for note in upstream_notes)
        stats = result.report.segments[CDN_ORIGIN]
        assert stats.response_bytes_sent > stats.response_bytes_delivered

    def test_obr_pinned_run_counters_equal_ledger_exactly(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            result = ObrAttack("cloudflare", "akamai").run(overlap_count=50)
        assert set(result.report.segments) == {CLIENT_CDN, FCDN_BCDN, BCDN_ORIGIN}
        self._assert_counters_equal_segments(registry, result.report.segments)
        # The cascade shows up as nested cdn.handle spans: FCDN's wraps
        # the BCDN's.
        handles = [s for s in tracer.finished_spans() if s.name == "cdn.handle"]
        vendors = {s.attributes["vendor"] for s in handles}
        assert vendors == {"cloudflare", "akamai"}

    def test_amplification_histogram_observes_each_run(self):
        _, _, registry = traced_sbr()
        histogram = registry.histogram("repro_amplification_factor")
        assert histogram.count(victim_segment=CDN_ORIGIN) == 1

    def test_rewrite_counter_by_policy(self):
        _, _, registry = traced_sbr(vendor="gcore")
        assert (
            registry.counter("repro_range_rewrites_total").value(
                vendor="gcore", policy="deletion"
            )
            == 1
        )
