"""Multiprocess hammer for :meth:`RunLedger.append`.

Many processes append to one ledger at once, released together by a
barrier to maximize collision pressure.  Every line must come back
intact through the strict loader: no torn lines, no interleaved lines,
no lost records.  Each record's config carries a multi-KB padding blob
so lines comfortably exceed ``PIPE_BUF`` — the regime where buffered
appends used to tear.
"""

from __future__ import annotations

import multiprocessing

from repro.obs.runlog import RUNLOG_SCHEMA_VERSION, RunLedger, RunRecord

WRITERS = 6
RECORDS_PER_WRITER = 20
#: Pushes each serialized line past any PIPE_BUF-sized atomicity bound.
PADDING = "x" * 8192


def _record(writer: int, index: int) -> RunRecord:
    return RunRecord(
        schema_version=RUNLOG_SCHEMA_VERSION,
        run_id=f"w{writer:02d}i{index:03d}",
        command="hammer",
        label=f"writer-{writer}",
        started_at=float(index),
        wall_s=0.0,
        workers=1,
        cell_count=0,
        config={"writer": writer, "index": index, "padding": PADDING},
        config_digest="",
    )


def _hammer(path: str, writer: int, barrier) -> None:
    ledger = RunLedger(path)
    barrier.wait()
    for index in range(RECORDS_PER_WRITER):
        ledger.append(_record(writer, index))


def test_concurrent_appends_never_tear_lines(tmp_path):
    path = tmp_path / "runlog.jsonl"
    barrier = multiprocessing.Barrier(WRITERS)
    processes = [
        multiprocessing.Process(target=_hammer, args=(str(path), writer, barrier))
        for writer in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0

    # Raw-line sanity first: every physical line is complete JSON.
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == WRITERS * RECORDS_PER_WRITER

    # The strict loader must accept every line (it raises on any
    # malformed non-final line, so a single torn middle fails loudly).
    records = RunLedger(path).load()
    assert len(records) == WRITERS * RECORDS_PER_WRITER

    # No record lost, duplicated, or cross-contaminated.
    seen = {record.run_id for record in records}
    expected = {
        f"w{writer:02d}i{index:03d}"
        for writer in range(WRITERS)
        for index in range(RECORDS_PER_WRITER)
    }
    assert seen == expected
    for record in records:
        assert record.config["padding"] == PADDING
        assert record.run_id == (
            f"w{record.config['writer']:02d}i{record.config['index']:03d}"
        )


def test_single_writer_roundtrip_unchanged(tmp_path):
    """The raw-fd rewrite preserves the plain append/load contract."""
    path = tmp_path / "runlog.jsonl"
    ledger = RunLedger(path)
    ledger.append(_record(0, 0))
    ledger.append(_record(0, 1))
    records = ledger.load()
    assert [r.run_id for r in records] == ["w00i000", "w00i001"]
    assert len(ledger) == 2
