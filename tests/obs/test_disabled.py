"""The disabled-observability guarantee.

With no tracer/registry installed (the default), instrumented code must
(1) produce byte-identical attack results to an explicitly-nulled run,
(2) leave no observability residue in the records, and (3) allocate
nothing on the instrumentation points themselves — pinned below with a
tracemalloc micro-bench.
"""

import tracemalloc

from repro.core.obr import ObrAttack
from repro.core.sbr import SbrAttack
from repro.obs.metrics import current_metrics
from repro.obs.tracer import NULL_TRACER, current_tracer, use_tracer

MB = 1 << 20


class TestResultsIdentical:
    def test_sbr_report_identical_with_and_without_null_tracer(self):
        plain = SbrAttack("gcore", resource_size=1 * MB).run()
        with use_tracer(NULL_TRACER):
            nulled = SbrAttack("gcore", resource_size=1 * MB).run()
        assert plain.report == nulled.report
        assert plain == nulled

    def test_obr_report_identical_with_and_without_null_tracer(self):
        plain = ObrAttack("cloudflare", "akamai").run(overlap_count=20)
        with use_tracer(NULL_TRACER):
            nulled = ObrAttack("cloudflare", "akamai").run(overlap_count=20)
        assert plain.report == nulled.report

    def test_untraced_records_carry_no_ids(self):
        attack = SbrAttack("gcore", resource_size=1 * MB)
        deployment = attack.build_deployment()
        deployment.client().get("/target.bin?cb=0", range_value="bytes=0-0")
        for connection in deployment.ledger.connections:
            for record in connection.records:
                assert record.trace_id is None
                assert record.span_id is None

    def test_defaults_are_off(self):
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is None


class TestAllocationFree:
    #: tracemalloc tolerance: the null path touches only shared
    #: singletons, but tracemalloc itself may account a few hundred
    #: bytes of interpreter-internal churn (frame/trace bookkeeping)
    #: over 10k iterations.  512 B over 10_000 iterations is < 0.06 B
    #: per span — far below any real per-span allocation (a Span object
    #: alone is > 48 B).
    TOLERANCE_BYTES = 512
    ITERATIONS = 10_000

    def test_null_span_path_allocates_nothing(self):
        def spin(n):
            tracer = current_tracer()
            for _ in range(n):
                with tracer.span("hot") as span:
                    span.set(a=1)

        spin(100)  # warm up: bytecode caches, method binding
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            spin(self.ITERATIONS)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        growth = after - before
        assert growth <= self.TOLERANCE_BYTES, (
            f"null-tracer span path allocated {growth} B over "
            f"{self.ITERATIONS} iterations"
        )
