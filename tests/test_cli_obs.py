"""Tests for the ``repro obs`` CLI group and ``--runlog`` emission."""

import json

import pytest

from repro.cli import main
from repro.netsim.trace import TraceEvent, dump_joined_jsonl
from repro.obs.export import TRACE_EVENT_KEYS
from repro.obs.runlog import (
    RUNLOG_SCHEMA_VERSION,
    CellRecord,
    RunLedger,
    RunRecord,
    config_digest,
)
from repro.obs.tracer import SpanRecord


def _record(run_id, cells=(), factors=None, label="run-all-quick"):
    config = {"quick": True}
    return RunRecord(
        schema_version=RUNLOG_SCHEMA_VERSION,
        run_id=run_id,
        command="run-all",
        label=label,
        started_at=1000.0,
        wall_s=2.0,
        workers=1,
        cell_count=len(cells),
        config=config,
        config_digest=config_digest(config),
        cells=tuple(
            CellRecord(label=name, experiment="sbr", seconds=seconds, ok=True)
            for name, seconds in cells
        ),
        factors=dict(factors or {}),
        metrics={},
    )


def _ledger(tmp_path, records):
    path = tmp_path / "runlog.jsonl"
    ledger = RunLedger(path)
    for record in records:
        ledger.append(record)
    return str(path)


class TestObsRuns:
    def test_lists_records(self, tmp_path, capsys):
        path = _ledger(tmp_path, [_record("a" * 16), _record("b" * 16)])
        assert main(["obs", "runs", "--ledger", path]) == 0
        output = capsys.readouterr().out
        assert "a" * 16 in output
        assert "b" * 16 in output

    def test_empty_ledger_is_not_an_error(self, tmp_path, capsys):
        path = str(tmp_path / "absent.jsonl")
        assert main(["obs", "runs", "--ledger", path]) == 0
        assert "empty" in capsys.readouterr().out

    def test_json_format_and_limit(self, tmp_path, capsys):
        path = _ledger(tmp_path, [_record("a" * 16), _record("b" * 16)])
        assert main(
            ["obs", "runs", "--ledger", path, "--limit", "1", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["run_id"] for entry in payload] == ["b" * 16]


class TestObsTop:
    def test_ranks_slowest_cells_first(self, tmp_path, capsys):
        path = _ledger(
            tmp_path,
            [_record("a" * 16, cells=[("fast", 0.1), ("slow", 2.0)])],
        )
        assert main(["obs", "top", "--ledger", path, "-n", "1"]) == 0
        output = capsys.readouterr().out
        assert "slow" in output
        assert "fast" not in output

    def test_ranks_trace_spans(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        span = SpanRecord(
            trace_id="t1", span_id="s1", parent_id=None,
            name="cell sbr[akamai]", start=0.0, end=3.0,
        )
        with open(trace_path, "w", encoding="utf-8") as stream:
            dump_joined_jsonl([], [span], stream)
        assert main(["obs", "top", "--trace", str(trace_path)]) == 0
        assert "cell sbr[akamai]" in capsys.readouterr().out


class TestObsDiffGate:
    def test_gate_passes_on_identical_runs(self, tmp_path, capsys):
        record = _record("a" * 16, cells=[("a", 1.0)], factors={"sbr:x:1": 10.0})
        path = _ledger(tmp_path, [record, record])
        assert main(["obs", "diff", "0", "1", "--ledger", path, "--gate"]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_fails_on_synthetically_slowed_run(self, tmp_path, capsys):
        before = _record("a" * 16, cells=[("a", 1.0)])
        after = _record("b" * 16, cells=[("a", 3.0)])
        path = _ledger(tmp_path, [before, after])
        assert main(["obs", "diff", "0", "1", "--ledger", path, "--gate"]) == 1
        assert "GATE:" in capsys.readouterr().err

    def test_gate_fails_on_factor_drift(self, tmp_path, capsys):
        before = _record("a" * 16, factors={"sbr:x:1": 10.0})
        after = _record("b" * 16, factors={"sbr:x:1": 11.0})
        path = _ledger(tmp_path, [before, after])
        assert main(["obs", "diff", "0", "1", "--ledger", path, "--gate"]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_without_gate_reports_but_exits_zero(self, tmp_path, capsys):
        before = _record("a" * 16, cells=[("a", 1.0)])
        after = _record("b" * 16, cells=[("a", 3.0)])
        path = _ledger(tmp_path, [before, after])
        assert main(["obs", "diff", "0", "1", "--ledger", path]) == 0
        assert "timing regressions" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        before = _record("a" * 16, cells=[("a", 1.0)])
        after = _record("b" * 16, cells=[("a", 3.0)])
        path = _ledger(tmp_path, [before, after])
        assert main(
            ["obs", "diff", "0", "1", "--ledger", path, "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["timing_regressions"][0]["label"] == "a"

    def test_unknown_ref_is_a_clean_error(self, tmp_path, capsys):
        path = _ledger(tmp_path, [_record("a" * 16)])
        assert main(["obs", "diff", "0", "zz", "--ledger", path]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsExport:
    def test_export_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        span = SpanRecord(
            trace_id="t1", span_id="s1", parent_id=None,
            name="cell", start=0.0, end=1.0,
        )
        event = TraceEvent(
            sequence=0, segment="client-cdn", client="a", server="b",
            connection_index=0, exchange_index=0, status=206,
            request_bytes=100, response_bytes_sent=900,
            response_bytes_delivered=900, truncated=False, note="",
            trace_id="t1", span_id="s1",
        )
        with open(trace_path, "w", encoding="utf-8") as stream:
            dump_joined_jsonl([event], [span], stream)
        out_path = tmp_path / "out.trace.json"
        assert main(
            ["obs", "export-trace", str(trace_path), str(out_path)]
        ) == 0
        trace = json.loads(out_path.read_text(encoding="utf-8"))
        assert trace["traceEvents"]
        for entry in trace["traceEvents"]:
            assert all(key in entry for key in TRACE_EVENT_KEYS)

    def test_export_trace_default_output_path(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        with open(trace_path, "w", encoding="utf-8") as stream:
            dump_joined_jsonl([], [], stream)
        assert main(["obs", "export-trace", str(trace_path)]) == 0
        assert (tmp_path / "trace.trace.json").exists()

    def test_export_prom_writes_textfile(self, tmp_path, capsys):
        record = _record("a" * 16)
        path = _ledger(tmp_path, [record])
        out = tmp_path / "metrics.prom"
        assert main(
            ["obs", "export-prom", "-1", str(out), "--ledger", path]
        ) == 0
        assert out.exists()


class TestRunlogEmission:
    def test_analyze_appends_a_loadable_record(self, tmp_path, capsys):
        path = str(tmp_path / "runlog.jsonl")
        assert main(["analyze", "--runlog", path]) == 0
        assert "runlog: appended" in capsys.readouterr().out
        (record,) = RunLedger(path).load()
        assert record.command == "analyze"
        assert any(key.startswith("bound:") for key in record.factors)

    def test_analyze_json_mode_keeps_stdout_parseable(self, tmp_path, capsys):
        path = str(tmp_path / "runlog.jsonl")
        assert main(["analyze", "--format", "json", "--runlog", path]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # must not raise
        assert "runlog: appended" in captured.err

    def test_recommend_appends_residual_factors(self, tmp_path, capsys):
        path = str(tmp_path / "runlog.jsonl")
        assert main(["recommend", "--runlog", path]) == 0
        (record,) = RunLedger(path).load()
        assert record.command == "recommend"
        assert any(key.startswith("residual:") for key in record.factors)


def test_obs_requires_a_subcommand():
    with pytest.raises(SystemExit):
        main(["obs"])
