"""Tests for the defense recommendation engine (``repro recommend``).

Covers the engine's load-bearing promises:

* mitigation candidates are tried cheapest-first and the chosen option
  is the *first* sufficient one, with every cheaper failure kept in the
  rejected list;
* residual bounds never exceed the clean bounds they mitigate;
* residual bounds stay sound dynamically — a simulated attack under the
  mitigated profile never exceeds the residual bound (property-tested
  over sizes, plus the full quick verification grid);
* the JSON report shape the CI gate consumes is stable;
* every survey vendor and cascade flagged by the static analyzer
  receives a recommendation, and all of them resolve below the default
  threshold.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import profile_sbr_bound, sbr_bound
from repro.analysis.recommend import (
    COST_CONFIG_ONLY,
    DEFAULT_THRESHOLD,
    OBR_MITIGATIONS,
    SBR_MITIGATIONS,
    MitigationOption,
    MitigationSpec,
    _pick,
    mitigation_profile_factory,
    recommend,
    render_recommendations_table,
    verify_recommendations,
)
from repro.analysis.report import analyze_vendor_matrix
from repro.cdn.vendors.matrix import sbr_vulnerable_vendors
from repro.cli import main
from repro.core.sbr import SbrAttack
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, use_metrics

MB = 1 << 20
KB = 1 << 10

SEVERITY_ORDER = ("critical", "high", "medium", "low", "info")


@pytest.fixture(scope="module")
def report():
    """One full recommendation pass, shared across the module."""
    return recommend()


def _option(rank, residual, threshold=DEFAULT_THRESHOLD):
    spec = MitigationSpec(f"m{rank}", "cdn", COST_CONFIG_ONLY, rank, "synthetic")
    return MitigationOption(
        spec=spec,
        residual_factor=residual,
        faulted_residual_factor=None,
        threshold=threshold,
    )


class TestCostOrdering:
    def test_candidate_lists_are_rank_sorted_and_cost_monotone(self):
        for candidates in (SBR_MITIGATIONS, OBR_MITIGATIONS):
            ranks = [spec.rank for spec in candidates]
            assert ranks == sorted(ranks) == list(range(len(candidates)))
            costs = [spec.cost for spec in candidates]
            # Rank order must never contradict the cost classes.
            assert costs == sorted(costs)

    def test_pick_returns_first_sufficient(self):
        options = [_option(0, 500.0), _option(1, 3.0), _option(2, 1.5)]
        chosen, rejected = _pick(options)
        assert chosen is options[1]
        assert rejected == (options[0],)

    def test_pick_with_no_sufficient_option(self):
        options = [_option(0, 100.0), _option(1, 50.0)]
        chosen, rejected = _pick(options)
        assert chosen is None
        assert rejected == tuple(options)

    def test_rejected_options_are_cheaper_and_insufficient(self, report):
        for recommendation in report.recommendations:
            assert recommendation.chosen is not None
            for option in recommendation.rejected:
                assert not option.sufficient
                assert option.spec.rank < recommendation.chosen.spec.rank


class TestResidualBounds:
    def test_chosen_residual_below_clean_bound_for_every_finding(self, report):
        for recommendation in report.recommendations:
            chosen = recommendation.chosen
            assert chosen is not None, recommendation.subject
            assert chosen.residual_factor < recommendation.finding.factor_bound, (
                f"{recommendation.subject}: residual {chosen.residual_factor:.1f} "
                f"not below clean bound {recommendation.finding.factor_bound:.1f}"
            )

    def test_laziness_residual_below_clean_bound_for_every_vendor(self):
        for vendor in sbr_vulnerable_vendors():
            factory = mitigation_profile_factory(vendor, "laziness")
            residual = profile_sbr_bound(vendor, factory, 10 * MB).factor
            clean = sbr_bound(vendor, 10 * MB).factor
            assert residual < clean
            assert residual < DEFAULT_THRESHOLD

    def test_threshold_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            recommend(threshold=0.0)
        with pytest.raises(ConfigurationError):
            recommend(threshold=-1.0)


class TestSimulationNeverExceedsResidual:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        vendor=st.sampled_from(sbr_vulnerable_vendors()),
        size=st.integers(min_value=256 * KB, max_value=2 * MB),
        mitigation=st.sampled_from(["laziness", "bounded-expansion"]),
    )
    def test_random_sizes(self, vendor, size, mitigation):
        factory = mitigation_profile_factory(vendor, mitigation)
        bound = profile_sbr_bound(vendor, factory, size)
        simulated = SbrAttack(
            vendor, resource_size=size, profile_factory=factory
        ).run()
        assert simulated.amplification <= bound.factor, (
            f"{vendor}+{mitigation} at {size}: simulated "
            f"{simulated.amplification:.2f} exceeds residual bound "
            f"{bound.factor:.2f}"
        )

    def test_full_quick_verification_grid(self, report):
        checks = verify_recommendations(report, sizes=(1 * MB,))
        assert checks, "verification grid produced no checks"
        for check in checks:
            assert check.ok, (
                f"{check.subject} under {check.mitigation}: simulated "
                f"{check.simulated_factor:.2f} exceeds residual bound "
                f"{check.residual_bound:.2f}"
            )


class TestJsonShape:
    def test_cli_json_golden_shape(self, capsys):
        assert main(["recommend", "--format", "json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert set(decoded) == {
            "threshold",
            "resource_size",
            "obr_resource_size",
            "ccfc_resource_size",
            "with_retries",
            "all_resolved",
            "recommendations",
        }
        assert decoded["threshold"] == DEFAULT_THRESHOLD
        assert decoded["resource_size"] == 10 * MB
        assert decoded["all_resolved"] is True
        for entry in decoded["recommendations"]:
            assert set(entry) == {
                "kind",
                "subject",
                "severity",
                "mechanism",
                "clean_factor",
                "chosen",
                "rejected",
            }
            chosen = entry["chosen"]
            assert set(chosen) == {
                "mitigation",
                "target",
                "label",
                "cost",
                "description",
                "residual_factor",
                "residual_severity",
                "sufficient",
                "faulted_residual_factor",
            }
            assert chosen["sufficient"] is True
            assert chosen["residual_severity"] in ("low", "info")
            for option in entry["rejected"]:
                assert option["sufficient"] is False

    def test_json_keeps_severity_ranking(self, capsys):
        assert main(["recommend", "--format", "json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        indices = [
            SEVERITY_ORDER.index(entry["severity"])
            for entry in decoded["recommendations"]
        ]
        assert indices == sorted(indices)

    def test_with_retries_adds_faulted_residuals(self, capsys):
        assert main(["recommend", "--format", "json", "--with-retries"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        sbr = [e for e in decoded["recommendations"] if e["kind"] == "sbr"]
        for entry in sbr:
            faulted = entry["chosen"]["faulted_residual_factor"]
            assert faulted is not None
            # Retries only add traffic on top of the clean residual.
            assert faulted >= entry["chosen"]["residual_factor"]


class TestCliTable:
    def test_table_lists_every_finding_and_summary(self, capsys):
        assert main(["recommend"]) == 0
        output = capsys.readouterr().out
        assert "Mitigation" in output and "Residual" in output
        assert "13 SBR, 11 OBR, and 7 CCFC finding(s)" in output
        assert "laziness@cdn" in output
        assert "overlap-rejection@bcdn" in output
        assert "encoding-passthrough@cdn" in output

    def test_unreachable_threshold_exits_one(self, capsys):
        assert main(["recommend", "--threshold", "1.0"]) == 1
        output = capsys.readouterr().out
        assert "UNRESOLVED" in output

    def test_render_table_flags_unresolved_as_none(self):
        tight = recommend(threshold=1.0)
        table = render_recommendations_table(tight)
        assert "NONE" in table


class TestSurveyCoverage:
    """Repo-level guard: the engine covers the full survey."""

    def test_every_vulnerable_vendor_gets_a_recommendation(self, report):
        recommended = {r.subject for r in report.by_kind("sbr")}
        assert recommended == set(sbr_vulnerable_vendors())

    def test_every_vulnerable_cascade_gets_a_recommendation(self, report):
        analysis = analyze_vendor_matrix()
        expected = {
            finding.subject
            for finding in analysis.vulnerable
            if finding.kind == "obr"
        }
        recommended = {r.subject for r in report.by_kind("obr")}
        assert recommended == expected
        assert len(recommended) == 11

    def test_all_findings_resolve_below_default_threshold(self, report):
        assert report.all_resolved
        for recommendation in report.recommendations:
            assert recommendation.chosen.residual_factor < DEFAULT_THRESHOLD


class TestMetrics:
    def test_recommendation_metrics_are_recorded(self):
        registry = MetricsRegistry()
        analysis = analyze_vendor_matrix(vendors=("gcore",))
        with use_metrics(registry):
            recommend(report=analysis)
        snapshot = registry.snapshot()
        assert "repro_recommendations_total" in snapshot
        assert "repro_residual_factor" in snapshot
        samples = snapshot["repro_recommendations_total"]["samples"]
        assert samples, "no recommendation counter samples recorded"
        assert all(sample["labels"]["kind"] == "sbr" for sample in samples)
