"""CCFC static analysis: bounds, exactness, and the decision table.

The CCFC closed form is a *mirror*, not an estimate — it replays the
byte-defining code paths at O(1) cost — so the contract here is
stronger than the SBR/OBR soundness checks: every bound must equal the
simulated factor, not merely dominate it.  The hypothesis block keeps
the weaker ``sim <= bound`` property as the safety net over random
sizes and compression ratios.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import CcfcBound, ccfc_bound, profile_ccfc_bound
from repro.analysis.classify import classify_ccfc
from repro.cdn.vendors import all_vendor_names, create_profile
from repro.cdn.vendors.base import EncodingPolicy
from repro.core.ccfc import CcfcAttack
from repro.defense.mitigations import (
    with_encoding_normalization,
    with_encoding_passthrough,
)

MB = 1 << 20
KB = 1 << 10

#: The seven rewrite+decompress vendors (arXiv 2409.00712 Table 3).
VULNERABLE = (
    "alibaba",
    "cdn77",
    "cloudflare",
    "cloudfront",
    "fastly",
    "huawei",
    "keycdn",
)


class TestCcfcBound:
    def test_every_vendor_has_a_bound(self):
        for vendor in all_vendor_names():
            bound = ccfc_bound(vendor, 1 * MB)
            assert isinstance(bound, CcfcBound)
            assert bound.victim_bytes_upper > 0
            assert bound.attacker_bytes_lower > 0
            assert bound.factor > 0

    @pytest.mark.parametrize("vendor", VULNERABLE)
    def test_vulnerable_vendors_amplify(self, vendor):
        bound = ccfc_bound(vendor, 1 * MB)
        assert bound.encoding in ("br", "gzip")
        assert bound.factor > 100

    def test_safe_vendors_stay_near_unity(self):
        for vendor in set(all_vendor_names()) - set(VULNERABLE):
            bound = ccfc_bound(vendor, 1 * MB)
            assert bound.factor < 2, vendor

    def test_factor_grows_with_size(self):
        # Header overhead amortizes as the body grows, so the factor
        # approaches 1/ratio from below.
        small = ccfc_bound("cloudflare", 1 * MB)
        large = ccfc_bound("cloudflare", 10 * MB)
        assert large.factor > small.factor

    def test_brotli_beats_gzip(self):
        # Cloudflare negotiates br (ratio 0.0005); Fastly only gzip
        # (0.001) — the better coding doubles the inflation.
        assert ccfc_bound("cloudflare", 1 * MB).factor > ccfc_bound(
            "fastly", 1 * MB
        ).factor


class TestBoundEqualsSimulation:
    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_exact_on_every_vendor(self, vendor):
        simulated = CcfcAttack(vendor, resource_size=1 * MB).run()
        bound = ccfc_bound(vendor, 1 * MB)
        assert simulated.amplification == bound.factor, vendor
        assert simulated.client_traffic == bound.victim_bytes_upper
        assert simulated.origin_traffic == bound.attacker_bytes_lower
        assert simulated.encoding == bound.encoding

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        vendor=st.sampled_from(all_vendor_names()),
        size=st.integers(min_value=4 * KB, max_value=2 * MB),
    )
    def test_random_sizes_never_exceed_the_bound(self, vendor, size):
        simulated = CcfcAttack(vendor, resource_size=size).run()
        assert simulated.amplification <= ccfc_bound(vendor, size).factor

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        size=st.integers(min_value=4 * KB, max_value=1 * MB),
        br_ratio=st.floats(min_value=0.0001, max_value=1.5),
        gzip_ratio=st.floats(min_value=0.0001, max_value=1.5),
    )
    def test_random_ratios_never_exceed_the_bound(
        self, size, br_ratio, gzip_ratio
    ):
        def factory():
            profile = create_profile("cloudflare")
            profile.compression_ratios = {
                "br": br_ratio,
                "gzip": gzip_ratio,
                "identity": 1.0,
            }
            return profile

        attack = CcfcAttack(
            "cloudflare", resource_size=size, profile_factory=factory
        )
        bound = profile_ccfc_bound("cloudflare", factory, size)
        assert attack.run().amplification <= bound.factor


class TestClassifyDecisionTable:
    """One row per mechanism of the arXiv 2409.00712 Table 3 read."""

    def test_rewrite_and_decompress_is_vulnerable(self):
        decision = classify_ccfc("cloudflare")
        assert decision.vulnerable
        assert decision.mechanism == "rewrite+decompress"
        assert decision.encoding_policy is EncodingPolicy.REWRITE
        assert decision.min_ratio is not None and decision.min_ratio < 1.0

    def test_rewrite_without_decompression_is_safe(self):
        decision = classify_ccfc("tencent")
        assert not decision.vulnerable
        assert decision.mechanism == "rewrite-no-decompress"

    def test_forwarding_is_safe(self):
        decision = classify_ccfc("akamai")
        assert not decision.vulnerable
        assert decision.mechanism == "forward"
        assert decision.min_ratio is None

    def test_stripping_is_safe(self):
        decision = classify_ccfc("gcore")
        assert not decision.vulnerable
        assert decision.mechanism == "strip"

    def test_incompressible_rewrite_is_safe(self):
        def factory():
            profile = create_profile("cloudflare")
            profile.compression_ratios = {
                "br": 1.0,
                "gzip": 1.0,
                "identity": 1.0,
            }
            return profile

        decision = classify_ccfc("cloudflare", profile_factory=factory)
        assert not decision.vulnerable
        assert decision.mechanism == "rewrite-incompressible"

    def test_vulnerable_set_matches_the_paper(self):
        vulnerable = {
            vendor
            for vendor in all_vendor_names()
            if classify_ccfc(vendor).vulnerable
        }
        assert vulnerable == set(VULNERABLE)


class TestEncodingMitigations:
    @pytest.mark.parametrize("vendor", VULNERABLE)
    def test_passthrough_collapses_the_factor(self, vendor):
        def factory():
            return with_encoding_passthrough(create_profile(vendor))

        residual = profile_ccfc_bound(vendor, factory, 1 * MB)
        assert residual.encoding is None
        assert residual.factor < 1.01

    @pytest.mark.parametrize("vendor", VULNERABLE)
    def test_normalization_collapses_the_factor(self, vendor):
        def factory():
            return with_encoding_normalization(create_profile(vendor))

        # An identity-only client under NORMALIZE gets an identity
        # upstream request: nothing to inflate.
        residual = profile_ccfc_bound(vendor, factory, 1 * MB)
        assert residual.factor < 1.01

    def test_mitigated_residual_is_itself_exact(self):
        def factory():
            return with_encoding_passthrough(create_profile("cloudflare"))

        simulated = CcfcAttack(
            "cloudflare", resource_size=1 * MB, profile_factory=factory
        ).run()
        residual = profile_ccfc_bound("cloudflare", factory, 1 * MB)
        assert simulated.amplification == residual.factor
