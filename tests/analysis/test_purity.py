"""Tests for the whole-program determinism (purity) analyzer.

Four layers:

* **repo-clean guard** — the live ``src/repro`` tree has zero
  unsuppressed findings and every configured sink/facade still exists
  (a renamed sink silently un-gates its contract);
* **seeded fixture** — the known ``time.time()`` -> journal-write path
  in ``tests/analysis/fixtures/purity_demo/`` is detected with the
  exact source, sink, and call chain, and routing through the declared
  clock facade silences it;
* **baseline** — suppressions match, stale entries surface as
  ``unused-suppression`` findings, malformed files are usage errors,
  and the 3.10 fallback parser agrees with :mod:`tomllib`;
* **output contracts** — SARIF validates against the vendored 2.1.0
  structural subset schema, and the CLI honours the documented
  0/1/2 exit codes.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.purity import (
    BaselineEntry,
    FacadeSpec,
    PurityConfig,
    PurityReport,
    SinkSpec,
    _parse_toml_subset,
    analyze_callgraph,
    analyze_tree,
    classify_source_call,
    load_baseline,
    missing_sink_functions,
    render_text,
    to_sarif,
)
from repro.cli import main
from repro.errors import UsageError

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "purity_demo"

DEMO_SINKS = (
    SinkSpec("purity_demo.journal.Journal.write", "journal", "fixture sink"),
)
DEMO_FACADE = FacadeSpec(
    "purity_demo.clocked.now", "injected clock default (fixture)"
)


def _demo_graph() -> CallGraph:
    return build_callgraph(root=FIXTURE_ROOT, package="purity_demo")


def _demo_config(with_facade: bool = True) -> PurityConfig:
    return PurityConfig(
        sinks=DEMO_SINKS,
        facades=(DEMO_FACADE,) if with_facade else (),
        dispatch=(),
        package="purity_demo",
    )


def _demo_report(with_facade: bool = True, baseline=()) -> PurityReport:
    return analyze_callgraph(
        _demo_graph(),
        config=_demo_config(with_facade),
        baseline=baseline,
        source_prefix="",
    )


class TestSourceClassifier:
    def test_wall_clock(self):
        assert classify_source_call("time.time") == ("wall-clock", "time.time")
        assert classify_source_call("datetime.datetime.now") is not None

    def test_durations_are_not_sources(self):
        assert classify_source_call("time.perf_counter") is None
        assert classify_source_call("time.monotonic") is None
        assert classify_source_call("time.sleep") is None

    def test_seeded_random_is_a_facade(self):
        assert classify_source_call("random.Random") is None
        assert classify_source_call("random.Random.randrange") is None

    def test_global_random_is_a_source(self):
        assert classify_source_call("random.randrange") == (
            "global-random",
            "random.randrange",
        )

    def test_system_random_is_entropy(self):
        kind, _ = classify_source_call("random.SystemRandom.random")
        assert kind == "entropy"
        assert classify_source_call("os.urandom")[0] == "entropy"
        assert classify_source_call("uuid.uuid4")[0] == "entropy"

    def test_object_id_and_env(self):
        assert classify_source_call("builtins.id")[0] == "object-id"
        assert classify_source_call("os.getenv")[0] == "env-read"
        assert classify_source_call("os.environ.get")[0] == "env-read"


class TestRepoIsClean:
    """The acceptance gate: zero unsuppressed findings on the live tree."""

    def test_no_unsuppressed_findings(self):
        report = analyze_tree()
        assert report.findings == (), render_text(report)
        assert report.clean

    def test_analysis_covers_the_whole_package(self):
        report = analyze_tree()
        assert report.module_count > 80
        assert report.function_count > 700

    def test_configured_sinks_and_facades_exist(self):
        # A renamed sink would silently un-gate its contract.
        assert missing_sink_functions(build_callgraph()) == []


class TestFixtureDetection:
    def test_exact_source_sink_and_chain(self):
        report = _demo_report()
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "purity-path"
        assert finding.source_kind == "wall-clock"
        assert finding.source_token == "time.time"
        assert finding.source_function == "purity_demo.metrics.stamp"
        assert finding.sink == "purity_demo.journal.Journal.write"
        assert finding.confluence == "purity_demo.pipeline.flush"
        assert [s.qualname for s in finding.source_chain] == [
            "purity_demo.pipeline.flush",
            "purity_demo.metrics.stamp",
        ]
        assert [s.qualname for s in finding.sink_chain] == [
            "purity_demo.pipeline.flush",
            "purity_demo.journal.Journal.write",
        ]
        assert finding.rel_path == "metrics.py"
        assert finding.line > 0

    def test_facade_blocks_propagation(self):
        # Without the declared facade, the clocked.now wrapper becomes a
        # second tainted path (via flush_via_facade); with it, only the
        # raw read is reported.
        undeclared = _demo_report(with_facade=False)
        confluences = {f.confluence for f in undeclared.findings}
        assert "purity_demo.pipeline.flush_via_facade" in confluences
        declared = _demo_report(with_facade=True)
        assert {f.confluence for f in declared.findings} == {
            "purity_demo.pipeline.flush"
        }

    def test_render_text_names_the_chain(self):
        text = render_text(_demo_report())
        assert "purity-path" in text
        assert "source chain:" in text
        assert "purity_demo.pipeline.flush" in text
        assert "1 finding(s)" in text

    def test_report_dict_round_trips_through_json(self):
        payload = json.loads(_demo_report().to_json())
        assert payload["clean"] is False
        assert payload["findings"][0]["sink"] == (
            "purity_demo.journal.Journal.write"
        )
        assert payload["findings"][0]["source_chain"][0]["function"] == (
            "purity_demo.pipeline.flush"
        )


class TestBaseline:
    MATCHING = BaselineEntry(
        rule="purity-path",
        source="time.time",
        sink="purity_demo.journal.*",
        justification="fixture: reviewed",
    )
    STALE = BaselineEntry(
        rule="purity-path",
        source="uuid.*",
        sink="*",
        justification="fixture: never matches",
    )

    def test_matching_entry_suppresses(self):
        report = _demo_report(baseline=[self.MATCHING])
        assert report.findings == ()
        assert len(report.suppressed) == 1
        assert report.unused_suppressions == ()
        assert report.clean

    def test_stale_entry_is_a_finding(self):
        report = _demo_report(baseline=[self.MATCHING, self.STALE])
        assert report.findings == ()
        assert report.unused_suppressions == (self.STALE,)
        assert not report.clean

    def test_function_pattern_must_match_too(self):
        scoped = BaselineEntry(
            rule="purity-path",
            source="time.time",
            sink="*",
            function="purity_demo.other.*",
            justification="fixture: wrong function",
        )
        report = _demo_report(baseline=[scoped])
        assert len(report.findings) == 1
        assert report.unused_suppressions == (scoped,)

    def test_load_baseline(self, tmp_path):
        path = tmp_path / "purity-baseline.toml"
        path.write_text(
            "# reviewed suppressions\n"
            "[[suppression]]\n"
            'rule = "purity-path"\n'
            'source = "time.time"\n'
            'sink = "purity_demo.journal.*"\n'
            'justification = "fixture: reviewed"\n',
            encoding="utf-8",
        )
        entries = load_baseline(path)
        assert entries == [self.MATCHING]

    def test_missing_file_is_a_usage_error(self, tmp_path):
        with pytest.raises(UsageError):
            load_baseline(tmp_path / "absent.toml")

    def test_missing_justification_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            "[[suppression]]\n"
            'rule = "purity-path"\n'
            'source = "x"\n'
            'sink = "y"\n',
            encoding="utf-8",
        )
        with pytest.raises(UsageError, match="missing justification"):
            load_baseline(path)

    def test_fallback_parser_agrees_with_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        text = (
            "# comment\n"
            "\n"
            "[[suppression]]\n"
            'rule = "purity-path"\n'
            'source = "time.*"\n'
            'sink = "pkg.mod.fn"\n'
            'function = "pkg.*"\n'
            'justification = "because"\n'
            "[[suppression]]\n"
            'rule = "purity-path"\n'
            'source = "builtins.id"\n'
            'sink = "*"\n'
            'justification = "also"\n'
        )
        assert _parse_toml_subset(text, "x.toml") == (
            tomllib.loads(text)["suppression"]
        )

    def test_fallback_parser_rejects_unknown_syntax(self):
        with pytest.raises(UsageError, match="unsupported baseline syntax"):
            _parse_toml_subset("[[suppression]]\nrule = [1, 2]\n", "x.toml")

    def test_shipped_baseline_parses_and_is_empty(self):
        shipped = Path(__file__).parents[2] / "purity-baseline.toml"
        assert load_baseline(shipped) == []


class TestSarifOutput:
    def test_structural_shape(self):
        log = to_sarif(_demo_report())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-purity"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"purity-path", "unused-suppression"}
        result = run["results"][0]
        assert result["ruleId"] == "purity-path"
        assert result["level"] == "error"
        flow = result["codeFlows"][0]["threadFlows"][0]["locations"]
        names = [step["location"]["message"]["text"] for step in flow]
        # Source effect first, sink last, confluence in the middle.
        assert names[0] == "purity_demo.metrics.stamp"
        assert names[-1] == "purity_demo.journal.Journal.write"
        assert "purity_demo.pipeline.flush" in names

    def test_unused_suppression_becomes_warning(self):
        report = _demo_report(
            baseline=[TestBaseline.MATCHING, TestBaseline.STALE]
        )
        results = to_sarif(report)["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["unused-suppression"]
        assert results[0]["level"] == "warning"

    def test_validates_against_schema_subset(self):
        jsonschema = pytest.importorskip(
            "jsonschema", reason="jsonschema not installed"
        )
        schema = json.loads(
            (
                Path(__file__).parent / "fixtures" / "sarif_schema_subset.json"
            ).read_text(encoding="utf-8")
        )
        for report in (
            _demo_report(),
            _demo_report(baseline=[TestBaseline.STALE]),
            analyze_tree(),
        ):
            jsonschema.validate(to_sarif(report), schema)


class TestCliContract:
    """Exit codes: 0 clean / 1 findings / 2 usage error."""

    def test_purity_clean_tree_exits_zero(self, capsys):
        assert main(["purity"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_purity_json_format(self, capsys):
        assert main(["purity", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-purity"
        assert payload["clean"] is True

    def test_purity_sarif_to_file(self, tmp_path, capsys):
        target = tmp_path / "purity.sarif"
        assert main(["purity", "--format", "sarif", "--output", str(target)]) == 0
        assert "wrote sarif report" in capsys.readouterr().out
        assert json.loads(target.read_text(encoding="utf-8"))["version"] == "2.1.0"

    def test_missing_baseline_is_exit_two(self, tmp_path, capsys):
        absent = tmp_path / "absent.toml"
        assert main(["purity", "--baseline", str(absent)]) == 2
        assert "usage error:" in capsys.readouterr().err

    def test_unused_baseline_entry_is_exit_one(self, tmp_path, capsys):
        stale = tmp_path / "stale.toml"
        stale.write_text(
            "[[suppression]]\n"
            'rule = "purity-path"\n'
            'source = "uuid.*"\n'
            'sink = "*"\n'
            'justification = "stale fixture entry"\n',
            encoding="utf-8",
        )
        assert main(["purity", "--baseline", str(stale)]) == 1
        assert "unused-suppression" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []

    def test_lint_deep_runs_purity(self, capsys):
        assert main(["lint", "--deep", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["purity"]["clean"] is True

    def test_lint_findings_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x):\n    return x\n", encoding="utf-8")
        assert main(["lint", str(dirty)]) == 1
        assert "finding(s)" in capsys.readouterr().err
