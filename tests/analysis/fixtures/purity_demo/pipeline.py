"""Connects source to sink: the path the analyzer must report."""

from __future__ import annotations

from purity_demo.clocked import now
from purity_demo.journal import Journal
from purity_demo.metrics import stamp


def flush(journal: Journal) -> None:
    journal.write(f"t={stamp()}")


def flush_via_facade(journal: Journal) -> None:
    journal.write(f"t={now()}")
