"""The fixture's declared facade: an injectable clock default."""

from __future__ import annotations

import time
from typing import Callable, Optional


def now(clock: Optional[Callable[[], float]] = None) -> float:
    return (clock if clock is not None else time.time)()
