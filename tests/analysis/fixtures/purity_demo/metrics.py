"""The fixture's nondeterminism source: a raw wall-clock read."""

from __future__ import annotations

import time


def stamp() -> float:
    return time.time()
