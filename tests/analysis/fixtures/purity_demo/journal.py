"""The fixture's determinism sink: an append-only journal."""

from __future__ import annotations

from typing import List


class Journal:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def write(self, line: str) -> None:
        self.lines.append(line)
