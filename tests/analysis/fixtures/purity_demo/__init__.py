"""Seeded fixture tree for the purity analyzer tests.

A miniature replica of the repo's shape: a journal sink
(:mod:`purity_demo.journal`), a wall-clock source
(:mod:`purity_demo.metrics`), a pipeline connecting them
(:mod:`purity_demo.pipeline`), and a declared clock facade
(:mod:`purity_demo.clocked`).  ``tests/analysis/test_purity.py``
asserts the ``time.time`` -> ``Journal.write`` path is reported with
the exact source, sink, and call chain — and that routing through the
facade silences it.
"""
