"""Negative fixture: carries the __future__ annotations import."""

from __future__ import annotations


def annotated(value: int) -> int:
    return value + 1
