"""Positive fixture: two-member ForwardPolicy chain, no else, one
member missing."""

from __future__ import annotations

from repro.cdn.policy import ForwardPolicy


def describe(policy: ForwardPolicy) -> str:
    result = "unset"
    if policy is ForwardPolicy.LAZINESS:
        result = "lazy"
    elif policy is ForwardPolicy.DELETION:
        result = "deleting"
    return result
