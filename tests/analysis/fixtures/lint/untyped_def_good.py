"""Negative fixture: fully annotated defs (self/cls are exempt)."""

from __future__ import annotations


class Holder:
    def __init__(self, value: int) -> None:
        self.value = value

    def doubled(self) -> int:
        return self.value * 2

    @classmethod
    def zero(cls) -> "Holder":
        return cls(0)


def variadic(*values: int, **named: int) -> int:
    return sum(values) + sum(named.values())
