"""Negative fixture: statuses compared via StatusCode members; and
integers outside the status set stay out of scope."""

from __future__ import annotations

from repro.http.status import StatusCode


def is_partial(status: StatusCode) -> bool:
    return status is StatusCode.PARTIAL_CONTENT


def is_answer(value: int) -> bool:
    return value == 42
