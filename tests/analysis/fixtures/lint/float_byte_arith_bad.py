"""Positive fixture: true division landing in byte-count bindings."""

from __future__ import annotations


def split_budget(total_bytes: int, shares: int) -> float:
    share_bytes = total_bytes / shares
    return share_bytes


def drain(window_traffic: float) -> float:
    window_traffic /= 2
    return window_traffic
