"""Positive fixture: HTTP status compared against a bare integer."""

from __future__ import annotations


def is_partial(status: int) -> bool:
    return status == 206
