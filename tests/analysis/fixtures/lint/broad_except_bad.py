"""Positive fixture: bare and broad exception handlers."""

from __future__ import annotations


def swallow_all(risky: object) -> bool:
    try:
        return bool(risky)
    except:  # noqa: E722
        return False


def swallow_broad(risky: object) -> bool:
    try:
        return bool(risky)
    except Exception:
        return False
