"""Negative fixture: handlers name what they can recover from."""

from __future__ import annotations


def tolerate_missing(mapping: dict, key: str) -> object:
    try:
        return mapping[key]
    except (KeyError, TypeError):
        return None
