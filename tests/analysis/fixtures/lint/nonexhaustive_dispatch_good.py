"""Negative fixtures: every member covered, or an else catches the rest."""

from __future__ import annotations

from repro.cdn.policy import ForwardPolicy


def exhaustive(policy: ForwardPolicy) -> str:
    if policy is ForwardPolicy.LAZINESS:
        return "lazy"
    elif policy is ForwardPolicy.DELETION:
        return "deleting"
    elif policy is ForwardPolicy.EXPANSION:
        return "expanding"
    return "unreachable"


def defaulted(policy: ForwardPolicy) -> str:
    if policy is ForwardPolicy.LAZINESS:
        return "lazy"
    elif policy is ForwardPolicy.DELETION:
        return "deleting"
    else:
        return "other"
