"""Negative fixture: floor division / non-byte names are fine."""

from __future__ import annotations


def split_budget(total_bytes: int, shares: int) -> int:
    share_bytes = total_bytes // shares
    return share_bytes


def ratio(total_bytes: int, baseline: int) -> float:
    amplification = total_bytes / baseline
    return amplification
