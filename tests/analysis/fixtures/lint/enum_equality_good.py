"""Negative fixture: policy enum compared by identity."""

from __future__ import annotations

from repro.cdn.policy import ForwardPolicy


def is_deletion(policy: ForwardPolicy) -> bool:
    return policy is ForwardPolicy.DELETION


def not_laziness(policy: ForwardPolicy) -> bool:
    return policy is not ForwardPolicy.LAZINESS
