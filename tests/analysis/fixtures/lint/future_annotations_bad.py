"""Positive fixture: missing the __future__ annotations import."""


def annotated(value: int) -> int:
    return value + 1
