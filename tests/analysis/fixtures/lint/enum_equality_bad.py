"""Positive fixture: policy enum compared with == / !=."""

from __future__ import annotations

from repro.cdn.policy import ForwardPolicy


def is_deletion(policy: ForwardPolicy) -> bool:
    return policy == ForwardPolicy.DELETION


def not_laziness(policy: ForwardPolicy) -> bool:
    return policy != ForwardPolicy.LAZINESS
