"""Positive fixture (wire-scoped path): recomputing wire sizes by hand."""

from __future__ import annotations


def serialized_length(message: object) -> int:
    return len(message.serialize())


def hand_mixed(message: object) -> int:
    total = message.header_block_size() + len(message.body)
    return total
