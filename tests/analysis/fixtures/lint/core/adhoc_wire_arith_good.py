"""Negative fixture (wire-scoped path): wire_size() does the counting."""

from __future__ import annotations


def wire_length(message: object) -> int:
    return message.wire_size()
