"""Positive fixture: unannotated parameter and missing return type."""

from __future__ import annotations


def missing_param(value) -> int:
    return value + 1


def missing_return(value: int):
    return value + 1
