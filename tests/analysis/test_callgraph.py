"""Tests for the whole-program call-graph builder.

Three layers: resolution mechanics against the ``purity_demo`` fixture
tree and small synthetic packages (imports, annotations, relative
imports, registry dispatch), and structural spot checks against the
live ``src/repro`` tree — the edges the purity analyzer's verdicts
hang off must actually exist.
"""

from pathlib import Path

import pytest

from repro.analysis.callgraph import (
    CallGraph,
    CallGraphError,
    build_callgraph,
)

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "purity_demo"


@pytest.fixture(scope="module")
def demo() -> CallGraph:
    return build_callgraph(root=FIXTURE_ROOT, package="purity_demo")


@pytest.fixture(scope="module")
def repo() -> CallGraph:
    return build_callgraph(
        dispatch={
            "repro.runner.experiments.execute_cell": [
                "@registered:repro.runner.experiments"
            ]
        }
    )


def _callees(graph: CallGraph, qualname: str) -> set:
    return {site.callee for site in graph.node(qualname).calls}


class TestFixtureResolution:
    def test_all_functions_collected(self, demo: CallGraph) -> None:
        assert "purity_demo.metrics.stamp" in demo
        assert "purity_demo.journal.Journal.write" in demo
        assert "purity_demo.pipeline.flush" in demo
        assert "purity_demo.clocked.now" in demo

    def test_module_level_call_resolution(self, demo: CallGraph) -> None:
        assert "time.time" in _callees(demo, "purity_demo.metrics.stamp")

    def test_annotation_driven_method_resolution(self, demo: CallGraph) -> None:
        # flush(journal: Journal) -> journal.write resolves via the
        # parameter annotation.
        callees = _callees(demo, "purity_demo.pipeline.flush")
        assert "purity_demo.journal.Journal.write" in callees
        assert "purity_demo.metrics.stamp" in callees

    def test_conditional_expression_resolves_both_branches(
        self, demo: CallGraph
    ) -> None:
        # (clock if clock is not None else time.time)() — the injected
        # clock idiom — must surface the wall-clock branch.
        assert "time.time" in _callees(demo, "purity_demo.clocked.now")

    def test_callers_of(self, demo: CallGraph) -> None:
        callers = demo.callers_of("purity_demo.journal.Journal.write")
        assert "purity_demo.pipeline.flush" in callers
        assert "purity_demo.pipeline.flush_via_facade" in callers

    def test_rel_paths_are_posix_relative(self, demo: CallGraph) -> None:
        node = demo.node("purity_demo.pipeline.flush")
        assert node.rel_path == "pipeline.py"
        assert node.line > 0


class TestSyntheticTrees:
    def test_relative_import_resolution(self, tmp_path: Path) -> None:
        package = tmp_path / "pkg"
        (package / "sub").mkdir(parents=True)
        (package / "__init__.py").write_text("", encoding="utf-8")
        (package / "helper.py").write_text(
            "def helper_fn():\n    return 1\n", encoding="utf-8"
        )
        (package / "sub" / "__init__.py").write_text("", encoding="utf-8")
        (package / "sub" / "user.py").write_text(
            "from ..helper import helper_fn\n\n"
            "def use():\n    return helper_fn()\n",
            encoding="utf-8",
        )
        graph = build_callgraph(root=package, package="pkg")
        assert "pkg.helper.helper_fn" in _callees(graph, "pkg.sub.user.use")

    def test_instance_attribute_type_harvesting(self, tmp_path: Path) -> None:
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "__init__.py").write_text("", encoding="utf-8")
        (package / "mod.py").write_text(
            "class Engine:\n"
            "    def start(self):\n"
            "        return 1\n"
            "\n"
            "class Car:\n"
            "    def __init__(self):\n"
            "        self.engine = Engine()\n"
            "    def drive(self):\n"
            "        return self.engine.start()\n",
            encoding="utf-8",
        )
        graph = build_callgraph(root=package, package="pkg")
        assert "pkg.mod.Engine.start" in _callees(graph, "pkg.mod.Car.drive")

    def test_registry_dispatch_expansion(self, tmp_path: Path) -> None:
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "__init__.py").write_text("", encoding="utf-8")
        (package / "reg.py").write_text(
            "_REGISTRY = {}\n"
            "\n"
            "def register(name, fn):\n"
            "    _REGISTRY[name] = fn\n"
            "\n"
            "def handler_a():\n    return 'a'\n"
            "\n"
            "def dispatch(name):\n"
            "    return _REGISTRY[name]()\n"
            "\n"
            "register('a', handler_a)\n",
            encoding="utf-8",
        )
        graph = build_callgraph(
            root=package,
            package="pkg",
            dispatch={"pkg.reg.dispatch": ["@registered:pkg.reg"]},
        )
        assert "pkg.reg.handler_a" in _callees(graph, "pkg.reg.dispatch")

    def test_missing_root_rejected(self, tmp_path: Path) -> None:
        with pytest.raises(CallGraphError):
            build_callgraph(root=tmp_path / "nope")


class TestLiveRepoEdges:
    """The determinism contracts hang off these edges existing."""

    def test_scale(self, repo: CallGraph) -> None:
        assert repo.module_count > 80
        assert len(repo) > 700
        assert repo.edge_count > 2000

    def test_checkpoint_write_edge(self, repo: CallGraph) -> None:
        # GridRunner._record -> RunCheckpoint.record via the
        # Optional["RunCheckpoint"] parameter annotation.
        assert "repro.runner.checkpoint.RunCheckpoint.record" in _callees(
            repo, "repro.runner.executor.GridRunner._record"
        )

    def test_injected_clock_read(self, repo: CallGraph) -> None:
        assert "time.time" in _callees(repo, "repro.obs.runlog._new_record")

    def test_registry_dispatch_reaches_cells(self, repo: CallGraph) -> None:
        callees = _callees(repo, "repro.runner.experiments.execute_cell")
        assert "repro.runner.experiments._run_sbr_cell" in callees
        assert "repro.runner.experiments._run_flood_cell" in callees

    def test_seeded_random_distinguished(self, repo: CallGraph) -> None:
        # RangeCorpusGenerator holds a random.Random(seed); its calls
        # resolve to instance methods, not the module-level RNG.
        node = repo.node(
            "repro.http.grammar.RangeCorpusGenerator.single_range_cases"
        )
        randoms = {
            site.callee
            for site in node.calls
            if site.callee.startswith("random.")
        }
        assert randoms
        assert all(r.startswith("random.Random.") for r in randoms)
