"""Differential harness: fast path == wire-level simulation.

The closed-form engines in :mod:`repro.core.vectorized` claim *bit
identity* with the simulation wherever they answer at all — refusing
(:class:`~repro.core.vectorized.ExactModelError`) is their only escape
hatch.  This suite pins that claim cell by cell:

* every Table IV cell (13 vendors x the paper's three sizes),
* every Table V cascade (all 11 vulnerable FCDN x BCDN combinations),
* hypothesis-driven random (vendor, size) and (cascade, overlap) cells:
  ``fast == sim`` wherever the engine answers, and ``sim <= bound``
  everywhere else (the static-bounds soundness contract covers the
  refused cells),
* the planner layer: grid partitioning, sampled cross-validation, and
  the loud failure on a fabricated mismatch.

Equality here is dataclass equality over every recorded field — per
segment connection/exchange counts and request/sent/delivered byte
totals — not just the headline amplification factor.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import obr_bound, sbr_bound, static_max_n
from repro.cdn.vendors import all_vendor_names
from repro.core.obr import ObrAttack, vulnerable_combinations
from repro.core.sbr import SbrAttack
from repro.core.ccfc import CcfcAttack
from repro.core.vectorized import (
    CcfcFastEngine,
    ExactModelError,
    ObrFastEngine,
    SbrFastEngine,
    regime_interval,
)

MB = 1 << 20
KB = 1 << 10

TABLE4_SIZES = (1 * MB, 10 * MB, 25 * MB)


@pytest.fixture(scope="module")
def sbr_engine():
    return SbrFastEngine()


@pytest.fixture(scope="module")
def obr_engine():
    return ObrFastEngine()


class TestTable4BitIdentity:
    """All 13 Table IV vendors, all three paper sizes."""

    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_vendor_matches_simulation_exactly(self, vendor, sbr_engine):
        for size in TABLE4_SIZES:
            fast = sbr_engine.measure(vendor, size)
            simulated = SbrAttack(vendor, resource_size=size).run()
            assert fast == simulated, (
                f"{vendor} at {size}: fast path diverged from simulation"
            )

    def test_calibration_is_amortized(self, sbr_engine):
        """Re-asking every Table IV cell runs zero additional sims."""
        before = sbr_engine.calibration_runs
        for vendor in all_vendor_names():
            for size in TABLE4_SIZES:
                sbr_engine.measure(vendor, size)
        assert sbr_engine.calibration_runs == before


class TestTable5BitIdentity:
    """All 11 Table V cascades, at the searched maximum n."""

    @pytest.mark.parametrize("fcdn,bcdn", vulnerable_combinations())
    def test_cascade_matches_simulation_exactly(self, fcdn, bcdn, obr_engine):
        attack = ObrAttack(fcdn, bcdn)
        max_n = attack.find_max_n()
        # The fast path resolves n through the static search; the two
        # searches agree exactly (pinned by test_cross_check.py too).
        assert static_max_n(fcdn, bcdn) == max_n
        fast = obr_engine.measure(fcdn, bcdn)
        simulated = attack.run(overlap_count=max_n)
        assert fast == simulated, (
            f"{fcdn}->{bcdn}: fast path diverged from simulation at n={max_n}"
        )


class TestCcfcBitIdentity:
    """All 13 vendors at the paper sizes — the mirror is exact by
    construction (no calibration), so the full result dataclass must
    match, not just the factor."""

    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_vendor_matches_simulation_exactly(self, vendor):
        engine = CcfcFastEngine()
        for size in (1 * MB, 10 * MB):
            fast = engine.measure(vendor, size)
            simulated = CcfcAttack(vendor, resource_size=size).run()
            assert fast == simulated, (
                f"{vendor} at {size}: fast path diverged from simulation"
            )
        assert engine.calibration_runs == 0

    def test_unknown_vendor_rejected(self):
        with pytest.raises(ExactModelError):
            CcfcFastEngine().measure("nosuch", 1 * MB)

    def test_degenerate_size_rejected(self):
        with pytest.raises(ExactModelError):
            CcfcFastEngine().measure("cloudflare", 0)


class TestRandomCells:
    """Property check: exact where claimed, bounded where refused."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        vendor=st.sampled_from(all_vendor_names()),
        size=st.integers(min_value=64 * KB, max_value=32 * MB),
    )
    def test_sbr_random_sizes(self, vendor, size, sbr_engine):
        simulated = SbrAttack(vendor, resource_size=size).run()
        try:
            fast = sbr_engine.measure(vendor, size)
        except ExactModelError:
            # Refused: the soundness fallback still holds.
            assert simulated.amplification <= sbr_bound(vendor, size).factor
            return
        assert fast == simulated

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        combo=st.sampled_from(vulnerable_combinations()),
        overlap_count=st.integers(min_value=2, max_value=64),
    )
    def test_obr_random_overlap_counts(self, combo, overlap_count, obr_engine):
        fcdn, bcdn = combo
        simulated = ObrAttack(fcdn, bcdn).run(overlap_count=overlap_count)
        try:
            fast = obr_engine.measure(fcdn, bcdn, overlap_count=overlap_count)
        except ExactModelError:
            bound = obr_bound(fcdn, bcdn, overlap_count=overlap_count)
            assert simulated.amplification <= bound.factor
            return
        assert fast == simulated

    @settings(max_examples=30, deadline=None)
    @given(size=st.integers(min_value=2, max_value=64 * MB))
    def test_regime_interval_contains_size(self, size):
        lo, hi = regime_interval(size)
        assert lo <= size <= hi
        # Digit signatures are constant across the regime, by construction.
        assert len(str(lo)) == len(str(hi)) == len(str(size))
        assert len(str(lo - 1)) == len(str(hi - 1)) == len(str(size - 1))


class TestSbrEngineRefusals:
    def test_unknown_vendor_rejected(self, sbr_engine):
        with pytest.raises(ExactModelError):
            sbr_engine.measure("nonexistent-cdn", 1 * MB)

    def test_degenerate_size_rejected(self, sbr_engine):
        with pytest.raises(ExactModelError):
            sbr_engine.measure("akamai", 1)

    def test_refusal_leaves_engine_usable(self, sbr_engine):
        with pytest.raises(ExactModelError):
            sbr_engine.measure("akamai", 0)
        assert sbr_engine.measure("akamai", 1 * MB) == SbrAttack(
            "akamai", resource_size=1 * MB
        ).run()


class TestPlannerLayer:
    def _quick_grid(self):
        from repro.runner.runall import QUICK_TABLE5_COMBOS, build_run_all_grid

        return build_run_all_grid(
            fig6_sizes=(1 * MB, 2 * MB, 3 * MB),
            table4_sizes=(1 * MB,),
            table5_combos=QUICK_TABLE5_COMBOS,
            fig7_ms=(2, 12, 15),
        )

    def test_plan_partitions_quick_grid(self):
        from repro.runner.fastpath import FastPathPlanner

        grid = self._quick_grid()
        plan = FastPathPlanner().plan(grid)
        assert plan.stats.answered + len(plan.residual) == len(grid)
        assert plan.stats.ineligible == 3  # the flood cells
        assert plan.stats.refused == 0
        assert plan.stats.hit_rate > 0.9
        # Fast outcomes carry original grid indices and flood cells all
        # fall through to the residual.
        for index, outcome in plan.outcomes.items():
            assert grid.cells[index] == outcome.cell
            assert outcome.cell.experiment in ("sbr", "obr", "ccfc")
        assert {cell.experiment for cell in plan.residual} == {"flood"}

    def test_fast_answers_equal_cell_functions(self):
        from repro.runner.experiments import execute_cell
        from repro.runner.fastpath import FastPathPlanner
        from repro.runner.memo import clear_all_memos

        clear_all_memos()
        plan = FastPathPlanner().plan(self._quick_grid())
        for outcome in plan.outcomes.values():
            assert outcome.value == execute_cell(outcome.cell), (
                f"planner answer diverges on {outcome.cell.label}"
            )

    def test_validation_passes_on_honest_answers(self):
        from repro.runner.fastpath import FastPathPlanner

        planner = FastPathPlanner(validate_denominator=1)  # sample everything
        plan = planner.plan(self._quick_grid())
        validated = planner.validate()
        assert validated == plan.stats.answered - 2  # OBR cells are not sampled
        assert planner.stats.validated == validated

    def test_validation_raises_on_fabricated_mismatch(self):
        from repro.runner.fastpath import FastPathMismatchError, FastPathPlanner

        planner = FastPathPlanner(validate_denominator=1)
        planner.plan(self._quick_grid())
        assert planner._samples
        cell, _ = planner._samples[-1]
        planner._samples[-1] = (cell, "corrupted-value")
        with pytest.raises(FastPathMismatchError):
            planner.validate()

    def test_sampling_is_deterministic(self):
        from repro.runner.fastpath import FastPathPlanner

        first = FastPathPlanner()
        second = FastPathPlanner()
        first.plan(self._quick_grid())
        second.plan(self._quick_grid())
        assert [cell for cell, _ in first._samples] == [
            cell for cell, _ in second._samples
        ]
