"""Soundness cross-check: simulated factors never exceed static bounds.

This is the load-bearing contract of :mod:`repro.analysis.bounds` — the
analyzer's numbers are *upper* bounds on anything the simulation stack
can report.  Checked exhaustively over the quick run-all grid (every
vendor at the Fig 6 quick sizes, the quick Table V cascades) and
property-tested over random sizes and overlap counts.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import obr_bound, sbr_bound, static_max_n
from repro.cdn.vendors import all_vendor_names
from repro.core.obr import ObrAttack
from repro.core.sbr import SbrAttack
from repro.runner.runall import QUICK_TABLE5_COMBOS

MB = 1 << 20
KB = 1 << 10

#: The quick run-all grid's SBR axis (Fig 6 quick sizes, which include
#: the Table IV quick size).
QUICK_SIZES = (1 * MB, 2 * MB, 3 * MB)


class TestSbrGridNeverExceedsBound:
    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_quick_grid_cells(self, vendor):
        for size in QUICK_SIZES:
            simulated = SbrAttack(vendor, resource_size=size).run()
            bound = sbr_bound(vendor, size)
            assert simulated.amplification <= bound.factor, (
                f"{vendor} at {size}: simulated {simulated.amplification:.1f} "
                f"exceeds static bound {bound.factor:.1f}"
            )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        vendor=st.sampled_from(all_vendor_names()),
        size=st.integers(min_value=64 * KB, max_value=4 * MB),
    )
    def test_random_sizes(self, vendor, size):
        simulated = SbrAttack(vendor, resource_size=size).run()
        bound = sbr_bound(vendor, size)
        assert simulated.amplification <= bound.factor


class TestObrGridNeverExceedsBound:
    @pytest.mark.parametrize("fcdn,bcdn", QUICK_TABLE5_COMBOS)
    def test_quick_grid_cells(self, fcdn, bcdn):
        attack = ObrAttack(fcdn, bcdn)
        simulated_n = attack.find_max_n()
        # The static search replays the same rejection points, so the
        # two agree exactly — not just within a factor.
        assert simulated_n == static_max_n(fcdn, bcdn)
        result = attack.run(overlap_count=simulated_n)
        bound = obr_bound(fcdn, bcdn)
        assert result.amplification <= bound.factor, (
            f"{fcdn}->{bcdn}: simulated {result.amplification:.1f} "
            f"exceeds static bound {bound.factor:.1f}"
        )

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(overlap_count=st.integers(min_value=2, max_value=64))
    def test_random_overlap_counts(self, overlap_count):
        result = ObrAttack("cloudflare", "akamai").run(overlap_count=overlap_count)
        bound = obr_bound("cloudflare", "akamai", overlap_count=overlap_count)
        assert result.amplification <= bound.factor
