"""The strict-typing gate: ``mypy --strict`` over ``src/repro``.

Runs only where mypy is installed (CI installs it; the library itself
has no third-party dependencies).  Locally the AST linter's
``untyped-def`` rule covers the largest strict component.
"""

import subprocess
import sys
from pathlib import Path

import pytest

mypy = pytest.importorskip("mypy", reason="mypy not installed; CI runs this gate")

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_mypy_strict_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
