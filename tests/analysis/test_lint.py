"""The invariant linter: one unit per rule, plus the repo-wide guard."""

import textwrap

from repro.analysis.lint import lint_repo, lint_source

PRELUDE = "from __future__ import annotations\n"


def findings_for(snippet, rel_path="core/example.py"):
    return lint_source(PRELUDE + textwrap.dedent(snippet), rel_path)


def rules_for(snippet, rel_path="core/example.py"):
    return [f.rule for f in findings_for(snippet, rel_path)]


class TestFutureAnnotations:
    def test_missing_import_is_flagged(self):
        findings = lint_source("x = 1\n", "core/example.py")
        assert [f.rule for f in findings] == ["future-annotations"]

    def test_present_import_passes(self):
        assert findings_for("x = 1\n") == []


class TestUntypedDef:
    def test_unannotated_parameter(self):
        assert "untyped-def" in rules_for("def f(a) -> None: ...\n")

    def test_missing_return(self):
        assert "untyped-def" in rules_for("def f(a: int): ...\n")

    def test_init_needs_no_return_annotation(self):
        snippet = """
        class C:
            def __init__(self, a: int):
                self.a = a
        """
        assert rules_for(snippet) == []

    def test_star_args_need_annotations(self):
        assert "untyped-def" in rules_for("def f(*args, **kw) -> None: ...\n")

    def test_fully_annotated_passes(self):
        snippet = """
        def f(a: int, *rest: str, flag: bool = False, **kw: object) -> int:
            return a
        """
        assert rules_for(snippet) == []


class TestEnumEquality:
    def test_eq_against_member_is_flagged(self):
        snippet = """
        def f(p: object) -> bool:
            return p == ForwardPolicy.DELETION
        """
        assert "enum-equality" in rules_for(snippet)

    def test_identity_test_passes(self):
        snippet = """
        def f(p: object) -> bool:
            return p is ForwardPolicy.DELETION
        """
        assert rules_for(snippet) == []

    def test_unrelated_attribute_eq_passes(self):
        snippet = """
        def f(a: object, b: object) -> bool:
            return a.value == b.value
        """
        assert rules_for(snippet) == []


class TestNonexhaustiveDispatch:
    def test_two_member_chain_without_else_is_flagged(self):
        snippet = """
        def f(p: object) -> str:
            if p is ForwardPolicy.LAZINESS:
                return "l"
            elif p is ForwardPolicy.DELETION:
                return "d"
            return "?"
        """
        findings = findings_for(snippet)
        assert [f.rule for f in findings] == ["nonexhaustive-dispatch"]
        assert "EXPANSION" in findings[0].message

    def test_exhaustive_chain_passes(self):
        snippet = """
        def f(p: object) -> str:
            if p is ForwardPolicy.LAZINESS:
                return "l"
            elif p is ForwardPolicy.DELETION:
                return "d"
            elif p is ForwardPolicy.EXPANSION:
                return "e"
            return "?"
        """
        assert rules_for(snippet) == []

    def test_chain_with_else_passes(self):
        snippet = """
        def f(p: object) -> str:
            if p is ForwardPolicy.LAZINESS:
                return "l"
            elif p is ForwardPolicy.DELETION:
                return "d"
            else:
                return "other"
        """
        assert rules_for(snippet) == []

    def test_single_test_passes(self):
        snippet = """
        def f(p: object) -> str:
            if p is ForwardPolicy.LAZINESS:
                return "l"
            return "?"
        """
        assert rules_for(snippet) == []


class TestBareStatusLiteral:
    def test_eq_against_200_is_flagged(self):
        snippet = """
        def f(status: int) -> bool:
            return status == 200
        """
        assert "bare-status-literal" in rules_for(snippet)

    def test_status_module_is_exempt(self):
        snippet = """
        def f(status: int) -> bool:
            return status == 200
        """
        assert rules_for(snippet, rel_path="http/status.py") == []

    def test_inequality_comparisons_pass(self):
        snippet = """
        def f(status: int) -> bool:
            return status >= 200
        """
        assert rules_for(snippet) == []

    def test_non_status_integers_pass(self):
        snippet = """
        def f(n: int) -> bool:
            return n == 1460
        """
        assert rules_for(snippet) == []


class TestAdhocWireArith:
    def test_len_serialize_in_core_is_flagged(self):
        snippet = """
        def f(request: object) -> int:
            return len(request.serialize())
        """
        assert "adhoc-wire-arith" in rules_for(snippet, "netsim/example.py")

    def test_len_serialize_outside_scope_passes(self):
        snippet = """
        def f(request: object) -> int:
            return len(request.serialize())
        """
        assert rules_for(snippet, rel_path="reporting/example.py") == []

    def test_len_body_plus_header_size_is_flagged(self):
        snippet = """
        def f(response: object) -> int:
            return response.header_block_size() + len(response.body)
        """
        assert "adhoc-wire-arith" in rules_for(snippet, "cdn/example.py")

    def test_wire_size_call_alone_passes(self):
        snippet = """
        def f(response: object) -> int:
            return response.wire_size()
        """
        assert rules_for(snippet, rel_path="cdn/example.py") == []


class TestFloatByteArith:
    def test_true_division_into_bytes_name_is_flagged(self):
        snippet = """
        def f(total: int) -> None:
            victim_bytes = total / 2
        """
        assert "float-byte-arith" in rules_for(snippet)

    def test_augmented_division_is_flagged(self):
        snippet = """
        def f(response_bytes: int) -> None:
            response_bytes /= 2
        """
        assert "float-byte-arith" in rules_for(snippet)

    def test_floor_division_passes(self):
        snippet = """
        def f(total: int) -> None:
            victim_bytes = total // 2
        """
        assert rules_for(snippet) == []

    def test_division_into_ratio_name_passes(self):
        snippet = """
        def f(a: int, b: int) -> None:
            factor = a / b
        """
        assert rules_for(snippet) == []


class TestBroadExcept:
    def test_bare_except_is_flagged(self):
        snippet = """
        def f() -> None:
            try:
                pass
            except:
                pass
        """
        assert "broad-except" in rules_for(snippet)

    def test_except_exception_is_flagged(self):
        snippet = """
        def f() -> None:
            try:
                pass
            except Exception:
                pass
        """
        assert "broad-except" in rules_for(snippet)

    def test_except_base_exception_is_flagged(self):
        snippet = """
        def f() -> None:
            try:
                pass
            except BaseException as error:
                raise error
        """
        assert "broad-except" in rules_for(snippet)

    def test_exception_inside_a_tuple_is_flagged(self):
        snippet = """
        def f() -> None:
            try:
                pass
            except (ValueError, Exception):
                pass
        """
        assert "broad-except" in rules_for(snippet)

    def test_specific_handlers_pass(self):
        snippet = """
        def f() -> None:
            try:
                pass
            except (ValueError, KeyError):
                pass
            except OSError:
                pass
        """
        assert rules_for(snippet) == []

    def test_runner_executor_is_exempt(self):
        snippet = """
        def f() -> None:
            try:
                pass
            except Exception:
                pass
        """
        assert rules_for(snippet, rel_path="runner/executor.py") == []
        assert "broad-except" in rules_for(snippet, rel_path="runner/other.py")

    def test_serve_fault_boundaries_are_exempt(self):
        snippet = """
        def f() -> None:
            try:
                pass
            except Exception:
                pass
        """
        assert rules_for(snippet, rel_path="serve/app.py") == []
        assert rules_for(snippet, rel_path="serve/server.py") == []
        assert "broad-except" in rules_for(snippet, rel_path="serve/other.py")


class TestRepoIsClean:
    def test_lint_repo_finds_nothing(self):
        findings = lint_repo()
        assert findings == [], "\n".join(str(f) for f in findings)
