"""Unit tests for the closed-form amplification bounds."""

import pytest

from repro.analysis.bounds import (
    ObrBound,
    SbrBound,
    obr_bound,
    sbr_bound,
    static_max_n,
)
from repro.cdn.vendors import all_vendor_names
from repro.core.obr import vulnerable_combinations
from repro.errors import ConfigurationError
from repro.netsim.overhead import TcpOverheadModel

MB = 1 << 20


class TestSbrBound:
    def test_every_vendor_has_a_positive_bound(self):
        for vendor in all_vendor_names():
            bound = sbr_bound(vendor, 10 * MB)
            assert isinstance(bound, SbrBound)
            assert bound.origin_bytes_upper > 0
            assert bound.client_bytes_lower > 0
            assert bound.factor > 1.0, vendor

    def test_numerator_dominated_by_resource_size(self):
        bound = sbr_bound("akamai", 10 * MB)
        assert bound.origin_bytes_upper >= 10 * MB
        # One fetch plus the 1 KB header allowance — nothing else.
        assert bound.origin_bytes_upper <= 10 * MB + 2048

    def test_factor_scales_with_size(self):
        small = sbr_bound("akamai", 1 * MB)
        large = sbr_bound("akamai", 10 * MB)
        assert large.factor > small.factor

    def test_azure_bound_plateaus_past_the_8mb_cut(self):
        # Azure cuts delivery at 8 MB (+slop) and adds one window fetch,
        # so the numerator stops tracking the resource size.
        at_10 = sbr_bound("azure", 10 * MB)
        at_25 = sbr_bound("azure", 25 * MB)
        assert at_25.origin_bytes_upper <= at_10.origin_bytes_upper + 8 * MB

    def test_cloudfront_bound_plateaus_at_the_window_cap(self):
        at_10 = sbr_bound("cloudfront", 10 * MB)
        at_25 = sbr_bound("cloudfront", 25 * MB)
        assert at_25.origin_bytes_upper == at_10.origin_bytes_upper

    def test_keycdn_two_fetches_and_two_responses(self):
        bound = sbr_bound("keycdn", 10 * MB)
        assert bound.origin_fetches == 2
        assert bound.client_responses == 2

    def test_overhead_model_inflates_the_numerator(self):
        plain = sbr_bound("akamai", 1 * MB)
        framed = sbr_bound("akamai", 1 * MB, overhead=TcpOverheadModel())
        assert framed.origin_bytes_upper > plain.origin_bytes_upper


class TestStaticMaxN:
    def test_rejects_self_cascade(self):
        with pytest.raises(ConfigurationError):
            static_max_n("akamai", "akamai")

    def test_every_table5_cell_admits_many_overlaps(self):
        for fcdn, bcdn in vulnerable_combinations():
            n = static_max_n(fcdn, bcdn)
            assert n >= 2, (fcdn, bcdn)

    def test_azure_backend_caps_at_its_part_limit(self):
        assert static_max_n("cdn77", "azure") == 64

    def test_header_limited_cells_sit_in_the_thousands(self):
        # cdn77's 8 KB single-header-line limit bounds its own requests.
        assert 5000 <= static_max_n("cdn77", "akamai") <= 6000

    def test_non_lazy_frontend_admits_nothing(self):
        # Akamai never forwards overlapping multi-ranges unchanged.
        assert static_max_n("akamai", "cloudflare") == 0


class TestObrBound:
    def test_every_table5_cell_has_a_bound(self):
        for fcdn, bcdn in vulnerable_combinations():
            bound = obr_bound(fcdn, bcdn)
            assert isinstance(bound, ObrBound)
            assert bound.max_n >= 2
            assert bound.factor > 1.0, (fcdn, bcdn)

    def test_victim_bytes_scale_with_n(self):
        bound = obr_bound("cloudflare", "akamai")
        assert bound.victim_bytes_upper >= bound.max_n * bound.resource_size

    def test_explicit_overlap_count_skips_the_search(self):
        bound = obr_bound("cloudflare", "akamai", overlap_count=64)
        assert bound.max_n == 64

    def test_unexploitable_cascade_raises(self):
        with pytest.raises(ConfigurationError):
            obr_bound("akamai", "cloudflare")
