"""The findings report: coverage, ranking, and the zero-traffic pin.

The analyzer's whole claim is that it reproduces Tables I–III/V
membership *before* any traffic is simulated.  Two things are pinned
here: (1) its verdicts agree with the dynamic feasibility survey, and
(2) building the full vendor-matrix report opens no connection and
records no ledger byte.
"""

import json

from repro.analysis import (
    analyze_deployment,
    analyze_vendor_matrix,
    classify_cascade,
    classify_obr_backend,
    classify_sbr,
    render_findings_table,
)
from repro.analysis.report import SEVERITY_ORDER
from repro.cdn.vendors import OBR_BACKENDS, OBR_FRONTENDS, all_vendor_names
from repro.core.deployment import CdnSpec, Deployment
from repro.core.feasibility import survey
from repro.core.obr import vulnerable_combinations
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracer import Tracer, use_tracer
from repro.origin.server import OriginServer

MB = 1 << 20


class TestZeroTraffic:
    def test_vendor_matrix_simulates_nothing(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            report = analyze_vendor_matrix()
        assert report.findings  # the pass did real work...
        span_names = {record.name for record in tracer.finished_spans()}
        assert "net.exchange" not in span_names  # ...without any wire I/O
        assert "cdn.handle" not in span_names
        assert "attack.sbr" not in span_names
        assert "attack.obr" not in span_names

    def test_deployment_analysis_leaves_the_ledger_empty(self):
        origin = OriginServer()
        origin.add_synthetic_resource("/10MB.bin", 10 * MB)
        deployment = Deployment.single(CdnSpec(vendor="cdn77"), origin)
        report = analyze_deployment(deployment)
        assert report.findings
        assert deployment.ledger.connections == []


class TestVendorMatrixCoverage:
    def test_obr_findings_are_exactly_the_table5_cells(self):
        report = analyze_vendor_matrix()
        cells = {
            tuple(finding.subject.split(" -> "))
            for finding in report.by_kind("obr")
        }
        assert cells == set(vulnerable_combinations())

    def test_every_vendor_gets_an_sbr_verdict(self):
        report = analyze_vendor_matrix()
        verdicts = {f.subject for f in report.findings if f.kind in ("sbr", "safe")}
        assert verdicts == set(all_vendor_names())

    def test_findings_are_severity_ranked(self):
        report = analyze_vendor_matrix()
        ranks = [SEVERITY_ORDER.index(f.severity) for f in report.findings]
        assert ranks == sorted(ranks)
        # Within one bucket, larger bounds come first.
        for left, right in zip(report.findings, report.findings[1:]):
            if left.severity == right.severity:
                assert left.factor_bound >= right.factor_bound

    def test_json_round_trips(self):
        report = analyze_vendor_matrix()
        decoded = json.loads(report.to_json())
        assert decoded["resource_size"] == report.resource_size
        assert len(decoded["findings"]) == len(report.findings)

    def test_table_renders_every_finding(self):
        report = analyze_vendor_matrix()
        table = render_findings_table(report)
        for finding in report.findings:
            assert finding.subject in table


class TestMatchesDynamicSurvey:
    """Static classification agrees with the simulated Tables I-III."""

    def test_tables_1_to_3_membership(self):
        feasibility = survey(file_size=16 * 1024)
        for vendor in all_vendor_names():
            dynamic = feasibility[vendor]
            assert classify_sbr(vendor).vulnerable == dynamic.sbr_vulnerable, vendor
            assert (
                classify_obr_backend(vendor).honors_overlapping
                == dynamic.obr_bcdn_vulnerable
            ), vendor

    def test_frontend_and_backend_registries(self):
        lazy_fronts = {
            vendor
            for vendor in all_vendor_names()
            if any(
                classify_cascade(vendor, bcdn).vulnerable
                for bcdn in OBR_BACKENDS
                if bcdn != vendor
            )
        }
        assert lazy_fronts == set(OBR_FRONTENDS)
        honoring_backs = {
            vendor
            for vendor in all_vendor_names()
            if classify_obr_backend(vendor).honors_overlapping
        }
        assert honoring_backs == set(OBR_BACKENDS)


class TestDeploymentAnalysis:
    def test_reads_sizes_from_the_origin_store(self):
        origin = OriginServer()
        origin.add_synthetic_resource("/1MB.bin", 1 * MB)
        origin.add_synthetic_resource("/3MB.bin", 3 * MB)
        deployment = Deployment.single(CdnSpec(vendor="gcore"), origin)
        report = analyze_deployment(deployment)
        sizes = {f.data["resource_size"] for f in report.by_kind("sbr")}
        assert sizes == {1 * MB, 3 * MB}

    def test_cascade_cell_is_flagged(self):
        origin = OriginServer(range_support=False)
        origin.add_synthetic_resource("/1KB.bin", 1024)
        deployment = Deployment.cascade(
            CdnSpec(vendor="cdn77"), CdnSpec(vendor="akamai"), origin
        )
        report = analyze_deployment(deployment)
        assert any(
            f.subject == "cdn77 -> akamai" for f in report.by_kind("obr")
        )
