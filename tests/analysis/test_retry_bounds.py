"""The retry-aware static bound and its soundness against simulation."""

import pytest

from repro.analysis.bounds import (
    RESPONSE_WIRE_FLOOR,
    FaultedSbrBound,
    faulted_sbr_bound,
    sbr_bound,
)
from repro.cdn.vendors import all_vendor_names
from repro.errors import ConfigurationError
from repro.faults import RetryPolicy, retry_policy_for
from repro.faults.experiment import measure_sbr_under_faults

MB = 1 << 20


class TestFaultedSbrBound:
    def test_numerator_scales_by_attempt_budget(self):
        base = sbr_bound("gcore", 1 * MB)
        bound = faulted_sbr_bound("gcore", 1 * MB)
        assert bound.max_attempts == retry_policy_for("gcore").max_attempts
        assert bound.origin_bytes_upper == base.origin_bytes_upper * bound.max_attempts

    def test_denominator_is_the_bare_wire_floor(self):
        base = sbr_bound("gcore", 1 * MB)
        bound = faulted_sbr_bound("gcore", 1 * MB)
        assert bound.client_bytes_lower == base.client_responses * RESPONSE_WIRE_FLOOR

    def test_factor_dominates_the_clean_bound(self):
        for vendor in all_vendor_names():
            assert (
                faulted_sbr_bound(vendor, 1 * MB).factor
                >= sbr_bound(vendor, 1 * MB).factor
            )

    def test_explicit_policy_overrides_the_vendor_table(self):
        bound = faulted_sbr_bound(
            "gcore", 1 * MB, policy=RetryPolicy(max_attempts=7)
        )
        assert bound.max_attempts == 7

    def test_non_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            faulted_sbr_bound("gcore", 1 * MB, policy="aggressive")

    def test_delegated_identity_fields(self):
        bound = faulted_sbr_bound("azure", 1 * MB)
        assert bound.vendor == "azure"
        assert bound.resource_size == 1 * MB
        assert isinstance(bound, FaultedSbrBound)


class TestSoundnessAgainstSimulation:
    """The acceptance criterion: for every vendor in the quick grid, the
    retry-aware static bound dominates the simulated faulted factor."""

    @pytest.mark.parametrize("vendor", all_vendor_names())
    def test_bound_dominates_faulted_simulation(self, vendor):
        result = measure_sbr_under_faults(vendor, 1 * MB, rounds=2)
        bound = faulted_sbr_bound(vendor, 1 * MB)
        assert result.amplification <= bound.factor

    @pytest.mark.parametrize("seed", [1, 20200605, 987654])
    def test_bound_holds_across_seeds(self, seed):
        result = measure_sbr_under_faults("gcore", 1 * MB, seed=seed, rounds=3)
        assert result.amplification <= faulted_sbr_bound("gcore", 1 * MB).factor
