"""CLI coverage for ``repro analyze`` and ``repro lint``."""

import json

from repro.cli import main


class TestAnalyzeTable:
    def test_renders_ranked_table(self, capsys):
        assert main(["analyze"]) == 0
        output = capsys.readouterr().out
        assert "Severity" in output and "Mechanism" in output
        assert "zero traffic simulated" in output
        # The paper's headline cells are all present.
        assert "cloudflare -> akamai" in output
        assert "cdn77 -> azure" in output
        assert "laziness+honor" in output

    def test_summary_counts_match_the_paper(self, capsys):
        assert main(["analyze"]) == 0
        output = capsys.readouterr().out
        assert "13 SBR-vulnerable vendor(s)" in output
        assert "11 OBR-vulnerable cascade(s)" in output
        assert "7 CCFC-vulnerable vendor(s)" in output
        assert "6 safe" in output

    def test_severity_orders_the_rows(self, capsys):
        assert main(["analyze"]) == 0
        output = capsys.readouterr().out
        assert output.index("critical") < output.index("medium")


class TestAnalyzeJson:
    def test_emits_valid_severity_ranked_json(self, capsys):
        assert main(["analyze", "--format", "json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["resource_size"] == 10 * (1 << 20)
        kinds = {finding["kind"] for finding in decoded["findings"]}
        assert kinds == {"sbr", "obr", "ccfc", "safe"}
        obr = [f for f in decoded["findings"] if f["kind"] == "obr"]
        assert len(obr) == 11
        for finding in obr:
            assert finding["data"]["max_n"] >= 2
        ccfc = [f for f in decoded["findings"] if f["kind"] == "ccfc"]
        assert len(ccfc) == 7
        for finding in ccfc:
            assert finding["data"]["attack"] == "ccfc"
            assert finding["data"]["encoding"] in ("br", "gzip")

    def test_ccfc_findings_golden_shape(self, capsys):
        assert main(["analyze", "--format", "json", "--ccfc-size-mb", "1"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["ccfc_resource_size"] == 1 << 20
        by_subject = {
            f["subject"]: f for f in decoded["findings"] if f["kind"] == "ccfc"
        }
        # The brotli rewriters sit at the top of the family, the gzip
        # rewriters below them; both bounds are pinned to 1dp here so a
        # ratio or header-accounting drift fails loudly.
        assert by_subject["cloudflare"]["data"]["encoding"] == "br"
        assert round(by_subject["cloudflare"]["factor_bound"], 1) == 1290.8
        assert by_subject["fastly"]["data"]["encoding"] == "gzip"
        assert round(by_subject["fastly"]["factor_bound"], 1) == 783.1
        # Rewrite-without-decompress stays safe: the edge relays the
        # compressed body, so there is nothing to inflate.
        safe = {
            f["subject"]: f
            for f in decoded["findings"]
            if f["kind"] == "safe" and f["data"].get("attack") == "ccfc"
        }
        assert safe["tencent"]["mechanism"] == "rewrite-no-decompress"
        assert safe["gcore"]["mechanism"] == "strip"

    def test_size_flags_change_the_bounds(self, capsys):
        assert main(["analyze", "--format", "json", "--size-mb", "1"]) == 0
        small = json.loads(capsys.readouterr().out)
        assert main(["analyze", "--format", "json", "--size-mb", "25"]) == 0
        large = json.loads(capsys.readouterr().out)

        def akamai_bound(report):
            return next(
                f["factor_bound"]
                for f in report["findings"]
                if f["kind"] == "sbr" and f["subject"] == "akamai"
            )

        assert akamai_bound(large) > akamai_bound(small)


class TestLintCommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert capsys.readouterr().out == ""

    def test_violations_exit_one_and_print_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a):\n    return a\n", encoding="utf-8")
        assert main(["lint", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "future-annotations" in captured.out
        assert "untyped-def" in captured.out
        assert "finding(s)" in captured.err
