"""Fixture-file coverage for the PR-3 lint rules.

``tests/analysis/test_lint.py`` checks the rules against inline
snippets and guards the live tree; this suite drives :func:`lint_file`
over small on-disk fixture modules under ``tests/analysis/fixtures/
lint/`` — one positive (rule fires) and one negative (rule stays
silent) per rule, with the fixture root anchoring the package-scoped
rules (``core/`` triggers the wire-arith scope exactly like
``src/repro/core`` does).
"""

from pathlib import Path
from typing import List

import pytest

from repro.analysis.lint import LintFinding, lint_file

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: rule -> (positive fixture, expected finding count, negative fixture).
CASES = [
    ("future-annotations", "future_annotations_bad.py", 1, "future_annotations_good.py"),
    ("untyped-def", "untyped_def_bad.py", 2, "untyped_def_good.py"),
    ("enum-equality", "enum_equality_bad.py", 2, "enum_equality_good.py"),
    (
        "nonexhaustive-dispatch",
        "nonexhaustive_dispatch_bad.py",
        1,
        "nonexhaustive_dispatch_good.py",
    ),
    ("bare-status-literal", "bare_status_literal_bad.py", 1, "bare_status_literal_good.py"),
    ("float-byte-arith", "float_byte_arith_bad.py", 2, "float_byte_arith_good.py"),
    ("broad-except", "broad_except_bad.py", 2, "broad_except_good.py"),
    ("adhoc-wire-arith", "core/adhoc_wire_arith_bad.py", 2, "core/adhoc_wire_arith_good.py"),
]


def _findings(fixture: str) -> List[LintFinding]:
    return lint_file(FIXTURES / fixture, root=FIXTURES)


class TestPositiveFixtures:
    @pytest.mark.parametrize(
        "rule,fixture,count", [(c[0], c[1], c[2]) for c in CASES], ids=[c[0] for c in CASES]
    )
    def test_rule_fires(self, rule: str, fixture: str, count: int) -> None:
        findings = _findings(fixture)
        matched = [f for f in findings if f.rule == rule]
        assert len(matched) == count, [str(f) for f in findings]
        # The fixture violates exactly one rule — no collateral noise.
        assert len(findings) == len(matched), [str(f) for f in findings]

    def test_findings_carry_fixture_relative_path(self) -> None:
        finding = _findings("core/adhoc_wire_arith_bad.py")[0]
        assert finding.path == "core/adhoc_wire_arith_bad.py"
        assert finding.line > 0


class TestNegativeFixtures:
    @pytest.mark.parametrize(
        "rule,fixture", [(c[0], c[3]) for c in CASES], ids=[c[0] for c in CASES]
    )
    def test_rule_stays_silent(self, rule: str, fixture: str) -> None:
        assert _findings(fixture) == []


class TestScoping:
    def test_wire_arith_needs_wire_scope(self) -> None:
        # The same source outside core/cdn/netsim is out of scope.
        source = (FIXTURES / "core/adhoc_wire_arith_bad.py").read_text(encoding="utf-8")
        from repro.analysis.lint import lint_source

        assert lint_source(source, "reporting/out_of_scope.py") == []
        assert len(lint_source(source, "netsim/in_scope.py")) == 2
