"""Unit tests for the Apache-like origin server."""

import pytest

from repro.http.message import HttpRequest
from repro.http.multipart import MultipartByteranges
from repro.origin.server import OriginServer


@pytest.fixture
def origin():
    server = OriginServer()
    server.add_synthetic_resource("/file.bin", 1000)
    return server


def _get(server, target="/file.bin", range_value=None, method="GET"):
    headers = [("Host", "example.com")]
    if range_value is not None:
        headers.append(("Range", range_value))
    return server.handle(HttpRequest(method, target, headers=headers))


class TestPlainResponses:
    def test_full_200(self, origin):
        response = _get(origin)
        assert response.status == 200
        assert len(response.body) == 1000
        assert response.headers.get("Content-Length") == "1000"
        assert response.headers.get("Accept-Ranges") == "bytes"
        assert response.headers.get("Server", "").startswith("Apache")

    def test_404(self, origin):
        assert _get(origin, target="/nope").status == 404

    def test_unsupported_method(self, origin):
        assert _get(origin, method="POST").status == 400

    def test_head_has_no_body(self, origin):
        response = _get(origin, method="HEAD")
        assert response.status == 200
        assert len(response.body) == 0
        assert response.headers.get("Content-Length") == "1000"

    def test_query_string_ignored_for_lookup(self, origin):
        assert _get(origin, target="/file.bin?cb=123").status == 200


class TestSingleRangeResponses:
    def test_first_byte(self, origin):
        response = _get(origin, range_value="bytes=0-0")
        assert response.status == 206
        assert len(response.body) == 1
        assert response.headers.get("Content-Range") == "bytes 0-0/1000"
        assert response.headers.get("Content-Length") == "1"

    def test_suffix(self, origin):
        response = _get(origin, range_value="bytes=-5")
        assert response.status == 206
        assert response.headers.get("Content-Range") == "bytes 995-999/1000"

    def test_open_ended(self, origin):
        response = _get(origin, range_value="bytes=990-")
        assert response.status == 206
        assert len(response.body) == 10

    def test_clamped_last(self, origin):
        response = _get(origin, range_value="bytes=900-5000")
        assert response.headers.get("Content-Range") == "bytes 900-999/1000"

    def test_range_content_matches_slice(self, origin):
        full = _get(origin).body.materialize()
        partial = _get(origin, range_value="bytes=10-19").body.materialize()
        assert partial == full[10:20]

    def test_416_out_of_bounds(self, origin):
        response = _get(origin, range_value="bytes=5000-6000")
        assert response.status == 416
        assert response.headers.get("Content-Range") == "bytes */1000"
        assert len(response.body) == 0

    def test_malformed_range_ignored(self, origin):
        response = _get(origin, range_value="bytes=zzz")
        assert response.status == 200
        assert len(response.body) == 1000


class TestMultiRangeResponses:
    def test_disjoint_multipart(self, origin):
        response = _get(origin, range_value="bytes=0-1,10-19")
        assert response.status == 206
        assert response.content_type.startswith("multipart/byteranges")
        boundary = response.content_type.split("boundary=")[1]
        multipart = MultipartByteranges.parse(response.body.materialize(), boundary)
        assert len(multipart) == 2
        assert response.headers.get("Content-Length") == str(len(response.body))

    def test_single_satisfiable_of_multi_is_single_part(self, origin):
        response = _get(origin, range_value="bytes=0-0,5000-6000")
        assert response.status == 206
        assert response.headers.get("Content-Range") == "bytes 0-0/1000"

    def test_overlapping_downgraded_to_200(self, origin):
        """Apache's CVE-2011-3192 fix: abusive multi-range -> full 200."""
        response = _get(origin, range_value="bytes=0-,0-,0-")
        assert response.status == 200
        assert len(response.body) == 1000

    def test_too_many_ranges_downgraded(self):
        server = OriginServer(max_ranges=3)
        server.add_synthetic_resource("/file.bin", 1000)
        response = _get(server, range_value="bytes=0-0,2-2,4-4,6-6")
        assert response.status == 200

    def test_overlap_guard_can_be_disabled(self):
        server = OriginServer(reject_overlapping=False)
        server.add_synthetic_resource("/file.bin", 1000)
        response = _get(server, range_value="bytes=0-,0-")
        assert response.status == 206
        assert response.content_type.startswith("multipart/byteranges")


class TestRangeSupportDisabled:
    """The OBR attacker's origin configuration."""

    def test_range_header_ignored(self):
        server = OriginServer(range_support=False)
        server.add_synthetic_resource("/file.bin", 1000)
        response = _get(server, range_value="bytes=0-0")
        assert response.status == 200
        assert len(response.body) == 1000

    def test_no_accept_ranges_header(self):
        server = OriginServer(range_support=False)
        server.add_synthetic_resource("/file.bin", 1000)
        response = _get(server)
        assert "Accept-Ranges" not in response.headers


class TestStats:
    def test_counters(self, origin):
        _get(origin)
        _get(origin, range_value="bytes=0-0")
        _get(origin, range_value="bytes=0-1,5-9")
        _get(origin, range_value="bytes=9999-")
        stats = origin.stats
        assert stats.requests == 4
        assert stats.full_responses == 1
        assert stats.partial_responses == 1
        assert stats.multipart_responses == 1
        assert stats.not_satisfiable == 1
        assert stats.bytes_sent > 1000
