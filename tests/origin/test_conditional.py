"""Tests for RFC 7233 §3.1/§3.2 conditions: method scoping and If-Range."""

import pytest

from repro.http.message import HttpRequest
from repro.origin.resource import Resource
from repro.origin.server import OriginServer


@pytest.fixture
def origin():
    server = OriginServer()
    server.add_resource(Resource(path="/file.bin", body=1000))
    return server


def _request(origin, method="GET", range_value=None, if_range=None):
    headers = [("Host", "h")]
    if range_value is not None:
        headers.append(("Range", range_value))
    if if_range is not None:
        headers.append(("If-Range", if_range))
    return origin.handle(HttpRequest(method, "/file.bin", headers=headers))


class TestMethodScoping:
    def test_range_ignored_on_head(self, origin):
        """RFC 7233 §3.1: Range applies to GET only."""
        response = _request(origin, method="HEAD", range_value="bytes=0-0")
        assert response.status == 200
        assert response.headers.get("Content-Length") == "1000"
        assert "Content-Range" not in response.headers
        assert len(response.body) == 0

    def test_range_honored_on_get(self, origin):
        assert _request(origin, range_value="bytes=0-0").status == 206


class TestIfRange:
    def test_matching_etag_serves_partial(self, origin):
        etag = origin.store.get("/file.bin").etag
        response = _request(origin, range_value="bytes=0-0", if_range=etag)
        assert response.status == 206
        assert len(response.body) == 1

    def test_mismatching_etag_serves_full(self, origin):
        response = _request(
            origin, range_value="bytes=0-0", if_range='"stale-etag-value"'
        )
        assert response.status == 200
        assert len(response.body) == 1000

    def test_weak_etag_never_matches(self, origin):
        etag = origin.store.get("/file.bin").etag
        response = _request(origin, range_value="bytes=0-0", if_range=f"W/{etag}")
        assert response.status == 200

    def test_matching_date_serves_partial(self, origin):
        date = origin.store.get("/file.bin").last_modified
        response = _request(origin, range_value="bytes=0-0", if_range=date)
        assert response.status == 206

    def test_mismatching_date_serves_full(self, origin):
        response = _request(
            origin, range_value="bytes=0-0", if_range="Mon, 01 Jan 2001 00:00:00 GMT"
        )
        assert response.status == 200

    def test_if_range_without_range_is_inert(self, origin):
        response = _request(origin, if_range='"anything"')
        assert response.status == 200

    def test_if_range_passes_through_a_cdn(self):
        """A stale If-Range downgrades the upstream fetch to a 200 even
        through a lazy CDN; the client still gets its range served from
        the full body (the proxy rule)."""
        from tests.conftest import make_node, make_origin

        origin = make_origin(1000)
        node = make_node("tencent", origin)  # suffix ranges are lazy
        response = node.handle(
            HttpRequest(
                "GET",
                "/file.bin",
                headers=[
                    ("Host", "h"),
                    ("Range", "bytes=-5"),
                    ("If-Range", '"stale"'),
                ],
            )
        )
        # The origin replied 200 (validator mismatch); the CDN, holding
        # the full body, answers the requested range itself.
        assert origin.stats.full_responses == 1
        assert response.status == 206
        assert len(response.body) == 5
