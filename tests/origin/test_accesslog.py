"""Tests for access logging and offline log-driven detection."""

import pytest

from repro.core.cachebusting import CacheBuster
from repro.core.deployment import Deployment
from repro.defense.detection import RangeAmpDetector
from repro.origin.accesslog import (
    AccessLog,
    AccessLogError,
    AccessLoggingHandler,
    feed_detector,
    parse_log_line,
)
from repro.origin.server import OriginServer

from tests.conftest import get, make_origin


def _logged_origin(size=100_000):
    origin = make_origin(size)
    return AccessLoggingHandler(origin), origin


class TestLogging:
    def test_entry_fields(self):
        logged, _ = _logged_origin()
        get(logged, range_value="bytes=0-0")
        entry = logged.log.entries[0]
        assert entry.method == "GET"
        assert entry.target == "/file.bin"
        assert entry.status == 206
        assert entry.response_bytes == 1
        assert entry.range_header == "bytes=0-0"
        assert entry.client == "-"  # no forwarding header

    def test_client_attribution_from_header(self):
        logged, _ = _logged_origin()
        logged.handle(
            __import__("repro.http.message", fromlist=["HttpRequest"]).HttpRequest(
                "GET",
                "/file.bin",
                headers=[("Host", "h"), ("X-Forwarded-For", "198.51.100.7")],
            )
        )
        assert logged.log.entries[0].client == "198.51.100.7"

    def test_total_bytes_reconciles_with_origin_egress(self):
        logged, origin = _logged_origin(10_000)
        get(logged)
        get(logged, range_value="bytes=0-99")
        assert logged.log.total_bytes() == 10_000 + 100

    def test_cdn_forward_headers_attribute_the_edge(self):
        """Through a CDN, the origin log sees the CDN's client header —
        not the attacker (the paper's visibility point)."""
        origin = make_origin(10_000)
        logged = AccessLoggingHandler(origin)
        deployment = Deployment.single("gcore", OriginServer())
        deployment.nodes[0].upstream = logged
        deployment.client().get("/file.bin", range_value="bytes=0-0")
        assert logged.log.entries[0].client == "198.51.100.7"


class TestRoundTrip:
    def test_line_format_and_parse(self):
        logged, _ = _logged_origin()
        get(logged, range_value="bytes=0-0")
        line = logged.log.lines()[0]
        assert '"GET /file.bin HTTP/1.1" 206 1' in line
        parsed = parse_log_line(line)
        assert parsed == logged.log.entries[0]

    def test_parse_dash_bytes(self):
        line = ('1.2.3.4 - - [05/Jun/2020:08:00:00 +0000] "GET /x HTTP/1.1" '
                '304 - "-" "curl/7.58" "-"')
        entry = parse_log_line(line)
        assert entry.response_bytes == 0
        assert entry.status == 304

    @pytest.mark.parametrize(
        "bad",
        ["", "nonsense", '1.2.3.4 [no] "GET / HTTP/1.1" 200 1 "-" "-" "-"'],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(AccessLogError):
            parse_log_line(bad)


class TestOfflineDetection:
    def test_sbr_flood_detected_from_the_log(self):
        logged, _ = _logged_origin()
        buster = CacheBuster()
        from repro.http.message import HttpRequest

        for _ in range(25):
            logged.handle(
                HttpRequest(
                    "GET",
                    buster.bust("/file.bin"),
                    headers=[
                        ("Host", "h"),
                        ("Range", "bytes=0-0"),
                        ("X-Forwarded-For", "203.0.113.66"),
                    ],
                )
            )
        # Serialize, re-parse, and analyze — the full offline pipeline.
        entries = [parse_log_line(line) for line in logged.log.lines()]
        detector = feed_detector(RangeAmpDetector(), entries)
        verdict = detector.verdict("203.0.113.66")
        assert verdict.suspicious
        assert verdict.tiny_range_requests == 25

    def test_benign_log_stays_clean(self):
        logged, _ = _logged_origin()
        from repro.http.message import HttpRequest

        for _ in range(25):
            logged.handle(
                HttpRequest(
                    "GET", "/file.bin",
                    headers=[("Host", "h"), ("X-Forwarded-For", "198.51.100.9")],
                )
            )
        detector = feed_detector(RangeAmpDetector(), logged.log.entries)
        assert not detector.verdict("198.51.100.9").suspicious
