"""Unit tests for the origin resource store."""

import pytest

from repro.errors import ResourceNotFoundError
from repro.origin.resource import Resource, ResourceStore, guess_content_type


class TestGuessContentType:
    @pytest.mark.parametrize(
        ("path", "expected"),
        [
            ("/a.jpg", "image/jpeg"),
            ("/a.JPEG", "image/jpeg"),
            ("/movie.mp4", "video/mp4"),
            ("/index.html", "text/html"),
            ("/blob", "application/octet-stream"),
            ("/archive.zip", "application/zip"),
        ],
    )
    def test_suffix_mapping(self, path, expected):
        assert guess_content_type(path) == expected


class TestResource:
    def test_synthetic_by_size(self):
        resource = Resource(path="/big.bin", body=1024 * 1024)
        assert resource.size == 1024 * 1024
        assert resource.content_type == "application/octet-stream"

    def test_explicit_bytes(self):
        resource = Resource(path="/a.txt", body=b"hello")
        assert resource.size == 5
        assert resource.content.materialize() == b"hello"
        assert resource.content_type == "text/plain"

    def test_explicit_content_type_wins(self):
        resource = Resource(path="/a.txt", body=b"x", content_type="application/json")
        assert resource.content_type == "application/json"

    def test_path_must_be_absolute(self):
        with pytest.raises(ValueError):
            Resource(path="relative.bin", body=1)

    def test_etag_is_deterministic_and_quoted(self):
        a = Resource(path="/a.bin", body=100)
        b = Resource(path="/a.bin", body=100)
        assert a.etag == b.etag
        assert a.etag.startswith('"') and a.etag.endswith('"')

    def test_etag_differs_with_size(self):
        assert Resource(path="/a.bin", body=100).etag != Resource(path="/a.bin", body=101).etag


class TestResourceStore:
    def test_add_and_get(self):
        store = ResourceStore()
        resource = store.add_synthetic("/x.bin", 42)
        assert store.get("/x.bin") is resource
        assert "/x.bin" in store
        assert len(store) == 1

    def test_get_missing_raises(self):
        with pytest.raises(ResourceNotFoundError) as exc_info:
            ResourceStore().get("/missing")
        assert exc_info.value.path == "/missing"

    def test_replace_same_path(self):
        store = ResourceStore()
        store.add_synthetic("/x.bin", 1)
        store.add_synthetic("/x.bin", 2)
        assert store.get("/x.bin").size == 2
        assert len(store) == 1

    def test_paths_sorted(self):
        store = ResourceStore()
        store.add_synthetic("/b.bin", 1)
        store.add_synthetic("/a.bin", 1)
        assert store.paths() == ["/a.bin", "/b.bin"]
