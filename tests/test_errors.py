"""Tests for the exception taxonomy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            errors.HttpError,
            errors.HeaderError,
            errors.MessageError,
            errors.RangeError,
            errors.RangeParseError,
            errors.MultipartError,
            errors.NetworkError,
            errors.SimulationError,
            errors.OriginError,
            errors.CdnError,
            errors.RequestRejectedError,
            errors.UnknownVendorError,
            errors.ConfigurationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exception_class):
        assert issubclass(exception_class, errors.ReproError)

    def test_range_errors_are_http_errors(self):
        assert issubclass(errors.RangeParseError, errors.HttpError)
        assert issubclass(errors.RangeNotSatisfiableError, errors.RangeError)

    def test_one_except_catches_the_library(self):
        """The promise the hierarchy makes to callers."""
        from repro.http.ranges import parse_range_header

        with pytest.raises(errors.ReproError):
            parse_range_header("garbage")


class TestPayloadCarriers:
    def test_not_satisfiable_carries_length(self):
        error = errors.RangeNotSatisfiableError("nope", complete_length=1234)
        assert error.complete_length == 1234

    def test_rejection_carries_status(self):
        error = errors.RequestRejectedError("too big", status_code=431)
        assert error.status_code == 431

    def test_unknown_vendor_carries_name(self):
        error = errors.UnknownVendorError("notacdn")
        assert error.name == "notacdn"
        assert "notacdn" in str(error)

    def test_resource_not_found_carries_path(self):
        error = errors.ResourceNotFoundError("/missing.bin")
        assert error.path == "/missing.bin"
