"""The fault plan model and the deterministic injection engine."""

import pytest

from repro.faults import (
    DELIVERY_FAULT_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    SITE_CDN_ORIGIN,
    SITE_ORIGIN,
    current_faults,
    use_faults,
)
from repro.netsim import tap


class TestSiteConstants:
    def test_mirror_tap_segment_names(self):
        """plan.py cannot import tap (cycle); the literals must track it."""
        assert SITE_CDN_ORIGIN == tap.CDN_ORIGIN
        assert SITE_ORIGIN == "origin"


class TestFaultRuleValidation:
    def test_rate_out_of_range(self):
        with pytest.raises(FaultPlanError):
            FaultRule(FaultKind.ORIGIN_ERROR, rate=1.5)
        with pytest.raises(FaultPlanError):
            FaultRule(FaultKind.ORIGIN_ERROR, rate=-0.1)

    def test_burst_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            FaultRule(FaultKind.ORIGIN_ERROR, rate=0.5, burst=0)

    def test_truncate_fraction_bounds(self):
        with pytest.raises(FaultPlanError):
            FaultRule(
                FaultKind.TRUNCATE,
                rate=0.5,
                site=SITE_CDN_ORIGIN,
                truncate_fraction=0.0,
            )

    def test_origin_error_needs_5xx(self):
        with pytest.raises(FaultPlanError):
            FaultRule(FaultKind.ORIGIN_ERROR, rate=0.5, status=404)

    def test_origin_error_needs_known_status(self):
        with pytest.raises(FaultPlanError):
            FaultRule(FaultKind.ORIGIN_ERROR, rate=0.5, status=599)

    def test_origin_error_only_at_origin_site(self):
        with pytest.raises(FaultPlanError):
            FaultRule(FaultKind.ORIGIN_ERROR, rate=0.5, site=SITE_CDN_ORIGIN)

    def test_delivery_kinds_not_at_origin_site(self):
        for kind in DELIVERY_FAULT_KINDS:
            with pytest.raises(FaultPlanError):
                FaultRule(kind, rate=0.5, site=SITE_ORIGIN)

    def test_is_delivery(self):
        assert not FaultRule(FaultKind.ORIGIN_ERROR, rate=0.5).is_delivery
        assert FaultRule(
            FaultKind.RESET, rate=0.5, site=SITE_CDN_ORIGIN
        ).is_delivery


class TestFaultPlan:
    def test_negative_seed_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(seed=-1, rules=())

    def test_quiet_plan_never_fires(self):
        injector = FaultInjector(FaultPlan.quiet(3))
        for _ in range(50):
            assert injector.origin_fault("/x") is None
            assert injector.delivery_fault(SITE_CDN_ORIGIN) is None
        assert injector.stats.total_injected == 0

    def test_default_plan_has_all_four_kinds(self):
        kinds = {rule.kind for rule in FaultPlan.default(1).rules}
        assert kinds == set(FaultKind)


def _origin_decisions(injector, n=200):
    return [injector.origin_fault("/r") is not None for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_decision_stream(self):
        plan = FaultPlan.default(42)
        a = _origin_decisions(FaultInjector(plan))
        b = _origin_decisions(FaultInjector(plan))
        assert a == b

    def test_different_seeds_diverge(self):
        a = _origin_decisions(FaultInjector(FaultPlan.default(1)))
        b = _origin_decisions(FaultInjector(FaultPlan.default(2)))
        assert a != b

    def test_jitter_stream_does_not_perturb_faults(self):
        plan = FaultPlan.default(42)
        plain = FaultInjector(plan)
        interleaved = FaultInjector(plan)
        a = []
        b = []
        for _ in range(100):
            a.append(plain.origin_fault("/r") is not None)
            interleaved.jitter_unit()
            b.append(interleaved.origin_fault("/r") is not None)
        assert a == b

    def test_jitter_units_in_range_and_deterministic(self):
        plan = FaultPlan.default(9)
        a = [FaultInjector(plan).jitter_unit() for _ in range(1)]
        injector = FaultInjector(plan)
        draws = [injector.jitter_unit() for _ in range(20)]
        assert all(0.0 <= unit < 1.0 for unit in draws)
        assert draws[0] == a[0]


class TestRates:
    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=1, rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=1.0),))
        injector = FaultInjector(plan)
        assert all(_origin_decisions(injector, 50))

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=1, rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=0.0),))
        injector = FaultInjector(plan)
        assert not any(_origin_decisions(injector, 50))

    def test_moderate_rate_roughly_matches(self):
        plan = FaultPlan(seed=7, rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=0.3),))
        fired = sum(_origin_decisions(FaultInjector(plan), 1000))
        assert 200 < fired < 400


class TestBurst:
    def test_burst_extends_each_firing(self):
        """With burst=3, firings come in runs of (at least) three."""
        plan = FaultPlan(
            seed=5,
            rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=0.1, burst=3),),
        )
        decisions = _origin_decisions(FaultInjector(plan), 500)
        runs = []
        current = 0
        for fired in decisions:
            if fired:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert runs, "rate 0.1 over 500 draws should fire at least once"
        assert all(run >= 3 for run in runs)


class TestStatsAndContext:
    def test_injected_counts_keyed_by_site_and_kind(self):
        plan = FaultPlan(seed=1, rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=1.0),))
        injector = FaultInjector(plan)
        injector.origin_fault("/a")
        injector.origin_fault("/b")
        assert injector.stats.injected == {"origin:origin-error": 2}
        assert injector.stats.total_injected == 2
        assert injector.stats.opportunities == 2

    def test_delivery_opportunity_counted_once_per_segment_match(self):
        plan = FaultPlan(
            seed=1,
            rules=(
                FaultRule(FaultKind.STALL, rate=0.0, site=SITE_CDN_ORIGIN),
                FaultRule(FaultKind.RESET, rate=0.0, site=SITE_CDN_ORIGIN),
            ),
        )
        injector = FaultInjector(plan)
        injector.delivery_fault(SITE_CDN_ORIGIN)
        assert injector.stats.opportunities == 1
        injector.delivery_fault("client-cdn")  # no rule matches
        assert injector.stats.opportunities == 1

    def test_use_faults_installs_and_restores(self):
        assert current_faults() is None
        injector = FaultInjector(FaultPlan.quiet(1))
        with use_faults(injector) as installed:
            assert installed is injector
            assert current_faults() is injector
        assert current_faults() is None
