"""Faulted-SBR measurement: determinism, baselines, grid equivalence."""

from repro.faults import FaultPlan
from repro.faults.experiment import (
    DEFAULT_FAULT_SEED,
    FaultedSbrResult,
    faulted_sbr_grid,
    measure_sbr_under_faults,
)
from repro.runner import GridRunner

MB = 1 << 20


class TestMeasureSbrUnderFaults:
    def test_same_seed_is_byte_identical(self):
        a = measure_sbr_under_faults("gcore", 1 * MB, seed=11, rounds=3)
        b = measure_sbr_under_faults("gcore", 1 * MB, seed=11, rounds=3)
        assert a == b  # frozen dataclass: every field, traffic included

    def test_different_seeds_change_the_fault_mix(self):
        a = measure_sbr_under_faults("gcore", 1 * MB, seed=1, rounds=4)
        b = measure_sbr_under_faults("gcore", 1 * MB, seed=2, rounds=4)
        assert (a.faults_injected, a.origin_traffic) != (
            b.faults_injected,
            b.origin_traffic,
        )

    def test_default_plan_injects_and_retries(self):
        result = measure_sbr_under_faults("gcore", 1 * MB, seed=DEFAULT_FAULT_SEED,
                                          rounds=4)
        assert isinstance(result, FaultedSbrResult)
        assert result.total_faults > 0
        assert result.retries > 0
        assert result.backoff_s > 0.0
        assert result.fetches > 0
        assert result.reamplification > 0.0
        assert result.max_attempts == 3  # gcore's budget

    def test_quiet_plan_matches_clean_baseline(self):
        result = measure_sbr_under_faults(
            "gcore", 1 * MB, seed=5, rounds=2, plan=FaultPlan.quiet(5)
        )
        assert result.total_faults == 0
        assert result.retries == 0
        assert result.exhausted_fetches == 0
        assert all(status == 206 for status in result.statuses)
        assert result.amplification == result.clean_amplification

    def test_clean_baseline_scales_with_rounds(self):
        one = measure_sbr_under_faults("gcore", 1 * MB, seed=3, rounds=1)
        three = measure_sbr_under_faults("gcore", 1 * MB, seed=3, rounds=3)
        assert three.clean_origin_traffic == 3 * one.clean_origin_traffic
        assert three.clean_client_traffic == 3 * one.clean_client_traffic


class TestFaultedSbrGrid:
    def test_grid_shape_and_keys(self):
        grid = faulted_sbr_grid(["gcore", "fastly"], [1 * MB], seed=9, rounds=2)
        assert len(grid) == 2
        assert [cell.key for cell in grid] == [
            ("gcore", 1 * MB, 9),
            ("fastly", 1 * MB, 9),
        ]
        assert all(cell.experiment == "sbr-faults" for cell in grid)

    def test_serial_and_parallel_agree(self):
        grid = faulted_sbr_grid(["gcore", "fastly"], [1 * MB], seed=9, rounds=2)
        serial = GridRunner(workers=1).run(grid)
        parallel = GridRunner(workers=2).run(grid)
        assert serial.outcomes == parallel.outcomes
