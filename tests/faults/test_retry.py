"""Vendor retry policies, FlakyOrigin, and the CDN retry loop."""

import pytest

from repro.faults import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    FlakyOrigin,
    RetryPolicy,
    SITE_CDN_ORIGIN,
    VENDOR_RETRY_POLICIES,
    retry_policy_for,
    use_faults,
)
from repro.handler import HttpHandler
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.status import StatusCode
from repro.netsim.tap import CDN_ORIGIN

from tests.conftest import get, make_node, make_origin

MB = 1 << 20


class FailOnce(HttpHandler):
    """Fails exactly the first request with a 503, then delegates."""

    def __init__(self, inner: HttpHandler) -> None:
        self.inner = inner
        self.calls = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        self.calls += 1
        if self.calls == 1:
            return HttpResponse(
                int(StatusCode.SERVICE_UNAVAILABLE),
                headers=Headers([("Content-Length", "0")]),
            )
        return self.inner.handle(request)


class TestRetryPolicy:
    def test_should_retry_on_5xx(self):
        policy = RetryPolicy()
        assert policy.should_retry(503)
        assert policy.should_retry(500)
        assert not policy.should_retry(404)
        assert not policy.should_retry(206)

    def test_should_retry_on_truncation(self):
        assert RetryPolicy().should_retry(206, truncated=True)
        assert not RetryPolicy(retry_on_truncation=False).should_retry(
            206, truncated=True
        )

    def test_retry_on_5xx_can_be_disabled(self):
        assert not RetryPolicy(retry_on_5xx=False).should_retry(503)

    def test_backoff_schedule_doubles_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=3.0, jitter_fraction=0.0
        )
        assert policy.backoff_s(1) == 1.0
        assert policy.backoff_s(2) == 2.0
        assert policy.backoff_s(3) == 3.0  # capped, not 4.0
        assert policy.backoff_s(4) == 3.0

    def test_backoff_jitter_spread(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter_fraction=0.25)
        assert policy.backoff_s(1, unit=0.0) == pytest.approx(0.75)
        assert policy.backoff_s(1, unit=0.5) == pytest.approx(1.0)
        assert policy.backoff_s(1, unit=0.999) == pytest.approx(1.25, rel=0.01)

    def test_backoff_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)

    def test_vendor_table(self):
        assert retry_policy_for("akamai").max_attempts == 4
        assert not retry_policy_for("azure").retry_on_truncation
        assert retry_policy_for("unknown-vendor") is DEFAULT_RETRY_POLICY
        for policy in VENDOR_RETRY_POLICIES.values():
            assert policy.max_attempts >= 1


class TestFlakyOrigin:
    def test_fails_every_period_th_request(self):
        flaky = FlakyOrigin(make_origin(1000), period=2)
        first = get(flaky, range_value="bytes=0-0")
        second = get(flaky, range_value="bytes=0-0")
        assert first.status == StatusCode.PARTIAL_CONTENT
        assert int(second.status) == int(StatusCode.SERVICE_UNAVAILABLE)
        assert second.headers.get("Retry-After") == "1"
        assert flaky.requests_seen == 2

    def test_retry_after_header_is_optional(self):
        flaky = FlakyOrigin(make_origin(1000), period=1, retry_after=None)
        response = get(flaky, range_value="bytes=0-0")
        assert response.headers.get("Retry-After") is None

    def test_period_validation(self):
        with pytest.raises(ValueError):
            FlakyOrigin(make_origin(1000), period=0)


class TestCdnRetryLoop:
    def test_no_injector_and_no_policy_means_no_retry(self):
        """The clean pipeline never re-fetches: vendor policies engage
        only under an installed fault injector (or an explicit policy)."""
        flaky = FailOnce(make_origin(1000))
        node = make_node("gcore", make_origin(1000))
        node.upstream = flaky
        response = get(node, range_value="bytes=0-0")
        assert int(response.status) == int(StatusCode.SERVICE_UNAVAILABLE)
        assert flaky.calls == 1

    def test_explicit_policy_recovers_from_one_failure(self):
        origin = make_origin(1000)
        node = make_node(
            "gcore", origin, retry_policy=RetryPolicy(max_attempts=2)
        )
        node.upstream = FailOnce(origin)
        response = get(node, range_value="bytes=0-0")
        assert response.status == StatusCode.PARTIAL_CONTENT

    def test_origin_error_exhaustion_spends_the_full_budget(self):
        """Rate-1.0 origin errors: every attempt fails, the CDN spends
        exactly max_attempts origin requests, then relays the error."""
        plan = FaultPlan(
            seed=1, rules=(FaultRule(FaultKind.ORIGIN_ERROR, rate=1.0),)
        )
        origin = make_origin(1000)
        node = make_node("gcore", origin)
        injector = FaultInjector(plan)
        with use_faults(injector):
            response = get(node, range_value="bytes=0-0")
        budget = retry_policy_for("gcore").max_attempts
        assert int(response.status) == int(StatusCode.SERVICE_UNAVAILABLE)
        assert origin.stats.requests == budget
        assert injector.stats.retries == budget - 1
        assert injector.stats.exhausted_fetches == 1
        assert injector.stats.backoff_s > 0.0

    def test_truncated_transfer_is_retried(self):
        plan = FaultPlan(
            seed=1,
            rules=(
                FaultRule(
                    FaultKind.TRUNCATE,
                    rate=1.0,
                    site=SITE_CDN_ORIGIN,
                    truncate_fraction=0.5,
                ),
            ),
        )
        origin = make_origin(1000)
        node = make_node("gcore", origin)
        with use_faults(FaultInjector(plan)):
            get(node, range_value="bytes=0-0")
        assert origin.stats.requests == retry_policy_for("gcore").max_attempts

    def test_azure_intentional_truncation_is_not_a_failure(self):
        """Azure's capped window fetches are by design (payload_cap set);
        with faults armed but quiet, it must not burn retries on them."""
        origin = make_origin(size=25 * MB, path="/big.bin")
        node = make_node("azure", origin)
        injector = FaultInjector(FaultPlan.quiet(7))
        with use_faults(injector):
            response = get(node, target="/big.bin", range_value="bytes=0-0")
        assert response.status == StatusCode.PARTIAL_CONTENT
        assert injector.stats.retries == 0
        assert injector.stats.exhausted_fetches == 0
        assert origin.stats.requests == 1  # one cut fetch, never re-shipped
        stats = node.ledger.segment_stats(CDN_ORIGIN)
        assert stats.response_bytes_delivered < stats.response_bytes_sent

    def test_faulted_run_is_deterministic(self):
        plan = FaultPlan.default(99)

        def statuses():
            origin = make_origin(1000)
            node = make_node("gcore", origin)
            injector = FaultInjector(plan)
            out = []
            with use_faults(injector):
                for _ in range(30):
                    out.append(int(get(node, range_value="bytes=0-0").status))
            return out, injector.stats.retries, injector.stats.injected

        assert statuses() == statuses()
