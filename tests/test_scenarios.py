"""Tests for declarative scenarios and the CLI scenario command."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.scenarios import (
    load_scenario,
    run_scenario,
    validate_scenario,
)


def _spec(**overrides):
    spec = {
        "name": "test-run",
        "experiments": [
            {"type": "sbr", "vendor": "gcore", "size_mb": 1},
        ],
    }
    spec.update(overrides)
    return spec


class TestValidation:
    def test_valid_spec_passes(self):
        validate_scenario(_spec())

    @pytest.mark.parametrize(
        "broken",
        [
            "not-a-dict",
            {"experiments": [{"type": "sbr", "vendor": "gcore"}]},  # no name
            {"name": "x"},  # no experiments
            {"name": "x", "experiments": []},
            {"name": "x", "experiments": ["nope"]},
            {"name": "x", "experiments": [{"type": "teapot"}]},
            {"name": "x", "experiments": [{"type": "sbr", "vendor": "notacdn"}]},
            {"name": "x", "experiments": [{"type": "obr", "fcdn": "cdn77"}]},
        ],
    )
    def test_broken_specs_rejected(self, broken):
        with pytest.raises(ConfigurationError):
            validate_scenario(broken)


class TestExecution:
    def test_sbr_experiment(self):
        outcome = run_scenario(_spec())
        assert outcome.name == "test-run"
        assert len(outcome.outcomes) == 1
        result = outcome.outcomes[0]
        assert result.type == "sbr"
        assert result.metrics["amplification"] > 1500

    def test_obr_experiment(self):
        outcome = run_scenario(
            {
                "name": "obr-run",
                "experiments": [
                    {"type": "obr", "fcdn": "cloudflare", "bcdn": "akamai",
                     "overlaps": 64}
                ],
            }
        )
        metrics = outcome.outcomes[0].metrics
        assert metrics["amplification"] > 40
        assert outcome.outcomes[0].parameters["overlaps"] == 64

    def test_flood_experiment(self):
        outcome = run_scenario(
            {"name": "flood", "experiments": [{"type": "flood", "m": 13}]}
        )
        assert outcome.outcomes[0].metrics["saturated"] is True

    def test_mixed_batch_and_serialization(self):
        outcome = run_scenario(
            {
                "name": "batch",
                "experiments": [
                    {"type": "sbr", "vendor": "gcore", "size_mb": 1},
                    {"type": "flood", "m": 2},
                ],
            }
        )
        as_dict = outcome.to_dict()
        assert as_dict["name"] == "batch"
        assert len(as_dict["experiments"]) == 2
        json.dumps(as_dict)  # round-trippable


class TestFileLoading:
    def test_load_and_run_from_disk(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(_spec()))
        spec = load_scenario(path)
        assert run_scenario(spec).outcomes

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_scenario(tmp_path / "nope.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_scenario(path)


class TestCliIntegration:
    def test_scenario_command(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(_spec()))
        assert main(["scenario", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiments"][0]["metrics"]["amplification"] > 1500

    def test_scenario_command_bad_file(self, tmp_path, capsys):
        assert main(["scenario", str(tmp_path / "missing.json")]) == 1
        assert "error:" in capsys.readouterr().err
