#!/usr/bin/env python
"""CI gate over the persisted benchmark trajectory (BENCH_runall.json).

Given the fast-path observation from this run, the sim-only (--exact)
observation from the same machine/job, and the baseline committed at the
repo root, enforce:

1. the fast-path hit rate has not dropped below the committed baseline
   (deterministic cell counts, so equality is expected — any drop means
   an engine started refusing cells it used to answer);
2. the run's wall clock has not regressed more than MAX_WALL_REGRESSION
   times the committed baseline (a coarse tripwire; machines differ, so
   the bound is deliberately loose);
3. answering the SBR/OBR/CCFC measurement cells is at least
   MIN_MEASURE_SPEEDUP times faster through the fast path than through
   wire-level simulation, compared within this job via the derived
   "measure" phase — the like-for-like basis (Fig 7 flood cells simulate
   identically in both modes).

All three files must carry the current benchmark schema version: the
run-all grid gained CCFC cells in schema version 2, so cell counts and
phase totals from older builds are not comparable.  A stale committed
baseline fails here with a pointer to the regeneration command instead
of silently gating against incomparable numbers.

Usage:
    python scripts/check_bench.py --current BENCH.json --exact BENCH_exact.json \
        --baseline BENCH_runall.json
"""

from __future__ import annotations

import argparse
import sys

from repro.reporting.bench import BenchReport, BenchSchemaError, load_bench

#: The acceptance floor: fast path must answer the measurement cells at
#: least this many times faster than simulating them.
MIN_MEASURE_SPEEDUP = 5.0

#: Wall-clock tripwire versus the committed baseline.
MAX_WALL_REGRESSION = 2.0


def check(current: BenchReport, exact: BenchReport, baseline: BenchReport) -> int:
    failures = []

    if current.fastpath is None:
        failures.append("current run has no fast-path stats (was it --exact?)")
    elif current.hit_rate < baseline.hit_rate:
        failures.append(
            f"fast-path hit rate dropped: {current.hit_rate:.3f} < "
            f"baseline {baseline.hit_rate:.3f}"
        )

    if baseline.wall_s > 0 and current.wall_s > MAX_WALL_REGRESSION * baseline.wall_s:
        failures.append(
            f"wall clock regressed >{MAX_WALL_REGRESSION:.0f}x: "
            f"{current.wall_s:.2f}s vs baseline {baseline.wall_s:.2f}s"
        )

    fast_measure = current.measure_s
    exact_measure = exact.measure_s
    if fast_measure <= 0 or exact_measure <= 0:
        failures.append(
            f"missing measure phases (fast={fast_measure}, exact={exact_measure})"
        )
    else:
        speedup = exact_measure / fast_measure
        print(
            f"measurement-cell speedup: {speedup:.1f}x "
            f"(exact {exact_measure:.3f}s / fast {fast_measure:.3f}s)"
        )
        if speedup < MIN_MEASURE_SPEEDUP:
            failures.append(
                f"fast path is only {speedup:.1f}x faster than simulation "
                f"on measurement cells (floor: {MIN_MEASURE_SPEEDUP:.0f}x)"
            )

    print(
        f"hit rate: {current.hit_rate:.3f} (baseline {baseline.hit_rate:.3f}); "
        f"wall: {current.wall_s:.2f}s (baseline {baseline.wall_s:.2f}s)"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, help="fast-path BENCH file")
    parser.add_argument("--exact", required=True, help="sim-only BENCH file")
    parser.add_argument("--baseline", required=True, help="committed baseline")
    args = parser.parse_args(argv)
    try:
        current = load_bench(args.current)
        exact = load_bench(args.exact)
        baseline = load_bench(args.baseline)
    except BenchSchemaError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        print(
            "hint: if the committed baseline predates the current schema "
            "(e.g. version 1, before the grid gained CCFC cells), "
            "regenerate it with:\n"
            "  PYTHONPATH=src python -m repro run-all --quick --workers 1 "
            "--no-progress --bench BENCH_runall.json",
            file=sys.stderr,
        )
        return 1
    return check(current, exact, baseline)


if __name__ == "__main__":
    raise SystemExit(main())
