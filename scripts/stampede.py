#!/usr/bin/env python
"""Stampede load generator for ``repro serve``.

Fires a burst of concurrent ``POST /v1/analyze`` batches at a running
service and verifies the DoS-hardening contract from the outside:

* every response is either ``200`` (admitted) or ``429`` (shed);
* every ``429`` carries a ``Retry-After`` header;
* at overload (concurrency well above ``--max-inflight``) at least one
  request is shed and at least one is admitted.

Prints a JSON summary to stdout and exits non-zero when the contract is
violated (any 5xx/connection error, a 429 without Retry-After, or zero
successes).  Used by the CI ``serve-smoke`` job and the drain test.

Usage::

    PYTHONPATH=src python -m repro serve --port 8437 &
    python scripts/stampede.py --port 8437 --concurrency 64 --requests 256
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple


def build_request(items: int, size: int, deadline_ms: Optional[int]) -> bytes:
    body = json.dumps(
        {"items": [{"vendor": "cloudflare", "size": size}] * items}
    ).encode("utf-8")
    headers = [
        "POST /v1/analyze HTTP/1.1",
        "Host: stampede",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if deadline_ms is not None:
        headers.append(f"X-Deadline-Ms: {deadline_ms}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("utf-8") + body


def parse_response(raw: bytes) -> Tuple[int, Dict[str, str]]:
    head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1", "replace")
    lines = head.split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def one_request(
    host: str, port: int, payload: bytes, timeout: float
) -> Dict[str, Any]:
    started = time.monotonic()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
        writer.write(payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
        writer.close()
        status, headers = parse_response(raw)
        return {
            "status": status,
            "retry_after": headers.get("retry-after"),
            "seconds": time.monotonic() - started,
        }
    except Exception as exc:
        return {"status": 0, "error": f"{type(exc).__name__}: {exc}",
                "seconds": time.monotonic() - started}


async def stampede(args: argparse.Namespace) -> Dict[str, Any]:
    payload = build_request(args.items, args.size, args.deadline_ms)
    semaphore = asyncio.Semaphore(args.concurrency)

    async def bounded() -> Dict[str, Any]:
        async with semaphore:
            return await one_request(args.host, args.port, payload, args.timeout)

    results = await asyncio.gather(*(bounded() for _ in range(args.requests)))
    return summarize(list(results))


def summarize(results: List[Dict[str, Any]]) -> Dict[str, Any]:
    by_status: Dict[str, int] = {}
    errors: List[str] = []
    missing_retry_after = 0
    ok_latencies: List[float] = []
    for result in results:
        status = result["status"]
        by_status[str(status)] = by_status.get(str(status), 0) + 1
        if status == 0:
            errors.append(result.get("error", "unknown"))
        elif status == 200:
            ok_latencies.append(result["seconds"])
        elif status == 429 and not result.get("retry_after"):
            missing_retry_after += 1
    ok_latencies.sort()
    p50 = ok_latencies[len(ok_latencies) // 2] if ok_latencies else None
    unexpected = sorted(
        status for status in by_status if status not in ("200", "429")
    )
    return {
        "requests": len(results),
        "by_status": dict(sorted(by_status.items())),
        "ok": by_status.get("200", 0),
        "shed": by_status.get("429", 0),
        "p50_ok_seconds": p50,
        "missing_retry_after": missing_retry_after,
        "unexpected_statuses": unexpected,
        "errors": errors[:5],
    }


def verdict(summary: Dict[str, Any], expect_shed: bool) -> int:
    failures = []
    if summary["ok"] == 0:
        failures.append("no request succeeded")
    if summary["unexpected_statuses"]:
        failures.append(f"unexpected statuses {summary['unexpected_statuses']}")
    if summary["missing_retry_after"]:
        failures.append(f"{summary['missing_retry_after']} 429s lacked Retry-After")
    if summary["errors"]:
        failures.append(f"connection errors: {summary['errors']}")
    if expect_shed and summary["shed"] == 0:
        failures.append("expected at least one shed (429), saw none")
    summary["failures"] = failures
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--requests", type=int, default=128)
    parser.add_argument("--items", type=int, default=4,
                        help="batch items per request")
    parser.add_argument("--size", type=int, default=1 << 20,
                        help="resource size per item")
    parser.add_argument("--deadline-ms", type=int, default=None)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--expect-shed", action="store_true",
                        help="fail unless at least one request was shed")
    args = parser.parse_args(argv)

    summary = asyncio.run(stampede(args))
    code = verdict(summary, args.expect_shed)
    print(json.dumps(summary, indent=2))
    return code


if __name__ == "__main__":
    sys.exit(main())
