# Convenience targets for the RangeAmp reproduction.

PYTHON ?= python

.PHONY: install test bench report examples clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) examples/full_reproduction.py report/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/feasibility_survey.py
	$(PYTHON) examples/mitigation_eval.py
	$(PYTHON) examples/segmented_download.py

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/output report
	find . -name __pycache__ -type d -exec rm -rf {} +
