"""Fig 7 — bandwidth consumption under a sustained SBR flood.

Sweeps m = 1..15 concurrent attack requests per second for 30 seconds
against a 1000 Mbps origin uplink (10 MB resource through Cloudflare,
as in the paper's §V-D) and asserts the figure's shape: client incoming
under 500 Kbps throughout (7a), origin outgoing proportional to m until
the uplink pins at capacity in the paper's m = 11-14 band (7b).
"""

import pytest

from repro.reporting.figures import fig7_series
from repro.reporting.paper_values import (
    PAPER_FIG7_FULL_SATURATION_M,
    PAPER_FIG7_NEAR_SATURATION_M,
)
from repro.reporting.render import render_sparkline, render_table

from benchmarks.conftest import benchmark_runner, save_artifact

MB = 1 << 20


def _regenerate():
    return fig7_series(
        ms=tuple(range(1, 16)),
        vendor="cloudflare",
        resource_size=10 * MB,
        runner=benchmark_runner(),
    )


def test_fig7_bandwidth(benchmark, output_dir):
    results = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    # Fig 7a: client incoming bandwidth below 500 Kbps for every m.
    assert all(result.peak_client_kbps < 500.0 for result in results)

    # Fig 7b: proportional growth below saturation...
    per_stream = results[0].steady_origin_mbps
    for result in results[:10]:
        expected = min(result.m * per_stream, 1000.0)
        assert result.steady_origin_mbps == pytest.approx(expected, rel=0.05)

    # ...and the crossover lands in the paper's m = 11-14 band.
    threshold = next(result.m for result in results if result.saturated)
    assert (
        PAPER_FIG7_NEAR_SATURATION_M <= threshold <= PAPER_FIG7_FULL_SATURATION_M
    ), f"saturation at m={threshold}, paper band is 11-14"

    # m = 15 keeps the uplink pinned.
    assert results[-1].steady_origin_mbps == pytest.approx(1000.0, rel=0.03)

    rendered = render_table(
        ["m", "origin steady (Mbps)", "client peak (Kbps)", "saturated", "origin Mbps over time"],
        [
            [
                result.m,
                f"{result.steady_origin_mbps:.1f}",
                f"{result.peak_client_kbps:.1f}",
                "yes" if result.saturated else "no",
                render_sparkline(result.origin_mbps, width=30),
            ]
            for result in results
        ],
    )
    save_artifact(output_dir, "fig7_bandwidth.txt", rendered)
