"""Extension — OBR through chains longer than the paper's two CDNs.

The paper cascades exactly two CDNs (FCDN → BCDN).  Chaining additional
*lazy* front hops relays the n-part multipart across every inter-CDN
link, multiplying the total amplified traffic by the number of lazy hops
— the attack surface grows linearly with chain depth while the
attacker's and origin's costs stay flat.
"""

from repro.cdn.vendors.base import VendorConfig
from repro.core.deployment import CdnSpec, Deployment
from repro.http.grammar import overlapping_open_ranges_value
from repro.origin.server import OriginServer
from repro.reporting.render import format_bytes, render_table

from benchmarks.conftest import save_artifact

OVERLAPS = 256


def _origin():
    origin = OriginServer(range_support=False)
    origin.add_synthetic_resource("/1KB.bin", 1024)
    return origin


def _lazy(vendor):
    return CdnSpec(vendor=vendor, config=VendorConfig(bypass_cache=True))


def _run_chain(lazy_hops):
    chain = [_lazy("cloudflare") for _ in range(lazy_hops)] + [CdnSpec(vendor="akamai")]
    deployment = Deployment(_origin(), chain)
    deployment.client().get(
        "/1KB.bin",
        range_value=overlapping_open_ranges_value(OVERLAPS),
        abort_after=2048,
    )
    segments = [node.upstream_segment for node in deployment.nodes]
    origin_segment = segments[-1]
    inter_cdn = segments[:-1]
    amplified_total = sum(deployment.response_traffic(s) for s in inter_cdn)
    return {
        "hops": lazy_hops,
        "origin_bytes": deployment.response_traffic(origin_segment),
        "amplified_total": amplified_total,
        "links": len(inter_cdn),
    }


def _regenerate():
    return [_run_chain(hops) for hops in (1, 2, 3)]


def test_extension_chained_obr(benchmark, output_dir):
    results = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    base = results[0]["amplified_total"]
    assert base > OVERLAPS * 1024
    # Each extra lazy hop adds one more amplified link of the same size.
    for result in results:
        per_link = result["amplified_total"] / result["links"]
        assert abs(per_link - base) <= 0.05 * base
    # Origin cost stays flat regardless of depth.
    origin_costs = [r["origin_bytes"] for r in results]
    assert max(origin_costs) - min(origin_costs) < 200

    rendered = render_table(
        ["lazy hops", "amplified links", "origin->BCDN", "total amplified traffic"],
        [
            [
                r["hops"],
                r["links"],
                format_bytes(r["origin_bytes"]),
                format_bytes(r["amplified_total"]),
            ]
            for r in results
        ],
    )
    save_artifact(output_dir, "extension_chained_obr.txt", rendered)
