"""Related-work comparison (paper §VIII) — the ESORICS'09
connection-drop attack vs the SBR attack, per vendor.

The paper re-evaluated Triukose et al.'s attack and found most CDNs now
break their back-end fetch when the client connection is cut — a defense
that RangeAmp sidesteps entirely, because an SBR exchange completes
normally.  This bench reproduces the comparison across all 13 vendors.
"""

from repro.cdn.vendors import all_vendor_names
from repro.core.connection_drop import compare_with_sbr
from repro.reporting.render import format_bytes, render_table

from benchmarks.conftest import save_artifact

MB = 1 << 20


def _regenerate():
    return [compare_with_sbr(vendor, resource_size=10 * MB) for vendor in all_vendor_names()]


def test_related_connection_drop(benchmark, output_dir):
    comparisons = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    # Paper §IV-C/§VIII: only CDN77 and CDNsun still ship the whole
    # resource after a client abort...
    undefended = {
        c.vendor for c in comparisons if not c.connection_drop.defended
    }
    assert undefended == {"cdn77", "cdnsun"}

    # ...while the SBR attack amplifies through every vendor regardless.
    for comparison in comparisons:
        assert comparison.sbr_amplification > 5000, comparison.vendor
    bypassed = {c.vendor for c in comparisons if c.defense_bypassed}
    assert bypassed == set(all_vendor_names()) - {"cdn77", "cdnsun"}

    rendered = render_table(
        ["CDN", "abort defense", "drop-attack origin egress", "SBR factor @10MB"],
        [
            [
                c.vendor,
                "maintains back-end (vulnerable)"
                if c.connection_drop.backend_maintained
                else "breaks back-end (defended)",
                format_bytes(c.connection_drop.origin_traffic),
                f"{c.sbr_amplification:.0f}x",
            ]
            for c in comparisons
        ],
    )
    save_artifact(output_dir, "related_connection_drop.txt", rendered)
