"""Fig 6 — the SBR sweep: amplification factor (6a), CDN-to-client
traffic (6b), and origin-to-CDN traffic (6c) over resource sizes of
1-25 MB for all 13 vendors.

Asserts the curves' defining shapes: near-linear factor growth for
Deletion vendors, the Azure 16 MB and CloudFront 10 MB plateaus, flat
sub-1500-byte client traffic, and KeyCDN's doubled client traffic.
"""

import pytest

from repro.reporting.figures import default_fig6_sizes, fig6_series
from repro.reporting.render import render_table

from benchmarks.conftest import benchmark_runner, save_artifact

MB = 1 << 20


def _regenerate():
    return fig6_series(sizes=default_fig6_sizes(), runner=benchmark_runner())


def test_fig6_sbr_curves(benchmark, output_dir):
    series = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    by_vendor = {curve.vendor: curve for curve in series}
    assert len(by_vendor) == 13

    # Fig 6a: near-proportional growth for plain-Deletion vendors.
    for vendor in ("akamai", "gcore", "cloudflare", "tencent"):
        curve = by_vendor[vendor]
        ratio = curve.factors[-1] / curve.factors[0]
        assert ratio == pytest.approx(25, rel=0.10), (
            f"{vendor}: 25 MB factor should be ~25x the 1 MB factor, got {ratio:.1f}"
        )

    # Fig 6a: Azure plateaus once the resource exceeds 16 MB.
    azure = by_vendor["azure"]
    plateau = azure.factors[16:]  # 17 MB and beyond
    assert max(plateau) - min(plateau) < 0.02 * max(plateau)

    # Fig 6a: CloudFront plateaus once the resource exceeds 10 MB.
    cloudfront = by_vendor["cloudfront"]
    plateau = cloudfront.factors[10:]
    assert max(plateau) - min(plateau) < 0.02 * max(plateau)

    # Fig 6b: client-side traffic is flat and below 1500 bytes.
    for curve in series:
        assert max(curve.client_traffic) <= 1500 * (
            2 if curve.vendor == "keycdn" else 1
        ), curve.vendor

    # Fig 6b: KeyCDN's two-request pattern gives the largest client traffic.
    keycdn_client = max(by_vendor["keycdn"].client_traffic)
    assert keycdn_client > max(
        max(c.client_traffic) for v, c in by_vendor.items() if v != "keycdn"
    )

    # Fig 6c: origin traffic tracks the resource size for Deletion vendors.
    assert by_vendor["akamai"].origin_traffic[24] == pytest.approx(25 * MB, rel=0.01)

    header = ["size"] + [curve.vendor for curve in series]
    rows = []
    for index, size in enumerate(series[0].sizes):
        rows.append(
            [f"{size // MB}MB"] + [f"{curve.factors[index]:.0f}" for curve in series]
        )
    save_artifact(output_dir, "fig6a_amplification_factors.txt", render_table(header, rows))

    client_rows = [
        [f"{size // MB}MB"] + [str(curve.client_traffic[index]) for curve in series]
        for index, size in enumerate(series[0].sizes)
    ]
    save_artifact(output_dir, "fig6b_client_traffic.txt", render_table(header, client_rows))

    origin_rows = [
        [f"{size // MB}MB"] + [str(curve.origin_traffic[index]) for curve in series]
        for index, size in enumerate(series[0].sizes)
    ]
    save_artifact(output_dir, "fig6c_origin_traffic.txt", render_table(header, origin_rows))
