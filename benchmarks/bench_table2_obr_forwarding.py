"""Table II — range forwarding behaviors vulnerable to the OBR attack.

Identifies the CDNs that forward overlapping multi-range requests
unchanged (the usable OBR front-ends): CDN77, CDNsun, Cloudflare (under
the Bypass rule), and StackPath.
"""

from repro.core.feasibility import survey
from repro.reporting.paper_values import PAPER_OBR_FRONTENDS
from repro.reporting.render import render_table
from repro.reporting.tables import table2_rows

from benchmarks.conftest import save_artifact


def _regenerate():
    feasibility = survey(file_size=16 * 1024)
    rows = table2_rows(feasibility=feasibility)
    conditional = {
        name for name, verdict in feasibility.items() if verdict.obr_fcdn_conditional
    }
    return rows, conditional


def test_table2_obr_forwarding(benchmark, output_dir):
    rows, conditional = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    assert {row.vendor for row in rows} == set(PAPER_OBR_FRONTENDS), (
        "Table II membership mismatch"
    )
    assert conditional == {"cloudflare"}, (
        "only Cloudflare's front-end laziness is config-conditional (*)"
    )

    rendered = render_table(
        ["CDN", "Lazy Multi-Range Formats", "Conditional"],
        [
            [
                row.display_name,
                "; ".join(row.lazy_formats),
                "(*)" if row.vendor in conditional else "",
            ]
            for row in rows
        ],
    )
    save_artifact(output_dir, "table2_obr_forwarding.txt", rendered)
