"""Table IV — SBR amplification factors at 1 / 10 / 25 MB.

Runs every vendor's exploited range case against each resource size and
compares the measured amplification factor with the paper's, enforcing
the per-vendor tolerance bands documented in EXPERIMENTS.md.
"""

from repro.reporting.paper_values import PAPER_TABLE4_FACTORS
from repro.reporting.render import render_table
from repro.reporting.tables import table4_rows

from benchmarks.conftest import benchmark_runner, save_artifact

MB = 1 << 20
SIZES = (1 * MB, 10 * MB, 25 * MB)

#: Relative tolerance against Table IV (plateau vendors are wider — their
#: cut-off arithmetic embeds testbed timing the simulator idealizes).
TOLERANCE = {"azure": 0.15, "cloudfront": 0.20, "keycdn": 0.10}
DEFAULT_TOLERANCE = 0.08


def _regenerate():
    return table4_rows(sizes=SIZES, runner=benchmark_runner())


def test_table4_sbr_factors(benchmark, output_dir):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    rendered_rows = []
    for row in rows:
        paper = PAPER_TABLE4_FACTORS[row.vendor]
        tolerance = TOLERANCE.get(row.vendor, DEFAULT_TOLERANCE)
        for size in SIZES:
            deviation = abs(row.factors[size] - paper[size]) / paper[size]
            assert deviation <= tolerance, (
                f"{row.vendor} at {size // MB} MB: measured "
                f"{row.factors[size]:.0f} vs paper {paper[size]} "
                f"({deviation:.1%} > {tolerance:.0%})"
            )
        rendered_rows.append(
            [
                row.display_name,
                " & ".join(row.exploited_cases),
                *(
                    f"{row.factors[size]:.0f} (paper {paper[size]})"
                    for size in SIZES
                ),
            ]
        )

    rendered = render_table(
        ["CDN", "Exploited Range Case", "1MB", "10MB", "25MB"], rendered_rows
    )
    save_artifact(output_dir, "table4_sbr_factors.txt", rendered)
