"""Benchmark guard for the whole-program determinism analyzer.

Not a paper artifact: the purity pass runs in CI on every push, so its
cost is part of the development loop.  The call-graph build is linear
in the AST and the effect propagation is a worklist fixpoint — both
must stay that way.  Beyond the usual pytest-benchmark timings, the
full-repo test asserts a hard wall-clock ceiling so the fixpoint can't
quietly go quadratic: the whole ``src/repro`` analysis (~100 modules,
~1000 functions) must finish in seconds, not minutes.
"""

import time

from repro.analysis.callgraph import build_callgraph
from repro.analysis.purity import analyze_callgraph, analyze_tree

#: Hard ceiling for one full-repo analysis (seconds).  The pass takes
#: well under a second today; 10s leaves headroom for slow CI runners
#: while still catching a complexity-class regression.
FULL_ANALYSIS_CEILING_S = 10.0


def test_callgraph_build_full_repo(benchmark):
    graph = benchmark(build_callgraph)
    assert len(graph) > 700


def test_purity_propagation_only(benchmark):
    graph = build_callgraph()
    report = benchmark(analyze_callgraph, graph)
    assert report.function_count == len(graph)


def test_full_analysis_under_ceiling(benchmark):
    def analyze():
        start = time.perf_counter()
        report = analyze_tree()
        return report, time.perf_counter() - start

    report, elapsed = benchmark(analyze)
    assert report.module_count > 80
    assert elapsed < FULL_ANALYSIS_CEILING_S, (
        f"full-repo purity analysis took {elapsed:.2f}s "
        f"(ceiling {FULL_ANALYSIS_CEILING_S}s); the fixpoint pass has "
        "regressed in complexity"
    )
