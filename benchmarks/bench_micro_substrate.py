"""Microbenchmarks of the hot substrate paths.

Not a paper artifact: these time the primitives every experiment leans
on, so regressions in the simulator itself are visible — Range parsing,
multipart assembly at OBR scale, the full single-CDN pipeline, and the
disabled-observability overhead (the NullTracer path must stay free).

The run-all benchmark at the bottom additionally persists the
schema-versioned ``BENCH_runall.json`` observation to
``benchmarks/output/`` — the same trajectory file ``repro run-all
--bench`` writes, so local bench runs and CI gate on one format.
"""

import time

from repro.cdn.node import CdnNode
from repro.cdn.vendors import create_profile
from repro.http.body import SyntheticBody
from repro.http.grammar import overlapping_open_ranges_value
from repro.http.message import HttpRequest
from repro.http.multipart import MultipartByteranges
from repro.http.ranges import ResolvedRange, parse_range_header
from repro.netsim.tap import TrafficLedger
from repro.obs.tracer import Tracer, current_tracer, use_tracer
from repro.origin.server import OriginServer

MB = 1 << 20


def test_parse_single_range(benchmark):
    benchmark(parse_range_header, "bytes=0-0")


def test_parse_obr_range_10k(benchmark):
    value = overlapping_open_ranges_value(10_750)
    result = benchmark(parse_range_header, value)
    assert len(result) == 10_750


def test_resolve_obr_range_10k(benchmark):
    spec = parse_range_header(overlapping_open_ranges_value(10_750))
    resolved = benchmark(spec.resolve, 1024)
    assert len(resolved) == 10_750


def test_multipart_build_10k_parts(benchmark):
    resource = SyntheticBody(1024)
    ranges = [ResolvedRange(0, 1023)] * 10_750

    def build():
        return MultipartByteranges.build(
            resource_body=resource,
            ranges=ranges,
            content_type="application/octet-stream",
        ).wire_size()

    size = benchmark(build)
    assert size > 10_750 * 1024


def test_sbr_pipeline_round(benchmark):
    """One full client -> CDN -> origin SBR round at 10 MB."""
    origin = OriginServer()
    origin.add_synthetic_resource("/target.bin", 10 * MB)
    node = CdnNode(create_profile("gcore"), origin, ledger=TrafficLedger())
    counter = iter(range(10_000_000))

    def round_trip():
        request = HttpRequest(
            "GET",
            f"/target.bin?cb={next(counter)}",
            headers=[("Host", "victim.example"), ("Range", "bytes=0-0")],
        )
        return node.handle(request).status

    assert benchmark(round_trip) == 206


def test_origin_full_response(benchmark):
    origin = OriginServer()
    origin.add_synthetic_resource("/target.bin", 25 * MB)
    request = HttpRequest("GET", "/target.bin", headers=[("Host", "h")])
    response = benchmark(origin.handle, request)
    assert response.status == 200


def test_null_tracer_span_overhead(benchmark):
    """The disabled instrumentation point: one ContextVar read + a no-op
    context manager on a shared singleton.  Nanoseconds, no allocation."""

    def disabled_span():
        with current_tracer().span("bench.noop") as span:
            return span.recording

    assert benchmark(disabled_span) is False


def test_sbr_pipeline_round_traced(benchmark):
    """The same 10 MB SBR round as ``test_sbr_pipeline_round`` but under
    a recording tracer — the cost ceiling of ``--trace``."""
    origin = OriginServer()
    origin.add_synthetic_resource("/target.bin", 10 * MB)
    node = CdnNode(create_profile("gcore"), origin, ledger=TrafficLedger())
    counter = iter(range(10_000_000))
    tracer = Tracer()

    def round_trip():
        request = HttpRequest(
            "GET",
            f"/target.bin?cb={next(counter)}",
            headers=[("Host", "victim.example"), ("Range", "bytes=0-0")],
        )
        with use_tracer(tracer):
            return node.handle(request).status

    assert benchmark(round_trip) == 206
    assert tracer.finished_spans()


def test_run_all_quick_fastpath(benchmark, output_dir):
    """Quick run-all through the closed-form fast path, persisting the
    ``BENCH_runall.json`` trajectory observation.

    Serial on purpose: the observation tracks the fast path and the
    residual simulation, not pool scaling.
    """
    from benchmarks.conftest import save_artifact
    from repro.reporting.bench import BENCH_FILENAME, bench_from_runall
    from repro.runner.memo import clear_all_memos
    from repro.runner.runall import run_all

    def regenerate():
        clear_all_memos()
        started = time.perf_counter()
        report = run_all(workers=1, quick=True)
        return report, time.perf_counter() - started

    report, wall_s = benchmark(regenerate)
    assert report.fastpath is not None
    assert report.fastpath.answered > 0
    bench = bench_from_runall(report, "run-all-quick", wall_s=wall_s)
    save_artifact(output_dir, BENCH_FILENAME, bench.to_json() + "\n")
