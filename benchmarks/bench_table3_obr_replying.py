"""Table III — range replying behaviors vulnerable to the OBR attack.

Identifies the CDNs that honor overlapping multi-range requests with an
n-part response (the usable OBR back-ends): Akamai, Azure (n <= 64), and
StackPath.
"""

from repro.core.feasibility import survey
from repro.reporting.paper_values import PAPER_OBR_BACKENDS
from repro.reporting.render import render_table
from repro.reporting.tables import table3_rows

from benchmarks.conftest import save_artifact


def _regenerate():
    feasibility = survey(file_size=16 * 1024)
    return table3_rows(feasibility=feasibility)


def test_table3_obr_replying(benchmark, output_dir):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    assert {row.vendor for row in rows} == set(PAPER_OBR_BACKENDS), (
        "Table III membership mismatch"
    )
    azure = next(row for row in rows if row.vendor == "azure")
    assert azure.part_limit == 64, "Azure must cap multipart replies at 64 parts"

    rendered = render_table(
        ["CDN", "Response Format"],
        [
            [
                row.display_name,
                "n-part response (overlapping)"
                + (f", n <= {row.part_limit}" if row.part_limit else ""),
            ]
            for row in rows
        ],
    )
    save_artifact(output_dir, "table3_obr_replying.txt", rendered)
