"""Table I — range forwarding behaviors vulnerable to the SBR attack.

Probes all 13 vendors with the ABNF-generated range corpus and
classifies each vendor's forwarding policies, reproducing Table I's
membership (all 13 vulnerable) and per-format policy entries.
"""

from repro.core.feasibility import survey
from repro.reporting.paper_values import PAPER_SBR_VULNERABLE
from repro.reporting.render import render_table
from repro.reporting.tables import table1_rows

from benchmarks.conftest import save_artifact


def _regenerate():
    feasibility = survey(file_size=16 * 1024)
    return table1_rows(feasibility=feasibility)


def test_table1_sbr_feasibility(benchmark, output_dir):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    vulnerable = {row.vendor for row in rows if row.vulnerable}
    assert vulnerable == set(PAPER_SBR_VULNERABLE), (
        "Table I membership mismatch: every examined CDN must be "
        "SBR-vulnerable"
    )

    rendered = render_table(
        ["CDN", "Vulnerable", "Vulnerable Range Format -> Policy"],
        [
            [
                row.display_name,
                "yes" if row.vulnerable else "no",
                "; ".join(f"{fmt} ({policy})" for fmt, policy in row.vulnerable_formats),
            ]
            for row in rows
        ],
    )
    save_artifact(output_dir, "table1_sbr_feasibility.txt", rendered)
