"""Ablation — §VI-C mitigations applied to the most vulnerable profiles.

Not a paper table: this quantifies each proposed mitigation's effect on
the headline numbers, isolating the design choices DESIGN.md calls out:

* Laziness (G-Core's deployed fix) vs the SBR attack;
* bounded +8 KB expansion vs the SBR attack;
* the RFC 7233 §6.1 overlap guard (CDN77's deployed fix) vs the OBR
  attack.
"""

from repro.cdn.vendors import create_profile
from repro.core.deployment import CdnSpec, Deployment
from repro.core.obr import ObrAttack
from repro.core.sbr import SbrAttack
from repro.defense.mitigations import (
    with_bounded_expansion,
    with_laziness,
    with_overlap_rejection,
    with_slicing,
)
from repro.origin.server import OriginServer
from repro.reporting.render import render_table

from benchmarks.conftest import save_artifact

MB = 1 << 20


def _sbr_factor_with_profile(profile, size=10 * MB):
    origin = OriginServer()
    origin.add_synthetic_resource("/target.bin", size)
    deployment = Deployment.single(CdnSpec(profile=profile), origin)
    result = deployment.client().get("/target.bin?cb=0", range_value="bytes=0-0")
    from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN

    origin_bytes = deployment.response_traffic(CDN_ORIGIN)
    client_bytes = deployment.response_traffic(CLIENT_CDN)
    return origin_bytes / client_bytes if client_bytes else 0.0


def _obr_factor_with_mitigated_bcdn(mitigate):
    attack = ObrAttack("cloudflare", "akamai")
    original_build = attack.build_deployment

    def build():
        deployment = original_build()
        if mitigate:
            deployment.nodes[1].profile = with_overlap_rejection(
                deployment.nodes[1].profile
            )
        return deployment

    attack.build_deployment = build  # type: ignore[method-assign]
    n = attack.find_max_n()
    if n < 1:
        return 0, 0.0
    return n, attack.run(overlap_count=n).amplification


def _regenerate():
    rows = []

    baseline = SbrAttack("gcore", resource_size=10 * MB).run().amplification
    lazy = _sbr_factor_with_profile(with_laziness(create_profile("gcore")))
    bounded = _sbr_factor_with_profile(with_bounded_expansion(create_profile("gcore")))
    sliced = _sbr_factor_with_profile(
        with_slicing(create_profile("gcore"), slice_size=64 * 1024)
    )
    rows.append(("SBR vs G-Core", "none (vulnerable)", baseline))
    rows.append(("SBR vs G-Core", "laziness", lazy))
    rows.append(("SBR vs G-Core", "bounded expansion (+8KB)", bounded))
    rows.append(("SBR vs G-Core", "slicing (64KB slices)", sliced))

    n_vulnerable, obr_baseline = _obr_factor_with_mitigated_bcdn(mitigate=False)
    n_mitigated, obr_mitigated = _obr_factor_with_mitigated_bcdn(mitigate=True)
    rows.append(
        (f"OBR Cloudflare->Akamai (n={n_vulnerable})", "none (vulnerable)", obr_baseline)
    )
    rows.append(
        (f"OBR Cloudflare->Akamai (n={n_mitigated})", "RFC7233 6.1 guard", obr_mitigated)
    )
    return rows


def test_ablation_mitigations(benchmark, output_dir):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    by_key = {(attack, mitigation): factor for attack, mitigation, factor in rows}

    baseline = by_key[("SBR vs G-Core", "none (vulnerable)")]
    assert baseline > 10_000
    assert by_key[("SBR vs G-Core", "laziness")] < 3
    assert by_key[("SBR vs G-Core", "bounded expansion (+8KB)")] < 20
    # Slicing bounds the pull to one slice: ~64KB/600B ~ 110x, and
    # size-independent (vs 17600x vulnerable at 10 MB).
    assert by_key[("SBR vs G-Core", "slicing (64KB slices)")] < 150

    obr_rows = [(a, m, f) for a, m, f in rows if a.startswith("OBR")]
    assert obr_rows[0][2] > 1000   # vulnerable
    assert obr_rows[1][2] < 5      # mitigated

    rendered = render_table(
        ["Attack", "Mitigation", "Amplification"],
        [[attack, mitigation, f"{factor:.2f}"] for attack, mitigation, factor in rows],
    )
    save_artifact(output_dir, "ablation_mitigations.txt", rendered)
