"""Shared benchmark helpers.

Every ``bench_*`` module regenerates one of the paper's tables or
figures.  Besides timing the regeneration with pytest-benchmark, each
bench renders its artifact to ``benchmarks/output/`` so a run leaves the
full paper-vs-measured record on disk (EXPERIMENTS.md links there).

The sweep benches regenerate through :mod:`repro.runner` by default
(worker count from ``REPRO_BENCH_WORKERS``, else the cpu count).  Set
``REPRO_BENCH_SERIAL=1`` — or the runner's own ``REPRO_RUNNER_SERIAL=1``
— to force the legacy serial in-process path; results are identical
either way (see ``tests/runner/test_equivalence.py``).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"

#: Benchmark-level serial escape hatch.
BENCH_SERIAL_ENV = "REPRO_BENCH_SERIAL"
#: Worker count override for the bench runner.
BENCH_WORKERS_ENV = "REPRO_BENCH_WORKERS"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def benchmark_runner() -> Optional[object]:
    """The GridRunner sweeps should regenerate through, or ``None``.

    ``None`` (when ``REPRO_BENCH_SERIAL=1``) selects the legacy serial
    in-process loops in ``repro.reporting``.
    """
    if os.environ.get(BENCH_SERIAL_ENV, "").strip() not in ("", "0"):
        return None
    from repro.runner import GridRunner

    workers_env = os.environ.get(BENCH_WORKERS_ENV, "").strip()
    workers = int(workers_env) if workers_env else None
    return GridRunner(workers=workers)


def save_artifact(output_dir: Path, name: str, content: str) -> None:
    """Write one rendered table/figure and echo it to the terminal.

    The write is atomic (temp file + ``os.replace``) so concurrent bench
    processes — ``pytest -n`` or parallel runner workers sharing the
    output directory — never interleave partial artifacts.
    """
    path = output_dir / name
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{name}.", suffix=".tmp", dir=str(output_dir)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(content)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    print(f"\n=== {name} ===\n{content}")
