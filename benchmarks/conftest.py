"""Shared benchmark helpers.

Every ``bench_*`` module regenerates one of the paper's tables or
figures.  Besides timing the regeneration with pytest-benchmark, each
bench renders its artifact to ``benchmarks/output/`` so a run leaves the
full paper-vs-measured record on disk (EXPERIMENTS.md links there).
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_artifact(output_dir: Path, name: str, content: str) -> None:
    """Write one rendered table/figure and echo it to the terminal."""
    path = output_dir / name
    path.write_text(content, encoding="utf-8")
    print(f"\n=== {name} ===\n{content}")
