"""Table V — maximum OBR amplification per FCDN x BCDN combination.

For each of the 11 usable combinations: search the largest overlap count
that survives both CDNs' header limits (the paper's max n), run the
attack once, and measure per-segment traffic and amplification.
"""

from repro.reporting.paper_values import PAPER_TABLE5
from repro.reporting.render import render_table
from repro.reporting.tables import table5_rows

from benchmarks.conftest import benchmark_runner, save_artifact

#: Tolerances: max n falls out of header-limit arithmetic (tight);
#: traffic and factor absorb the capture-model difference (see
#: EXPERIMENTS.md).  The Azure-BCDN rows move only ~64 small parts, so
#: the paper's per-packet capture overhead is a visibly larger share of
#: the total there.
MAX_N_TOLERANCE = 0.01
TRAFFIC_TOLERANCE = 0.06
AZURE_TRAFFIC_TOLERANCE = 0.16
FACTOR_TOLERANCE = 0.35


def _regenerate():
    return table5_rows(runner=benchmark_runner())


def test_table5_obr_factors(benchmark, output_dir):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    assert len(rows) == 11
    rendered_rows = []
    for row in rows:
        paper_n, paper_bo, paper_fb, paper_factor = PAPER_TABLE5[(row.fcdn, row.bcdn)]
        assert abs(row.max_n - paper_n) <= max(2, paper_n * MAX_N_TOLERANCE), (
            f"{row.fcdn}->{row.bcdn}: max n {row.max_n} vs paper {paper_n}"
        )
        traffic_tolerance = (
            AZURE_TRAFFIC_TOLERANCE if row.bcdn == "azure" else TRAFFIC_TOLERANCE
        )
        assert abs(row.fcdn_bcdn_traffic - paper_fb) <= paper_fb * traffic_tolerance, (
            f"{row.fcdn}->{row.bcdn}: fcdn-bcdn {row.fcdn_bcdn_traffic} vs {paper_fb}"
        )
        assert abs(row.factor - paper_factor) <= paper_factor * FACTOR_TOLERANCE, (
            f"{row.fcdn}->{row.bcdn}: factor {row.factor:.0f} vs {paper_factor}"
        )
        rendered_rows.append(
            [
                row.fcdn,
                row.bcdn,
                row.exploited_case_prefix,
                f"{row.max_n} (paper {paper_n})",
                f"{row.bcdn_origin_traffic}B (paper {paper_bo}B)",
                f"{row.fcdn_bcdn_traffic}B (paper {paper_fb}B)",
                f"{row.factor:.2f} (paper {paper_factor})",
            ]
        )

    rendered = render_table(
        [
            "FCDN",
            "BCDN",
            "Exploited Range Case",
            "Max n",
            "Server->BCDN",
            "BCDN->FCDN",
            "Amplification",
        ],
        rendered_rows,
    )
    save_artifact(output_dir, "table5_obr_factors.txt", rendered)
