#!/usr/bin/env python3
"""Regenerate the paper's feasibility tables (Tables I-III) as text.

Probes each simulated CDN with the ABNF-generated range corpus, diffs
what the client sent against what the origin received, and classifies
every vendor's forwarding and replying policies — the paper's first
experiment.

Usage::

    python examples/feasibility_survey.py
"""

from repro.core.feasibility import survey
from repro.reporting.render import render_table
from repro.reporting.tables import table1_rows, table2_rows, table3_rows


def main() -> None:
    print("Probing all 13 vendors with the generated range corpus...\n")
    feasibility = survey(file_size=16 * 1024)

    print("Table I — range forwarding behaviors vulnerable to the SBR attack")
    print(
        render_table(
            ["CDN", "Vulnerable", "Format -> Policy"],
            [
                [
                    row.display_name,
                    "yes" if row.vulnerable else "no",
                    "; ".join(f"{f} ({p})" for f, p in row.vulnerable_formats),
                ]
                for row in table1_rows(feasibility=feasibility)
            ],
        )
    )

    print("\nTable II — forwarding behaviors vulnerable to the OBR attack (FCDNs)")
    print(
        render_table(
            ["CDN", "Lazy Multi-Range Formats", "Conditional"],
            [
                [
                    row.display_name,
                    "; ".join(row.lazy_formats),
                    "(*) bypass rule" if feasibility[row.vendor].obr_fcdn_conditional else "",
                ]
                for row in table2_rows(feasibility=feasibility)
            ],
        )
    )

    print("\nTable III — replying behaviors vulnerable to the OBR attack (BCDNs)")
    print(
        render_table(
            ["CDN", "Response Format"],
            [
                [
                    row.display_name,
                    "n-part response (overlapping)"
                    + (f", n <= {row.part_limit}" if row.part_limit else ""),
                ]
                for row in table3_rows(feasibility=feasibility)
            ],
        )
    )


if __name__ == "__main__":
    main()
