#!/usr/bin/env python3
"""Reproduce Fig 7: origin-uplink saturation under a sustained SBR flood.

Simulates m = 1..15 concurrent attack requests per second for 30 seconds
against a 1000 Mbps origin uplink (10 MB resource through Cloudflare)
and prints the per-m steady-state throughput plus a sparkline of the
origin's outgoing bandwidth over time.

Usage::

    python examples/bandwidth_flood.py
"""

from repro import BandwidthAttackSimulation
from repro.reporting.render import render_sparkline

MB = 1 << 20


def main() -> None:
    simulation = BandwidthAttackSimulation(vendor="cloudflare", resource_size=10 * MB)
    origin_bytes, client_bytes = simulation.per_request_traffic()
    print(
        f"One SBR request moves {origin_bytes} bytes out of the origin and "
        f"{client_bytes} bytes to the attacker.\n"
    )
    print(" m | steady origin Mbps | client peak Kbps | origin Mbps over 40s")
    print("---+--------------------+------------------+" + "-" * 32)
    for result in simulation.sweep():
        marker = " <- saturated" if result.saturated else ""
        print(
            f"{result.m:2d} | {result.steady_origin_mbps:18.1f} | "
            f"{result.peak_client_kbps:16.1f} | "
            f"{render_sparkline(result.origin_mbps, width=30)}{marker}"
        )
    threshold = simulation.saturation_threshold()
    print(
        f"\nThe 1000 Mbps uplink pins at capacity from m = {threshold} "
        f"(paper: nearly saturated from m = 11, exhausted from m = 14)."
    )


if __name__ == "__main__":
    main()
