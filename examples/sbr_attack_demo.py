#!/usr/bin/env python3
"""SBR attack deep-dive: per-vendor factors, the size sweep, and why
cache busting is load-bearing.

Usage::

    python examples/sbr_attack_demo.py [vendor]

With no argument, sweeps all 13 vendors at 1/10/25 MB (Table IV).  With
a vendor name (e.g. ``akamai``), additionally plots the vendor's Fig 6a
curve and demonstrates the cache-busting requirement and the safe
configuration, where the vendor has one.
"""

import sys

from repro import SbrAttack, all_vendor_names, exploited_range_cases
from repro.cdn.vendors.base import VendorConfig
from repro.core.deployment import Deployment
from repro.netsim.tap import CDN_ORIGIN
from repro.origin.server import OriginServer
from repro.reporting.render import render_sparkline, render_table

MB = 1 << 20


def sweep_all_vendors() -> None:
    rows = []
    for vendor in all_vendor_names():
        factors = [
            SbrAttack(vendor, resource_size=size).run().amplification
            for size in (1 * MB, 10 * MB, 25 * MB)
        ]
        cases = " & ".join(exploited_range_cases(vendor, 25 * MB))
        rows.append([vendor, cases, *(f"{f:.0f}" for f in factors)])
    print(render_table(["CDN", "exploited case (25MB)", "1MB", "10MB", "25MB"], rows))


def vendor_curve(vendor: str) -> None:
    sizes = [m * MB for m in range(1, 26)]
    factors = [
        SbrAttack(vendor, resource_size=size).run().amplification for size in sizes
    ]
    print(f"\nFig 6a curve for {vendor} (1..25 MB):")
    print("  " + render_sparkline(factors, width=50))
    print(f"  1 MB: {factors[0]:.0f}x   25 MB: {factors[-1]:.0f}x")


def cache_busting_matters(vendor: str) -> None:
    """Without busting, the second request is a cache hit: no origin
    traffic, no amplification."""
    origin = OriginServer()
    origin.add_synthetic_resource("/target.bin", 10 * MB)
    deployment = Deployment.single(vendor, origin)
    client = deployment.client()

    client.get("/target.bin", range_value="bytes=0-0")
    after_first = deployment.response_traffic(CDN_ORIGIN)
    for _ in range(9):
        client.get("/target.bin", range_value="bytes=0-0")
    after_ten = deployment.response_traffic(CDN_ORIGIN)

    print(f"\nCache busting ({vendor}):")
    print(f"  10 identical requests -> origin traffic {after_ten} bytes "
          f"(same as 1 request: {after_first == after_ten})")

    busted = SbrAttack(vendor, resource_size=10 * MB).run(rounds=10)
    print(f"  10 cache-busted requests -> origin traffic {busted.origin_traffic} bytes")


def safe_configuration(vendor: str) -> None:
    safe = {
        "alibaba": VendorConfig(origin_range_option=True),
        "tencent": VendorConfig(origin_range_option=True),
        "huawei": VendorConfig(origin_range_option=False),
        "cloudflare": VendorConfig(cacheable=False),
    }.get(vendor)
    if safe is None:
        return
    vulnerable = SbrAttack(vendor, resource_size=10 * MB).run().amplification
    mitigated = SbrAttack(vendor, resource_size=10 * MB, config=safe).run().amplification
    print(f"\nConfiguration gate ({vendor}):")
    print(f"  default (vulnerable) config: {vulnerable:.0f}x")
    print(f"  safe config:                 {mitigated:.1f}x")


def main() -> None:
    sweep_all_vendors()
    if len(sys.argv) > 1:
        vendor = sys.argv[1]
        if vendor not in all_vendor_names():
            raise SystemExit(f"unknown vendor {vendor!r}; pick from {all_vendor_names()}")
        vendor_curve(vendor)
        cache_busting_matters(vendor)
        safe_configuration(vendor)


if __name__ == "__main__":
    main()
