#!/usr/bin/env python3
"""OBR attack deep-dive: cascading CDNs, the max-n search, and the
attacker's abort trick.

Usage::

    python examples/obr_cascade_demo.py [fcdn bcdn]

With no arguments, measures all 11 vulnerable combinations (Table V).
With a pair (e.g. ``cloudflare akamai``), walks through one combination
step by step: probing the header limits for max n, running the attack,
and showing the per-segment traffic asymmetry.
"""

import sys

from repro import ObrAttack, vulnerable_combinations
from repro.reporting.render import format_bytes, render_table


def sweep_all_combinations() -> None:
    rows = []
    for fcdn, bcdn in vulnerable_combinations():
        result = ObrAttack(fcdn, bcdn).run()
        rows.append(
            [
                fcdn,
                bcdn,
                result.overlap_count,
                format_bytes(result.bcdn_origin_traffic),
                format_bytes(result.fcdn_bcdn_traffic),
                f"{result.amplification:.1f}x",
            ]
        )
    print(
        render_table(
            ["FCDN", "BCDN", "max n", "origin->BCDN", "BCDN->FCDN", "amplification"],
            rows,
        )
    )


def walkthrough(fcdn: str, bcdn: str) -> None:
    attack = ObrAttack(fcdn, bcdn)

    print(f"Probing {fcdn} -> {bcdn} for the largest accepted overlap count...")
    for n in (64, 1024, 8192, 16384):
        status = attack.probe(n)
        print(f"  n={n:6d}: HTTP {status}")
    max_n = attack.find_max_n()
    print(f"  binary search result: max n = {max_n}")

    result = attack.run(overlap_count=max_n)
    header = attack.range_value(min(4, max_n))
    print(f"\nAttack request: Range: {header},...  ({max_n} ranges, "
          f"{result.range_value_size} header bytes)")
    print("Traffic per segment (response direction):")
    print(f"  origin -> BCDN:     {format_bytes(result.bcdn_origin_traffic)}  "
          f"(one full fetch of the 1 KB target)")
    print(f"  BCDN  -> FCDN:      {format_bytes(result.fcdn_bcdn_traffic)}  "
          f"({max_n}-part multipart/byteranges)")
    print(f"  FCDN  -> attacker:  {format_bytes(result.client_traffic)}  "
          f"(connection aborted after ~2 KB)")
    print(f"Amplification on the inter-CDN link: {result.amplification:.1f}x")


def main() -> None:
    if len(sys.argv) == 3:
        walkthrough(sys.argv[1], sys.argv[2])
    else:
        sweep_all_combinations()


if __name__ == "__main__":
    main()
