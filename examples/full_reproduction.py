#!/usr/bin/env python3
"""Regenerate the paper's full table/figure record in one command.

Writes every artifact (plain text + markdown) into a report directory.

Usage::

    python examples/full_reproduction.py [output_dir] [--quick]

``--quick`` trims the sweeps for a fast smoke run.
"""

import sys
from pathlib import Path

from repro.reporting.summary import generate_full_report


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--quick"]
    quick = "--quick" in sys.argv[1:]
    output_dir = Path(args[0]) if args else Path("report")
    print(f"Regenerating the paper's tables and figures into {output_dir}/ "
          f"({'quick' if quick else 'full'} mode)...")
    written = generate_full_report(output_dir, quick=quick)
    for path in written:
        print(f"  wrote {path}")
    print("\nSide-by-side paper-vs-measured commentary lives in EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
