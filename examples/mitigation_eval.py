#!/usr/bin/env python3
"""Evaluate the paper's §VI-C mitigations and the detection heuristics.

Shows, for each proposed fix, the before/after amplification factor —
and runs the RangeAmp detector against both an attack stream and a
benign video-player stream to illustrate the paper's point that
origin-side detection is possible but delicate.

Usage::

    python examples/mitigation_eval.py
"""

from repro import (
    ObrAttack,
    RangeAmpDetector,
    SbrAttack,
    create_profile,
    with_bounded_expansion,
    with_laziness,
    with_overlap_rejection,
)
from repro.core.cachebusting import CacheBuster
from repro.core.deployment import CdnSpec, Deployment
from repro.http.message import HttpRequest
from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN
from repro.origin.server import OriginServer
from repro.reporting.render import render_table

MB = 1 << 20


def _sbr_factor(profile) -> float:
    origin = OriginServer()
    origin.add_synthetic_resource("/target.bin", 10 * MB)
    deployment = Deployment.single(CdnSpec(profile=profile), origin)
    deployment.client().get("/target.bin?cb=0", range_value="bytes=0-0")
    client = deployment.response_traffic(CLIENT_CDN)
    return deployment.response_traffic(CDN_ORIGIN) / client if client else 0.0


def mitigations() -> None:
    baseline = SbrAttack("gcore", resource_size=10 * MB).run().amplification
    lazy = _sbr_factor(with_laziness(create_profile("gcore")))
    bounded = _sbr_factor(with_bounded_expansion(create_profile("gcore")))

    obr = ObrAttack("cloudflare", "akamai")
    obr_baseline = obr.run().amplification

    guarded = ObrAttack("cloudflare", "akamai")
    original_build = guarded.build_deployment

    def build_with_guard():
        deployment = original_build()
        deployment.nodes[1].profile = with_overlap_rejection(deployment.nodes[1].profile)
        return deployment

    guarded.build_deployment = build_with_guard  # type: ignore[method-assign]
    guarded_n = guarded.find_max_n()
    obr_guarded = (
        guarded.run(overlap_count=guarded_n).amplification if guarded_n else 0.0
    )

    print(
        render_table(
            ["Attack", "Mitigation (paper §VI-C)", "Amplification"],
            [
                ["SBR vs G-Core @10MB", "none", f"{baseline:.0f}x"],
                ["SBR vs G-Core @10MB", "Laziness ('slice' option)", f"{lazy:.1f}x"],
                ["SBR vs G-Core @10MB", "bounded expansion (+8KB)", f"{bounded:.1f}x"],
                ["OBR Cloudflare->Akamai", "none", f"{obr_baseline:.0f}x"],
                [
                    "OBR Cloudflare->Akamai",
                    f"RFC7233 §6.1 guard (max n={guarded_n})",
                    f"{obr_guarded:.1f}x",
                ],
            ],
        )
    )


def detection() -> None:
    detector = RangeAmpDetector()

    # An SBR attacker: tiny ranges at ever-changing query strings.
    buster = CacheBuster()
    for _ in range(30):
        detector.observe(
            "203.0.113.66",
            HttpRequest(
                "GET",
                buster.bust("/10MB.bin"),
                headers=[("Host", "victim.example"), ("Range", "bytes=0-0")],
            ),
        )

    # A benign video player: small ranges, but one stable URL.
    for start in range(0, 30 * 65536, 65536):
        detector.observe(
            "198.51.100.9",
            HttpRequest(
                "GET",
                "/movie.mp4",
                headers=[("Host", "victim.example"),
                         ("Range", f"bytes={start}-{start + 65535}")],
            ),
        )

    print("\nDetector verdicts:")
    for client in ("203.0.113.66", "198.51.100.9"):
        verdict = detector.verdict(client)
        label = "SUSPICIOUS" if verdict.suspicious else "clean"
        print(f"  {client}: {label}")
        for reason in verdict.reasons:
            print(f"    - {reason}")


def main() -> None:
    mitigations()
    detection()


if __name__ == "__main__":
    main()
