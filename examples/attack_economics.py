#!/usr/bin/env python3
"""Project the monetary damage of RangeAmp campaigns (paper §V-E).

Most CDNs bill their customers per delivered gigabyte, so an SBR
attacker runs up the victim's CDN bill while paying almost nothing.
This example projects one hour of attack at 10 requests/second against
every vendor, plus an OBR inter-CDN burn estimate.

Usage::

    python examples/attack_economics.py
"""

from repro.cdn.vendors import all_vendor_names
from repro.core.economics import estimate_obr_campaign, estimate_sbr_campaign
from repro.reporting.render import format_bytes, render_table

MB = 1 << 20


def main() -> None:
    print("SBR campaigns: 10 req/s for 1 hour, 25 MB target resource\n")
    rows = []
    for vendor in all_vendor_names():
        campaign = estimate_sbr_campaign(
            vendor,
            resource_size=25 * MB,
            requests_per_second=10.0,
            duration_seconds=3600.0,
        )
        rows.append(
            [
                vendor,
                format_bytes(campaign.victim_bytes),
                f"{campaign.victim_bandwidth_mbps:.0f} Mbps",
                format_bytes(campaign.attacker_bytes),
                f"${campaign.victim_cost_usd:,.2f}"
                if campaign.rate_usd_per_gb
                else "flat-rate plan",
                f"{campaign.saturating_rate(1000.0):.1f} req/s",
            ]
        )
    print(
        render_table(
            [
                "CDN",
                "victim traffic",
                "victim egress",
                "attacker traffic",
                "victim bill (1h)",
                "rate to pin 1Gbps",
            ],
            rows,
        )
    )

    print("\nOBR campaign: Cloudflare -> Akamai at max n, 10 req/s for 1 hour\n")
    campaign = estimate_obr_campaign(
        "cloudflare", "akamai", requests_per_second=10.0, duration_seconds=3600.0
    )
    print(f"  inter-CDN traffic burned: {format_bytes(campaign.victim_bytes)} "
          f"({campaign.victim_bandwidth_mbps:.0f} Mbps sustained)")
    print(f"  attacker-side traffic:    {format_bytes(campaign.attacker_bytes)}")
    print(f"  traffic billed at Akamai rates: ${campaign.victim_cost_usd:,.2f}")


if __name__ == "__main__":
    main()
