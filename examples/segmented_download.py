#!/usr/bin/env python3
"""The benign side of range requests: segmented download and resume.

Range requests exist for multi-thread downloading and break-point
resume (paper §II-B) — the same mechanism the attacks abuse.  This
example runs both workloads through a simulated CDN and shows why the
blunt mitigation ("just disable Range") has a real cost.

Usage::

    python examples/segmented_download.py
"""

from repro import CdnSpec, Deployment, OriginServer, create_profile, with_laziness
from repro.clienttools.downloader import ResumingDownload, SegmentedDownloader
from repro.netsim.tap import CDN_ORIGIN
from repro.origin.resource import Resource
from repro.reporting.render import format_bytes

MB = 1 << 20


def _deployment(profile=None):
    origin = OriginServer()
    origin.add_resource(Resource(path="/dataset.zip", body=8 * MB))
    spec = CdnSpec(profile=profile) if profile else "gcore"
    return Deployment.single(spec, origin)


def main() -> None:
    # --- segmented ("multi-thread") download ------------------------------
    deployment = _deployment()
    report = SegmentedDownloader(deployment, segments=8).download("/dataset.zip")
    fetches = deployment.ledger.segment_stats(CDN_ORIGIN).exchange_count
    print("Segmented download of an 8 MB resource through G-Core:")
    print(f"  segments: 8, requests: {report.requests_sent}, "
          f"received {format_bytes(report.bytes_received)}")
    print(f"  origin fetches: {fetches} "
          f"(the Deletion policy filled the edge cache on the first segment)")
    print(f"  integrity: {'OK' if report.total_length == 8 * MB else 'FAILED'}")

    # --- break-point resume -------------------------------------------------
    deployment = _deployment()
    report = ResumingDownload(deployment, chunk_size=2 * MB).download(
        "/dataset.zip", interrupt_percent=0.35
    )
    print("\nResume after an interrupted transfer (cut at 35% of chunk 1):")
    print(f"  requests: {report.requests_sent}, "
          f"received {format_bytes(report.bytes_received)}, "
          f"overhead ratio {report.overhead_ratio:.3f}")

    # --- the mitigated CDN still serves both workloads -----------------------
    deployment = _deployment(profile=with_laziness(create_profile("gcore")))
    report = SegmentedDownloader(deployment, segments=8).download("/dataset.zip")
    fetches = deployment.ledger.segment_stats(CDN_ORIGIN).exchange_count
    print("\nSame segmented download through the Laziness-mitigated G-Core:")
    print(f"  integrity: {'OK' if report.total_length == 8 * MB else 'FAILED'}; "
          f"origin fetches: {fetches} "
          f"(every segment goes back to origin — the mitigation's cost)")


if __name__ == "__main__":
    main()
