#!/usr/bin/env python3
"""Quickstart: the two RangeAmp attacks in a dozen lines each.

Runs the SBR attack (tiny range in, whole resource out of the origin)
against a simulated Akamai edge, and the OBR attack (n overlapping
ranges, n-part multipart between two CDNs) through a simulated
Cloudflare -> Akamai cascade.

Usage::

    python examples/quickstart.py
"""

from repro import ObrAttack, SbrAttack

MB = 1 << 20


def main() -> None:
    # --- SBR: one request, ~43000x amplification at 25 MB -----------------
    sbr = SbrAttack("akamai", resource_size=25 * MB).run()
    print("SBR attack against an origin behind Akamai")
    print(f"  attacker sent:      Range: bytes=0-0 (one request)")
    print(f"  attacker received:  {sbr.client_traffic} bytes")
    print(f"  origin pushed out:  {sbr.origin_traffic} bytes")
    print(f"  amplification:      {sbr.amplification:.0f}x  (paper: 43093x)")
    print()

    # --- OBR: one request, thousands-fold inter-CDN amplification ---------
    obr = ObrAttack("cloudflare", "akamai").run()
    print("OBR attack through a Cloudflare -> Akamai cascade (1 KB target)")
    print(f"  overlapping ranges (max n): {obr.overlap_count}  (paper: 10750)")
    print(f"  origin -> BCDN:             {obr.bcdn_origin_traffic} bytes")
    print(f"  BCDN -> FCDN:               {obr.fcdn_bcdn_traffic} bytes")
    print(f"  attacker received:          {obr.client_traffic} bytes (aborted early)")
    print(f"  amplification:              {obr.amplification:.0f}x  (paper: 7433x)")


if __name__ == "__main__":
    main()
