"""The asyncio edge: sockets, queueing, drain; wall time lives here.

:class:`ServeServer` glues :class:`~repro.serve.app.AnalysisService` to
``asyncio.start_server``.  Responsibilities split cleanly:

* the **service** decides what any request means (and is fully
  deterministic under its injected clock);
* the **server** owns connections, the admission futures (who waits,
  who is promoted, in what order), worker threads, and the drain
  protocol.

DoS posture at this layer: a read timeout kills slowloris connections,
``readuntil`` with a byte limit caps header blocks, ``Content-Length``
is checked *before* the body is read, and every batch request passes
through admission control before any JSON is parsed.

Graceful drain (SIGTERM/SIGINT): stop accepting, flip ``/readyz`` to
503, let in-flight and queued work finish or deadline out within
``drain_grace_s``, flush a :class:`~repro.obs.runlog.RunRecord` with
the session's metrics to the run ledger, and exit 0.
"""

from __future__ import annotations

import asyncio
import signal
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, Optional, Union

from repro.errors import MessageError
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.status import StatusCode
from repro.http.wire import parse_request
from repro.serve.admission import ADMIT, ENQUEUE, AdmissionDecision
from repro.serve.app import AnalysisService, _json_response

#: Maximum bytes of request head (request line + headers).
MAX_HEADER_BYTES = 16 * 1024
#: Seconds a client may dawdle over sending its request head/body.
READ_TIMEOUT_S = 10.0

_BATCH_PATHS = ("/v1/analyze", "/v1/recommend")


class ServeServer:
    """One listening socket in front of one :class:`AnalysisService`."""

    def __init__(
        self,
        service: AnalysisService,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        runlog: Optional[str] = None,
        drain_grace_s: float = 10.0,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.service = service
        self.host = host
        self.requested_port = port
        self.workers = workers
        self.runlog = runlog
        self.drain_grace_s = drain_grace_s
        #: Only used to timestamp the drain RunRecord; ``None`` defers
        #: to the ledger's default wall clock.
        self.wall_clock = wall_clock
        self._server: Optional[asyncio.AbstractServer] = None
        # Batch work always runs on worker threads — even with one
        # worker — so a slow exact simulation can never stall the event
        # loop (health probes, socket reads, queue-wait timers).
        self._pool = ThreadPoolExecutor(max_workers=workers)
        self._waiters: Deque["asyncio.Future[None]"] = deque()
        self._open_connections = 0
        self._draining = False
        self._drain_event: Optional[asyncio.Event] = None
        self._started_at_mono = 0.0

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``--port 0`` to the real one)."""
        server = self._server
        if not isinstance(server, asyncio.Server) or not server.sockets:
            return self.requested_port
        return int(server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        self._drain_event = asyncio.Event()
        self._started_at_mono = self.service.clock()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self.requested_port,
            limit=MAX_HEADER_BYTES,
        )

    def initiate_drain(self) -> None:
        """Stop accepting; let the in-flight work finish or deadline out."""
        if self._draining:
            return
        self._draining = True
        self.service.draining = True
        if self._server is not None:
            self._server.close()
        if self._drain_event is not None:
            self._drain_event.set()

    async def run_until_drained(self, announce: bool = True) -> int:
        """Serve until SIGTERM/SIGINT, drain gracefully, return 0."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.initiate_drain)
            except (NotImplementedError, RuntimeError):
                pass
        if announce:
            print(f"repro serve: listening on {self.host}:{self.port}", flush=True)
        assert self._drain_event is not None
        await self._drain_event.wait()
        assert self._server is not None
        await self._server.wait_closed()
        await self._await_quiescence()
        self._pool.shutdown(wait=True)
        self.flush_run_record()
        if announce:
            print("repro serve: drained", flush=True)
        return 0

    async def _await_quiescence(self) -> None:
        clock = self.service.clock
        deadline = clock() + self.drain_grace_s
        admission = self.service.admission
        while clock() < deadline:
            if (
                admission.inflight == 0
                and admission.queued == 0
                and self._open_connections == 0
            ):
                return
            await asyncio.sleep(0.02)

    def flush_run_record(self) -> None:
        """Append this session's RunRecord to the ledger (if configured)."""
        if self.runlog is None:
            return
        from repro.obs.runlog import RunLedger, record_from_serve

        self.service.refresh_gauges()
        record = record_from_serve(
            config=self.describe_config(),
            wall_s=max(0.0, self.service.clock() - self._started_at_mono),
            requests_total=int(
                self.service.admission.admitted_total
                + self.service.admission.shed_total
            ),
            metrics=self.service.metrics.snapshot(),
            clock=self.wall_clock,
        )
        RunLedger(self.runlog).append(record)

    def describe_config(self) -> Dict[str, Any]:
        config = self.service.config
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "max_inflight": config.max_inflight,
            "queue_depth": config.queue_depth,
            "default_deadline_ms": config.default_deadline_ms,
            "rate_capacity": config.rate_capacity,
            "rate_refill": config.rate_refill,
        }

    # -- connection handling ------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._open_connections += 1
        try:
            response = await self._respond(reader)
            if response is not None:
                writer.write(response.serialize())
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._open_connections -= 1
            try:
                writer.close()
            except Exception:
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Optional[HttpResponse]:
        request = await self._read_request(reader)
        if isinstance(request, HttpResponse):
            return request  # an early protocol-level error response
        if request is None:
            return None  # client went away; nothing to say
        try:
            return await self._dispatch(request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            return _json_response(
                StatusCode.INTERNAL_SERVER_ERROR,
                {"error": f"internal error: {type(exc).__name__}"},
            )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Union[HttpRequest, HttpResponse, None]:
        """One request off the wire, or an error HttpResponse, or None."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=READ_TIMEOUT_S
            )
        except asyncio.IncompleteReadError:
            return None
        except (asyncio.TimeoutError, asyncio.LimitOverrunError):
            return _json_response(
                StatusCode.REQUEST_HEADER_FIELDS_TOO_LARGE,
                {"error": "request head too large or too slow"},
            )
        # Peek at the header block for the body's framing *before*
        # reading (and bounding) the body itself.
        _, _, header_blob = head[:-4].partition(b"\r\n")
        try:
            headers = Headers.parse(header_blob + b"\r\n" if header_blob else b"")
        except MessageError as exc:
            return _json_response(
                StatusCode.BAD_REQUEST, {"error": f"malformed request: {exc}"}
            )
        declared = headers.get_int("Content-Length")
        body = b""
        if declared is not None and declared > 0:
            if declared > self.service.config.max_body_bytes:
                return _json_response(
                    StatusCode.PAYLOAD_TOO_LARGE,
                    {
                        "error": (
                            f"body exceeds {self.service.config.max_body_bytes}"
                            " bytes"
                        )
                    },
                )
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(declared), timeout=READ_TIMEOUT_S
                )
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                return None
        try:
            return parse_request(head + body)
        except MessageError as exc:
            return _json_response(
                StatusCode.BAD_REQUEST, {"error": f"malformed request: {exc}"}
            )

    # -- dispatch with admission --------------------------------------------

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        if request.method == "POST" and request.path in _BATCH_PATHS:
            return await self._dispatch_batch(request)
        return self.service.handle(request)

    async def _dispatch_batch(self, request: HttpRequest) -> HttpResponse:
        admission = self.service.admission
        if self._draining:
            return _json_response(
                StatusCode.SERVICE_UNAVAILABLE,
                {"error": "draining"},
                extra_headers=(("Retry-After", "1"),),
            )
        decision = admission.decide(self.service.clock())
        if decision.outcome == ENQUEUE:
            admitted = await self._wait_in_queue()
            if not admitted:
                decision = AdmissionDecision(
                    "shed",
                    retry_after_s=admission.estimated_wait_s(admission.queued + 1),
                    reason="queue-timeout",
                )
                return self.service.shed_response(request, decision)
        elif decision.outcome != ADMIT:
            return self.service.shed_response(request, decision)
        started = self.service.clock()
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._pool, self.service.handle, request
            )
        finally:
            admission.release(self.service.clock() - started)
            self._promote_next()

    async def _wait_in_queue(self) -> bool:
        """Park until promoted; False when the wait budget ran out."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[None]" = loop.create_future()
        self._waiters.append(future)
        try:
            await asyncio.wait_for(
                future, timeout=self.service.admission.max_queue_wait_s
            )
            return True
        except asyncio.TimeoutError:
            return self._resolve_queue_timeout(future)

    def _resolve_queue_timeout(self, future: "asyncio.Future[None]") -> bool:
        """Reconcile a queue-wait timeout against concurrent promotion.

        On 3.10/3.11, ``wait_for`` cancels the future and yields to the
        loop before raising, so :meth:`_promote_next` may pop the
        already-cancelled future and skip it without ``promote()``.
        Only a future holding a *result* was really promoted; a
        cancelled one never got the slot and still counts as queued.
        """
        try:
            self._waiters.remove(future)
        except ValueError:
            if not future.cancelled():
                return True  # promoted concurrently: take the slot
        self.service.admission.leave_queue()
        return False

    def _promote_next(self) -> None:
        admission = self.service.admission
        while self._waiters and admission.inflight < admission.max_inflight:
            future = self._waiters.popleft()
            if future.done():
                continue
            admission.promote()
            future.set_result(None)


async def serve_until_drained(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    runlog: Optional[str] = None,
    drain_grace_s: float = 10.0,
) -> int:
    """Convenience wrapper for the CLI: build, run, drain, exit code."""
    server = ServeServer(
        service,
        host=host,
        port=port,
        workers=workers,
        runlog=runlog,
        drain_grace_s=drain_grace_s,
    )
    return await server.run_until_drained()
