"""The analysis service: routing, batch processing, degradation.

:class:`AnalysisService` maps HTTP requests to responses with no I/O of
its own — the asyncio layer (:mod:`repro.serve.server`) feeds it parsed
:class:`~repro.http.message.HttpRequest` objects.  Endpoints:

* ``POST /v1/analyze`` — batch of items, each a vendor (SBR by
  default, CCFC with ``"attack": "ccfc"``) or an FCDN/BCDN pair (OBR);
  answers are the closed-form findings of
  :func:`~repro.analysis.report.analyze_vendor_matrix`, optionally
  augmented with an exact simulated factor (``"exact": true``);
* ``POST /v1/recommend`` — same item shapes; answers add the cheapest
  sufficient mitigation from :func:`~repro.analysis.recommend.recommend`;
* ``GET /healthz`` / ``GET /readyz`` — liveness and drain-aware
  readiness;
* ``GET /metrics`` — Prometheus text exposition of the service registry.

Batch processing is written as a generator that yields once per item:
the synchronous driver (:meth:`AnalysisService.handle`) just drains it,
while the asyncio driver (:meth:`AnalysisService.handle_async`) awaits
between steps, which is what makes deadline expiry and task
cancellation land on item boundaries — never mid-computation, never
with a half-written memo entry.

The exact-simulation path sits behind the circuit breaker.  When the
breaker refuses, or the simulation errors, the item still gets its
closed-form answer plus ``"degraded": true`` — bounds are upper bounds,
so a degraded answer is conservative rather than wrong.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Tuple,
    Union,
    cast,
)

from repro.analysis.recommend import DEFAULT_THRESHOLD, recommend
from repro.analysis.report import AnalysisReport, Finding, analyze_vendor_matrix
from repro.cdn.vendors import all_vendor_names
from repro.defense.ratelimit import TokenBucket
from repro.errors import ReproError
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.status import StatusCode
from repro.obs.metrics import (
    SERVE_BREAKER_STATE,
    SERVE_INFLIGHT,
    SERVE_QUEUE_DEPTH,
    MetricsRegistry,
    use_metrics,
)
from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.breaker import CircuitBreaker
from repro.serve.deadline import (
    DEADLINE_EXCEEDED,
    DEADLINE_HEADER,
    Deadline,
    resolve_deadline_ms,
)
from repro.serve.memo import SharedMemoRegistry

MB = 1 << 20

#: A monotonic clock; wall time never enters the service logic.
Clock = Callable[[], float]
#: (vendor, resource_size) -> measured amplification factor.
ExactRunner = Callable[[str, int], float]

_Result = Tuple[HttpResponse, str]
_Steps = Generator[None, None, _Result]


class ExactSimUnavailable(ReproError):
    """The exact simulation could not produce a usable measurement."""


@dataclass(frozen=True)
class ServeConfig:
    """All service knobs in one injectable bundle."""

    max_inflight: int = 8
    queue_depth: int = 16
    default_deadline_ms: int = 2000
    #: Hard per-request ceiling; ``X-Deadline-Ms`` is clamped to this.
    max_deadline_ms: int = 20000
    #: Token-bucket burst; ``rate_refill <= 0`` disables rate limiting.
    rate_capacity: float = 256.0
    rate_refill: float = 0.0
    max_queue_wait_s: float = 5.0
    max_body_bytes: int = 1 * MB
    max_batch_items: int = 64
    max_resource_size: int = 1 << 30
    #: Exact simulations refuse sizes above this (simulation cost grows
    #: with the resource, and the bounds already cover large sizes).
    exact_max_size: int = 8 * MB
    #: An exact simulation slower than this counts as a breaker failure.
    exact_timeout_s: float = 1.0
    breaker_failure_threshold: int = 3
    breaker_reset_timeout_s: float = 5.0
    breaker_half_open_probes: int = 1
    memo_entries: int = 4096

    def make_bucket(self) -> Optional[TokenBucket]:
        if self.rate_refill <= 0:
            return None
        return TokenBucket(capacity=self.rate_capacity, refill_rate=self.rate_refill)


def _json_body(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _json_response(
    status: int,
    payload: Dict[str, Any],
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> HttpResponse:
    body = _json_body(payload)
    headers = [
        ("Content-Type", "application/json"),
        ("Content-Length", str(len(body))),
        ("Connection", "close"),
    ]
    headers.extend(extra_headers)
    return HttpResponse(status, headers=Headers(headers), body=body)


def _retry_after_header(retry_after_s: float) -> Tuple[str, str]:
    """Format a ``Retry-After`` header: integer seconds, ceiling, >= 1.

    An unbounded wait (bucket can never refill that far) is advertised
    as a long-but-finite backoff rather than infinity.
    """
    if not math.isfinite(retry_after_s):
        seconds = 3600
    else:
        seconds = max(1, math.ceil(retry_after_s))
    return ("Retry-After", str(seconds))


def drive(steps: _Steps) -> _Result:
    """Drain a batch generator synchronously."""
    try:
        while True:
            next(steps)
    except StopIteration as stop:
        return cast(_Result, stop.value)


async def drive_async(steps: _Steps) -> _Result:
    """Drain a batch generator, yielding to the event loop per item."""
    try:
        while True:
            next(steps)
            await asyncio.sleep(0)
    except StopIteration as stop:
        return cast(_Result, stop.value)


@dataclass
class _Item:
    """One validated batch item."""

    kind: str  # "sbr" | "obr" | "ccfc"
    vendor: str = ""
    fcdn: str = ""
    bcdn: str = ""
    size: int = 0
    exact: bool = False
    threshold: float = DEFAULT_THRESHOLD
    error: Optional[str] = None

    @classmethod
    def invalid(cls, message: str) -> "_Item":
        return cls(kind="invalid", error=message)


class AnalysisService:
    """Routing and batch semantics; deterministic under injected clocks."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        clock: Optional[Clock] = None,
        exact_runner: Optional[ExactRunner] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_plan: Optional[Any] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.clock: Clock = clock if clock is not None else time.monotonic
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fault_plan = fault_plan
        self._exact_runner: ExactRunner = (
            exact_runner if exact_runner is not None else self._default_exact
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout_s=self.config.breaker_reset_timeout_s,
            half_open_probes=self.config.breaker_half_open_probes,
        )
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            queue_depth=self.config.queue_depth,
            bucket=self.config.make_bucket(),
            max_queue_wait_s=self.config.max_queue_wait_s,
        )
        self.memo = SharedMemoRegistry(total_entries=self.config.memo_entries)
        self.draining = False
        self._vendors = frozenset(all_vendor_names())

    # -- public drivers -----------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Synchronous entry point: route, process, record metrics."""
        started = self.clock()
        with use_metrics(self.metrics):
            endpoint, routed = self._route(request)
            if isinstance(routed, tuple):
                response, outcome = routed
            else:
                response, outcome = drive(routed)
            self._observe(endpoint, outcome, started)
        return response

    async def handle_async(self, request: HttpRequest) -> HttpResponse:
        """Asyncio entry point: batch work yields to the loop per item,
        so cancellation and concurrent requests interleave cleanly."""
        started = self.clock()
        with use_metrics(self.metrics):
            endpoint, routed = self._route(request)
            if isinstance(routed, tuple):
                response, outcome = routed
            else:
                try:
                    response, outcome = await drive_async(routed)
                except asyncio.CancelledError:
                    self._observe(endpoint, "cancelled", started)
                    raise
            self._observe(endpoint, outcome, started)
        return response

    def shed_response(
        self, request: HttpRequest, decision: AdmissionDecision
    ) -> HttpResponse:
        """The 429 a shed request receives (also records the metric)."""
        endpoint = self._endpoint(request)
        started = self.clock()
        with use_metrics(self.metrics):
            self._observe(endpoint, "shed", started)
        return _json_response(
            StatusCode.TOO_MANY_REQUESTS,
            {"error": "overloaded", "reason": decision.reason},
            extra_headers=(_retry_after_header(decision.retry_after_s),),
        )

    # -- routing ------------------------------------------------------------

    @staticmethod
    def _endpoint(request: HttpRequest) -> str:
        path = request.path
        if path == "/v1/analyze":
            return "analyze"
        if path == "/v1/recommend":
            return "recommend"
        if path in ("/healthz", "/readyz", "/metrics"):
            return path[1:]
        return "other"

    def _route(
        self, request: HttpRequest
    ) -> Tuple[str, Union[_Result, _Steps]]:
        endpoint = self._endpoint(request)
        path = request.path
        if endpoint in ("analyze", "recommend"):
            if request.method != "POST":
                return endpoint, self._error(
                    StatusCode.METHOD_NOT_ALLOWED, f"{path} requires POST"
                )
            return endpoint, self._batch_steps(endpoint, request)
        if endpoint in ("healthz", "readyz", "metrics"):
            if request.method != "GET":
                return endpoint, self._error(
                    StatusCode.METHOD_NOT_ALLOWED, f"{path} requires GET"
                )
            if endpoint == "healthz":
                return endpoint, (
                    _json_response(StatusCode.OK, {"status": "ok"}),
                    "ok",
                )
            if endpoint == "readyz":
                if self.draining:
                    return endpoint, (
                        _json_response(
                            StatusCode.SERVICE_UNAVAILABLE,
                            {"status": "draining"},
                        ),
                        "error",
                    )
                return endpoint, (
                    _json_response(StatusCode.OK, {"status": "ready"}),
                    "ok",
                )
            return endpoint, (self._metrics_response(), "ok")
        return endpoint, self._error(
            StatusCode.NOT_FOUND, f"no such endpoint: {path}"
        )

    @staticmethod
    def _error(status: int, message: str) -> _Result:
        return _json_response(status, {"error": message}), "error"

    def _metrics_response(self) -> HttpResponse:
        self.refresh_gauges()
        body = self.metrics.to_prometheus().encode("utf-8")
        return HttpResponse(
            StatusCode.OK,
            headers=Headers(
                [
                    ("Content-Type", "text/plain; version=0.0.4"),
                    ("Content-Length", str(len(body))),
                    ("Connection", "close"),
                ]
            ),
            body=body,
        )

    def refresh_gauges(self) -> None:
        """Bring point-in-time gauges up to date before an export."""
        self.metrics.gauge(SERVE_QUEUE_DEPTH, "requests in the waiting room").set(
            float(self.admission.queued)
        )
        self.metrics.gauge(SERVE_INFLIGHT, "requests currently running").set(
            float(self.admission.inflight)
        )
        self.metrics.gauge(
            SERVE_BREAKER_STATE,
            "exact-sim breaker state (0 closed, 1 half-open, 2 open)",
        ).set(self.breaker.gauge_value())
        self.memo.export(self.metrics)

    def _observe(self, endpoint: str, outcome: str, started: float) -> None:
        self.metrics.record_serve_request(
            endpoint, outcome, max(0.0, self.clock() - started)
        )

    # -- batch processing ---------------------------------------------------

    def _batch_steps(self, endpoint: str, request: HttpRequest) -> _Steps:
        body = request.body.materialize()
        if len(body) > self.config.max_body_bytes:
            return self._error(
                StatusCode.PAYLOAD_TOO_LARGE,
                f"body exceeds {self.config.max_body_bytes} bytes",
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return self._error(StatusCode.BAD_REQUEST, f"malformed JSON: {exc}")
        if not isinstance(payload, dict) or not isinstance(
            payload.get("items"), list
        ):
            return self._error(
                StatusCode.BAD_REQUEST, 'body must be {"items": [...]}'
            )
        items = payload["items"]
        if not items:
            return self._error(StatusCode.BAD_REQUEST, "items must be non-empty")
        if len(items) > self.config.max_batch_items:
            return self._error(
                StatusCode.BAD_REQUEST,
                f"batch exceeds {self.config.max_batch_items} items",
            )
        budget_ms = resolve_deadline_ms(
            request.headers.get(DEADLINE_HEADER),
            self.config.default_deadline_ms,
            self.config.max_deadline_ms,
        )
        deadline = Deadline(self.clock(), budget_ms / 1000.0)

        results: List[Dict[str, Any]] = []
        partial = False
        degraded = False
        for raw in items:
            if deadline.expired(self.clock()):
                results.append({"error": DEADLINE_EXCEEDED})
                partial = True
                continue
            result = self._run_item(endpoint, raw)
            if result.get("degraded"):
                degraded = True
            results.append(result)
            yield
        response = _json_response(
            StatusCode.OK,
            {
                "results": results,
                "partial": partial,
                "degraded": degraded,
                "deadline_ms": budget_ms,
            },
        )
        if partial:
            outcome = "deadline"
        elif degraded:
            outcome = "degraded"
        else:
            outcome = "ok"
        return response, outcome

    def _parse_item(self, raw: Any) -> _Item:
        if not isinstance(raw, dict):
            return _Item.invalid("item must be an object")
        has_vendor = "vendor" in raw
        has_pair = "fcdn" in raw or "bcdn" in raw
        if has_vendor == has_pair:
            return _Item.invalid(
                'item needs either "vendor" (SBR/CCFC) or "fcdn"+"bcdn" (OBR)'
            )
        attack = raw.get("attack")
        if attack is not None and attack not in ("sbr", "obr", "ccfc"):
            return _Item.invalid(f"unknown attack {attack!r}")
        if has_vendor:
            if attack == "obr":
                return _Item.invalid('attack "obr" needs "fcdn"+"bcdn"')
            vendor = raw["vendor"]
            if vendor not in self._vendors:
                return _Item.invalid(f"unknown vendor {vendor!r}")
            tail = self._parse_tail(raw, default_size=10 * MB)
            if isinstance(tail, str):
                return _Item.invalid(tail)
            size, exact, threshold = tail
            return _Item(
                kind=attack if attack is not None else "sbr",
                vendor=vendor, size=size, exact=exact,
                threshold=threshold,
            )
        if attack is not None and attack != "obr":
            return _Item.invalid(f'attack {attack!r} needs "vendor"')
        fcdn, bcdn = raw.get("fcdn"), raw.get("bcdn")
        if fcdn not in self._vendors or bcdn not in self._vendors:
            return _Item.invalid(f"unknown cascade {fcdn!r} -> {bcdn!r}")
        if fcdn == bcdn:
            return _Item.invalid("fcdn and bcdn must differ")
        tail = self._parse_tail(raw, default_size=1024)
        if isinstance(tail, str):
            return _Item.invalid(tail)
        size, exact, threshold = tail
        return _Item(
            kind="obr", fcdn=fcdn, bcdn=bcdn, size=size, exact=exact,
            threshold=threshold,
        )

    def _parse_tail(
        self, raw: Dict[str, Any], default_size: int
    ) -> Union[str, Tuple[int, bool, float]]:
        """Validate the shared item fields; an error string on failure."""
        size = raw.get("size", default_size)
        if isinstance(size, bool) or not isinstance(size, int):
            return "size must be an integer"
        if not 1 <= size <= self.config.max_resource_size:
            return f"size must be in [1, {self.config.max_resource_size}]"
        exact = raw.get("exact", False)
        if not isinstance(exact, bool):
            return "exact must be a boolean"
        threshold = raw.get("threshold", DEFAULT_THRESHOLD)
        if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
            return "threshold must be a number"
        if threshold <= 0:
            return "threshold must be > 0"
        return size, exact, float(threshold)

    def _run_item(self, endpoint: str, raw: Any) -> Dict[str, Any]:
        item = self._parse_item(raw)
        if item.error is not None:
            return {"error": f"invalid item: {item.error}"}
        finding = self._finding(item)
        out: Dict[str, Any] = {"finding": finding.to_dict()}
        if endpoint == "recommend":
            out.update(self._recommendation(item, finding))
        elif item.exact:
            out.update(self._exact(item, finding))
        return out

    # -- findings and recommendations (memoized) ----------------------------

    def _finding(self, item: _Item) -> Finding:
        if item.kind == "sbr":
            key = ("sbr", item.vendor, item.size)

            def compute_sbr() -> Finding:
                # Select by kind: the single-vendor matrix also carries
                # the CCFC finding, which can outrank the SBR one.
                report = analyze_vendor_matrix(
                    resource_size=item.size, vendors=[item.vendor]
                )
                for finding in report.by_kind("sbr"):
                    return finding
                for finding in report.by_kind("safe"):
                    if finding.data.get("attack") != "ccfc":
                        return finding
                return report.findings[0]

            return cast(Finding, self.memo.get_or_compute(
                "findings", key, compute_sbr
            ))
        if item.kind == "ccfc":
            key = ("ccfc", item.vendor, item.size)

            def compute_ccfc() -> Finding:
                report = analyze_vendor_matrix(
                    ccfc_resource_size=item.size, vendors=[item.vendor]
                )
                for finding in report.by_kind("ccfc"):
                    return finding
                for finding in report.by_kind("safe"):
                    if finding.data.get("attack") == "ccfc":
                        return finding
                return report.findings[0]

            return cast(Finding, self.memo.get_or_compute(
                "findings", key, compute_ccfc
            ))
        key = ("obr", item.fcdn, item.bcdn, item.size)

        def compute_obr() -> Finding:
            report = analyze_vendor_matrix(
                obr_resource_size=item.size, vendors=[item.fcdn, item.bcdn]
            )
            subject = f"{item.fcdn} -> {item.bcdn}"
            for finding in report.by_kind("obr"):
                if finding.subject == subject:
                    return finding
            return Finding(
                kind="safe",
                severity="info",
                subject=subject,
                mechanism="none",
                factor_bound=0.0,
                detail=f"{subject} has no OBR vector",
            )

        return cast(Finding, self.memo.get_or_compute("findings", key, compute_obr))

    def _recommendation(self, item: _Item, finding: Finding) -> Dict[str, Any]:
        if finding.kind == "safe":
            return {"recommendation": None, "resolved": True}
        key = ("rec", finding.kind, finding.subject, item.size, item.threshold)

        def compute() -> Dict[str, Any]:
            report = AnalysisReport(
                findings=(finding,),
                resource_size=item.size if finding.kind == "sbr" else 10 * MB,
                obr_resource_size=item.size if finding.kind == "obr" else 1024,
                ccfc_resource_size=item.size if finding.kind == "ccfc" else 10 * MB,
            )
            result = recommend(
                resource_size=report.resource_size,
                obr_resource_size=report.obr_resource_size,
                threshold=item.threshold,
                report=report,
                ccfc_resource_size=report.ccfc_resource_size,
            )
            recommendation = result.recommendations[0]
            return {
                "recommendation": recommendation.to_dict(),
                "resolved": recommendation.resolved,
            }

        return cast(
            Dict[str, Any],
            self.memo.get_or_compute("recommendations", key, compute),
        )

    # -- the breaker-guarded exact path -------------------------------------

    def _exact(self, item: _Item, finding: Finding) -> Dict[str, Any]:
        if finding.kind not in ("sbr", "ccfc"):
            return {
                "exact_skipped": "exact measurement applies to SBR/CCFC items only"
            }
        if item.size > self.config.exact_max_size:
            return {
                "exact_skipped": (
                    f"size above exact limit {self.config.exact_max_size}"
                )
            }
        now = self.clock()
        if not self.breaker.allow(now):
            return {"degraded": True, "degraded_reason": "breaker-open"}
        started = self.clock()
        try:
            if finding.kind == "ccfc":
                factor = self._exact_ccfc(item.vendor, item.size)
            else:
                factor = self._exact_runner(item.vendor, item.size)
        except Exception as exc:
            self.breaker.record_failure(self.clock())
            return {
                "degraded": True,
                "degraded_reason": f"exact-sim-failed: {exc}",
            }
        elapsed = self.clock() - started
        if elapsed > self.config.exact_timeout_s:
            # Completed, but too slow to keep trusting the path.
            self.breaker.record_failure(self.clock())
        else:
            self.breaker.record_success(self.clock())
        return {"exact_factor": round(factor, 2)}

    def _exact_ccfc(self, vendor: str, size: int) -> float:
        """Exact CCFC measurement (memoized; no fault-plan variant — the
        CCFC flow has no range algebra for faults to perturb)."""

        def compute() -> float:
            from repro.runner.memo import measure_ccfc

            return float(measure_ccfc(vendor, size).amplification)

        return cast(
            float,
            self.memo.get_or_compute("exact", ("ccfc", vendor, size), compute),
        )

    def _default_exact(self, vendor: str, size: int) -> float:
        if self.fault_plan is not None:
            # A fault plan is stateful across calls; bypass the memo so
            # the breaker sees the true failure/recovery sequence.
            from repro.faults.experiment import measure_sbr_under_faults

            result = measure_sbr_under_faults(
                vendor, size, plan=self.fault_plan, rounds=1
            )
            if result.exhausted_fetches > 0:
                raise ExactSimUnavailable(
                    f"{result.exhausted_fetches} origin fetch(es) exhausted "
                    f"the retry budget under faults"
                )
            return float(result.amplification)

        def compute() -> float:
            from repro.runner.memo import measure_sbr

            return float(measure_sbr(vendor, size).amplification)

        return cast(
            float, self.memo.get_or_compute("exact", (vendor, size), compute)
        )
