"""Bounded shared memoization for the service's hot lookups.

A long-running service cannot let caches grow with the union of every
request it ever saw.  :class:`SharedMemoRegistry` owns a fixed handful
of named :class:`~repro.runner.memo.Memo` tables and splits one global
entry budget across them, so total cached objects stay bounded no
matter what clients ask for.  Because the tables are named, every
lookup already flows into ``repro_memo_lookups_total`` via the ambient
metrics registry; :meth:`export` adds point-in-time entry/eviction/hit
gauges per table for the ``/metrics`` endpoint.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Sequence

from repro.obs.metrics import (
    SERVE_MEMO_ENTRIES,
    SERVE_MEMO_EVICTIONS,
    SERVE_MEMO_HIT_RATE,
    MetricsRegistry,
)
from repro.runner.memo import Memo, MemoStats

#: Default table names used by the analysis service.
DEFAULT_TABLES = ("findings", "recommendations", "exact")


class SharedMemoRegistry:
    """A fixed set of named memo tables under one entry budget."""

    def __init__(
        self,
        total_entries: int = 4096,
        tables: Sequence[str] = DEFAULT_TABLES,
    ) -> None:
        if total_entries < len(tables):
            raise ValueError(
                f"total_entries={total_entries} cannot cover "
                f"{len(tables)} tables"
            )
        if not tables:
            raise ValueError("at least one table name is required")
        per_table = total_entries // len(tables)
        self.total_entries = total_entries
        self._tables: Dict[str, Memo] = {
            name: Memo(maxsize=per_table, name=f"serve_{name}") for name in tables
        }

    def table(self, name: str) -> Memo:
        return self._tables[name]

    def get_or_compute(
        self, table: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        return self._tables[table].get_or_compute(key, compute)

    def entries(self) -> int:
        """Total cached objects across every table."""
        return sum(len(memo) for memo in self._tables.values())

    def stats(self) -> Dict[str, MemoStats]:
        return {name: memo.stats for name, memo in sorted(self._tables.items())}

    def clear(self) -> None:
        for memo in self._tables.values():
            memo.clear()

    def export(self, registry: MetricsRegistry) -> None:
        """Write per-table entry/eviction/hit-rate gauges into ``registry``."""
        entries = registry.gauge(SERVE_MEMO_ENTRIES, "cached entries per memo table")
        evictions = registry.gauge(
            SERVE_MEMO_EVICTIONS, "cumulative evictions per memo table"
        )
        hit_rate = registry.gauge(SERVE_MEMO_HIT_RATE, "lifetime hit rate per memo table")
        for name, memo in sorted(self._tables.items()):
            entries.set(float(len(memo)), memo=name)
            evictions.set(float(memo.stats.evictions), memo=name)
            hit_rate.set(memo.stats.hit_rate, memo=name)
