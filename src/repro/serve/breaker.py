"""A circuit breaker guarding the exact-simulation path.

Closed-form bounds answer in microseconds; an exact wire simulation is
the expensive, fallible part of an analysis request.  The breaker wraps
that path with the standard three-state machine:

* **closed** — exact simulations run; ``failure_threshold`` consecutive
  failures (errors *or* over-budget runs) trip the breaker;
* **open** — exact simulations are refused outright and callers degrade
  to bounds-only answers, until ``reset_timeout_s`` has elapsed;
* **half-open** — up to ``half_open_probes`` trial simulations are let
  through: all succeeding closes the breaker, any failing re-opens it
  and restarts the timeout.

Time comes in through ``now`` arguments, never from a wall clock, so
every transition is deterministic under test.
"""

from __future__ import annotations

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric gauge encoding for /metrics (stable, documented order).
STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Three-state breaker with injected time.

    Callers ask :meth:`allow` before each protected call and report the
    result with :meth:`record_success` / :meth:`record_failure`.  A
    refused call is not a failure — only real outcomes move the state
    machine.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        half_open_probes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout_s <= 0:
            raise ValueError(f"reset_timeout_s must be > 0, got {reset_timeout_s}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {half_open_probes}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.transitions = 0
        self._probes_issued = 0
        self._probe_successes = 0

    # -- state machine ------------------------------------------------------

    def _transition(self, state: str, now: float) -> None:
        self.state = state
        self.transitions += 1
        if state == OPEN:
            self.opened_at = now
            self.consecutive_failures = 0
        elif state == HALF_OPEN:
            self._probes_issued = 0
            self._probe_successes = 0
        else:  # CLOSED
            self.consecutive_failures = 0

    def allow(self, now: float) -> bool:
        """May a protected call proceed at ``now``?

        In the open state this is also where the reset timeout is
        noticed: the first ``allow`` after expiry flips to half-open and
        admits a probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at < self.reset_timeout_s:
                return False
            self._transition(HALF_OPEN, now)
        # HALF_OPEN: admit only the configured number of probes.
        if self._probes_issued < self.half_open_probes:
            self._probes_issued += 1
            return True
        return False

    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._transition(CLOSED, now)
            return
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._transition(OPEN, now)
            return
        self.consecutive_failures += 1
        if self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
            self._transition(OPEN, now)

    def gauge_value(self) -> float:
        """The state encoded for the ``repro_serve_breaker_state`` gauge."""
        return STATE_GAUGE[self.state]

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures})"
        )
