"""A DoS-hardened amplification-analysis service.

The irony this package leans into: a library about amplification DoS
should itself survive being stampeded.  :mod:`repro.serve` wraps the
static analysis (:mod:`repro.analysis`) and the exact wire simulation
(:mod:`repro.core`) in a long-running HTTP service with the classic
robustness trio —

* **admission control** (:mod:`repro.serve.admission`): a token bucket
  plus a bounded waiting room; overload is shed early with ``429`` and
  an honest ``Retry-After`` instead of queueing unboundedly;
* **deadlines** (:mod:`repro.serve.deadline`): every request carries a
  budget (server default, client-cappable via ``X-Deadline-Ms``); batch
  work stops mid-flight at expiry and returns partial results;
* **graceful degradation** (:mod:`repro.serve.breaker`): the exact
  simulation path sits behind a circuit breaker; when it misbehaves the
  service answers from closed-form bounds alone and says so
  (``"degraded": true``).

Every component takes an injected clock so the whole state machine is
deterministic under test; wall time enters only at the asyncio edge
(:mod:`repro.serve.server`).
"""

from __future__ import annotations

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.app import AnalysisService, ServeConfig
from repro.serve.breaker import CircuitBreaker
from repro.serve.deadline import Deadline, resolve_deadline_ms
from repro.serve.memo import SharedMemoRegistry

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AnalysisService",
    "CircuitBreaker",
    "Deadline",
    "ServeConfig",
    "SharedMemoRegistry",
]
