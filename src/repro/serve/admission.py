"""Admission control: rate limiting, a bounded waiting room, shedding.

The controller answers one question per arriving batch request: run it
now (**admit**), park it in a bounded queue (**enqueue**), or refuse it
immediately (**shed**) with an honest ``Retry-After``.  Decisions are
pure functions of injected time plus the controller's own counters:

* a :class:`~repro.defense.ratelimit.TokenBucket` caps the arrival rate
  (its :meth:`~repro.defense.ratelimit.TokenBucket.retry_after` supplies
  the advertised wait on a rate shed);
* ``max_inflight`` caps concurrently running requests;
* ``queue_depth`` caps the waiting room, and a request is shed *before*
  queueing when its predicted wait — queue position times the EWMA
  service-time estimate — exceeds ``max_queue_wait_s``.  Shedding early
  beats queueing work that will only time out (the paper's own lesson:
  unbounded patience is the amplifier's friend).

The controller does only accounting; the asyncio layer owns the actual
futures and promotion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.defense.ratelimit import TokenBucket

ADMIT = "admit"
ENQUEUE = "enqueue"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict for one arriving request."""

    outcome: str
    #: Advertised wait before retrying, for shed requests (seconds).
    retry_after_s: float = 0.0
    #: Why a shed happened: ``rate``, ``queue-full``, or ``wait-budget``.
    reason: str = ""


class AdmissionController:
    """Counters + policy for admit / enqueue / shed.

    The caller must mirror every lifecycle edge back into the
    controller: :meth:`promote` when a queued request starts running,
    :meth:`leave_queue` when one gives up waiting, :meth:`release` when
    a running request finishes (which also feeds the EWMA service-time
    estimate the wait predictions use).
    """

    def __init__(
        self,
        max_inflight: int,
        queue_depth: int,
        bucket: Optional[TokenBucket] = None,
        max_queue_wait_s: float = 5.0,
        initial_service_estimate_s: float = 0.05,
        ewma_alpha: float = 0.2,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.bucket = bucket
        self.max_queue_wait_s = max_queue_wait_s
        self.ewma_alpha = ewma_alpha
        self.service_estimate_s = initial_service_estimate_s
        self.inflight = 0
        self.queued = 0
        self.admitted_total = 0
        self.shed_total = 0

    # -- policy -------------------------------------------------------------

    def estimated_wait_s(self, position: int) -> float:
        """Predicted queue wait at 1-based ``position``: the requests
        ahead drain at ``max_inflight`` per service interval."""
        if position <= 0:
            return 0.0
        intervals = (position + self.max_inflight - 1) // self.max_inflight
        return intervals * self.service_estimate_s

    def decide(self, now: float) -> AdmissionDecision:
        """Admit, enqueue, or shed one request arriving at ``now``."""
        if self.bucket is not None and not self.bucket.allow(now):
            self.shed_total += 1
            return AdmissionDecision(
                SHED,
                retry_after_s=self.bucket.retry_after(now),
                reason="rate",
            )
        if self.inflight < self.max_inflight:
            self.inflight += 1
            self.admitted_total += 1
            return AdmissionDecision(ADMIT)
        if self.queued >= self.queue_depth:
            self.shed_total += 1
            return AdmissionDecision(
                SHED,
                retry_after_s=self.estimated_wait_s(self.queued),
                reason="queue-full",
            )
        predicted = self.estimated_wait_s(self.queued + 1)
        if predicted > self.max_queue_wait_s:
            self.shed_total += 1
            return AdmissionDecision(
                SHED, retry_after_s=predicted, reason="wait-budget"
            )
        self.queued += 1
        return AdmissionDecision(ENQUEUE)

    # -- lifecycle accounting ----------------------------------------------

    def promote(self) -> None:
        """A queued request starts running (caller picked it)."""
        if self.queued < 1:
            raise RuntimeError("promote() with an empty queue")
        self.queued -= 1
        self.inflight += 1
        self.admitted_total += 1

    def leave_queue(self) -> None:
        """A queued request gave up (timeout, disconnect)."""
        if self.queued < 1:
            raise RuntimeError("leave_queue() with an empty queue")
        self.queued -= 1
        self.shed_total += 1

    def release(self, service_s: float) -> None:
        """A running request finished after ``service_s`` seconds."""
        if self.inflight < 1:
            raise RuntimeError("release() with nothing in flight")
        self.inflight -= 1
        if service_s >= 0:
            alpha = self.ewma_alpha
            self.service_estimate_s = (
                alpha * service_s + (1.0 - alpha) * self.service_estimate_s
            )

    @property
    def has_queue_space(self) -> bool:
        return self.queued < self.queue_depth

    def __repr__(self) -> str:
        return (
            f"AdmissionController(inflight={self.inflight}/{self.max_inflight}, "
            f"queued={self.queued}/{self.queue_depth})"
        )
