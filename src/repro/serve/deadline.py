"""Per-request deadlines for the analysis service.

A deadline is an absolute expiry on the service's injected clock.  The
budget is resolved once at admission from the server default and the
client's ``X-Deadline-Ms`` request header, then carried through the
batch loop: each item checks :meth:`Deadline.expired` before starting,
so an expiring batch stops mid-flight and the remaining items come back
marked ``"deadline_exceeded"`` instead of holding the slot hostage.
"""

from __future__ import annotations

from typing import Optional

#: Per-item marker placed in batch results for work the deadline killed.
DEADLINE_EXCEEDED = "deadline_exceeded"

#: Request header by which a client tightens (or, up to the server max,
#: extends) its own deadline.
DEADLINE_HEADER = "X-Deadline-Ms"


def resolve_deadline_ms(
    header_value: Optional[str], default_ms: int, max_ms: int
) -> int:
    """Resolve a request's deadline budget in milliseconds.

    The client's ``X-Deadline-Ms`` wins when it parses as a positive
    integer; anything else (absent, garbage, zero, negative) falls back
    to ``default_ms``.  Either way the result is clamped into
    ``[1, max_ms]`` — a client can never buy more time than the server
    is willing to spend on one request.
    """
    requested = default_ms
    if header_value is not None:
        try:
            parsed = int(header_value.strip())
        except ValueError:
            parsed = 0
        if parsed > 0:
            requested = parsed
    return max(1, min(requested, max_ms))


class Deadline:
    """An absolute expiry instant on the service clock."""

    __slots__ = ("started_at", "budget_s", "expires_at")

    def __init__(self, started_at: float, budget_s: float) -> None:
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0, got {budget_s!r}")
        self.started_at = started_at
        self.budget_s = budget_s
        self.expires_at = started_at + budget_s

    def remaining(self, now: float) -> float:
        """Seconds of budget left (clamped to >= 0)."""
        return max(0.0, self.expires_at - now)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def __repr__(self) -> str:
        return f"Deadline(started_at={self.started_at}, budget_s={self.budget_s})"
