"""Memoization for the sweep hot paths.

Two facts make the paper grids cheap to memoize:

* every measurement in this library is **deterministic** — the same
  (vendor, size, rounds) SBR cell always produces the same
  :class:`~repro.core.sbr.SbrResult`;
* the grids **overlap** — Table IV's 13 x 3 cells are a subset of
  Fig 6's 13 x 25 grid, and Fig 7's per-request traffic probe is exactly
  the Table IV cloudflare/10 MB cell.

:class:`Memo` is a small bounded insertion-order cache with hit/miss
statistics; :func:`measure_sbr` is the shared memoized SBR measurement
the runner's cell functions and ``run_all`` go through.  Caches are
per-process: worker processes each warm their own, which affects only
speed, never results.

Per-process stats used to vanish with their worker, making memo
effectiveness invisible in pooled runs.  Named memos therefore report
every lookup to the context's active
:class:`~repro.obs.metrics.MetricsRegistry`
(``repro_memo_lookups_total{memo=...,result=hit|miss}``); the runner
snapshots per-cell registries across the process boundary and merges
them, so an observability run shows the true pool-wide hit/miss split.
Named memos also register in a module-level index so
:func:`clear_all_memos` and :func:`memo_stats` see every table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.obs.metrics import current_metrics

DEFAULT_MAXSIZE = 1024

#: Module-level index of named memo tables (name -> Memo).
_MEMOS: Dict[str, "Memo"] = {}


@dataclass
class MemoStats:
    """Hit/miss counters for one :class:`Memo`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class Memo:
    """A bounded, thread-safe memo table.

    Eviction is FIFO (oldest insertion first) — the sweeps iterate their
    grids once, so recency tracking would buy nothing over plain
    insertion order.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE, name: Optional[str] = None) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self.stats = MemoStats()
        self._table: Dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        if name is not None:
            _MEMOS[name] = self

    def _record(self, hit: bool) -> None:
        if self.name is None:
            return
        registry = current_metrics()
        if registry is not None:
            registry.record_memo_lookup(self.name, hit)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        with self._lock:
            if key in self._table:
                self.stats.hits += 1
                value = self._table[key]
                self._record(hit=True)
                return value
        # Compute outside the lock: measurements can be slow, and a
        # duplicate computation is merely wasted work, never wrong.
        value = compute()
        with self._lock:
            if key not in self._table:
                if len(self._table) >= self.maxsize:
                    oldest = next(iter(self._table))
                    del self._table[oldest]
                    self.stats.evictions += 1
                self._table[key] = value
            self.stats.misses += 1
        self._record(hit=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._table.clear()
            self.stats = MemoStats()

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._table


def memoize(maxsize: int = DEFAULT_MAXSIZE) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator memoizing a function of hashable positional arguments.

    The memo table is exposed as ``wrapped.memo`` so tests and
    ``run_all`` can inspect hit rates or clear it.  It is named after
    the wrapped function, so its lookups surface in metrics and it is
    reachable through :func:`memo_stats` / :func:`clear_all_memos`.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        memo = Memo(maxsize, name=fn.__name__)

        def wrapped(*args: Hashable) -> Any:
            return memo.get_or_compute(args, lambda: fn(*args))

        wrapped.memo = memo  # type: ignore[attr-defined]
        wrapped.__name__ = fn.__name__
        wrapped.__doc__ = fn.__doc__
        return wrapped

    return decorate


@memoize(maxsize=2048)
def measure_sbr(vendor: str, resource_size: int, rounds: int = 1) -> Any:
    """Memoized SBR measurement for one (vendor, size, rounds) cell.

    Returns the :class:`~repro.core.sbr.SbrResult`.  ``SbrAttack.run``
    builds a fresh deployment per call, so the result depends only on
    the arguments and caching is sound.
    """
    from repro.core.sbr import SbrAttack

    return SbrAttack(vendor, resource_size=resource_size).run(rounds=rounds)


@memoize(maxsize=2048)
def measure_ccfc(vendor: str, resource_size: int, rounds: int = 1) -> Any:
    """Memoized CCFC measurement for one (vendor, size, rounds) cell.

    Returns the :class:`~repro.core.ccfc.CcfcResult`.  ``CcfcAttack.run``
    builds a fresh deployment per call, so the result depends only on
    the arguments and caching is sound.
    """
    from repro.core.ccfc import CcfcAttack

    return CcfcAttack(vendor, resource_size=resource_size).run(rounds=rounds)


def sbr_per_request_traffic(vendor: str, resource_size: int) -> Tuple[int, int]:
    """(origin_bytes, client_bytes) one SBR round moves — memoized.

    This is Fig 7's step-1 probe; going through :func:`measure_sbr`
    means ``run_all`` reuses the Table IV / Fig 6 measurement instead of
    re-running the attack.
    """
    result = measure_sbr(vendor, resource_size)
    return (result.origin_traffic, result.client_traffic)


def memo_stats() -> Dict[str, MemoStats]:
    """This process's stats for every named memo (name -> stats)."""
    return {name: memo.stats for name, memo in sorted(_MEMOS.items())}


def clear_all_memos() -> None:
    """Reset every named memo (test isolation helper)."""
    for memo in _MEMOS.values():
        memo.clear()
