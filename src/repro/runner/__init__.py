"""``repro.runner`` — parallel experiment execution engine.

The paper's evaluation grids (Table IV's 13 vendors x 3 sizes, Fig 6's
13 x 25 sweep, Table V's 11 cascades, Fig 7's m = 1..15 floods) are
embarrassingly parallel: every cell is an independent, deterministic
measurement.  This package turns those sweeps into data
(:class:`~repro.runner.grid.ExperimentGrid`), executes them over a
process pool with a serial fallback
(:class:`~repro.runner.executor.GridRunner`), and guarantees the
parallel result is identical to the serial one: results are keyed and
merged in grid order regardless of completion order, and per-cell
failures are captured (type + message) instead of killing the sweep.

* :mod:`repro.runner.grid` — cell/grid spec model;
* :mod:`repro.runner.executor` — serial/pool execution, deterministic
  merging, failure + timing capture, per-cell retries, and worker-crash
  containment;
* :mod:`repro.runner.checkpoint` — crash-safe JSONL journaling so a
  killed run resumes from its completed cells;
* :mod:`repro.runner.memo` — memoization for the hot paths (shared SBR
  measurements across overlapping grids);
* :mod:`repro.runner.experiments` — picklable cell functions for the
  ``sbr`` / ``obr`` / ``flood`` / ``sbr-faults`` experiment kinds;
* :mod:`repro.runner.runall` — one-shot regeneration of Tables IV–V
  and Figs 6–7 (plus the faulted Table VI) through a single combined
  grid (the CLI's ``run-all``).
"""

from __future__ import annotations

from repro.runner.checkpoint import RunCheckpoint, cell_digest
from repro.runner.executor import (
    CellFailure,
    CellObservation,
    CellOutcome,
    CellTiming,
    GridResult,
    GridRunner,
    RETRIES_ENV,
    RunnerCellError,
    SERIAL_ENV,
    WORKERS_ENV,
    resolve_cell_retries,
    resolve_workers,
)
from repro.runner.grid import ExperimentCell, ExperimentGrid
from repro.runner.memo import Memo, MemoStats, clear_all_memos, measure_sbr, memoize
from repro.runner.runall import RunAllReport, build_run_all_grid, run_all

__all__ = [
    "CellFailure",
    "CellObservation",
    "CellOutcome",
    "CellTiming",
    "ExperimentCell",
    "ExperimentGrid",
    "GridResult",
    "GridRunner",
    "Memo",
    "MemoStats",
    "RETRIES_ENV",
    "RunAllReport",
    "RunCheckpoint",
    "RunnerCellError",
    "SERIAL_ENV",
    "WORKERS_ENV",
    "build_run_all_grid",
    "cell_digest",
    "clear_all_memos",
    "measure_sbr",
    "memoize",
    "resolve_cell_retries",
    "resolve_workers",
    "run_all",
]
