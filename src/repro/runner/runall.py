"""One-shot regeneration of Tables IV–V and Figs 6–7 through the runner.

:func:`run_all` builds a **single combined grid** — the SBR vendor x
size sweep (serving both Table IV and Fig 6, deduped), the 11 Table V
cascades, and the 15 Fig 7 flood intensities — executes it through one
:class:`~repro.runner.executor.GridRunner`, and assembles the same row
and series objects the serial ``repro.reporting`` functions produce.
One pool, every cell kind interleaved, so slow OBR searches overlap
with cheap SBR cells instead of serializing behind them.

Determinism: cell functions are pure, outcomes merge in grid order, and
the assemblers are shared with the serial path, so ``run_all(workers=N)``
returns objects equal to the serial regeneration for every N.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.recommend import RecommendationReport
from repro.cdn.vendors import all_vendor_names
from repro.core.obr import vulnerable_combinations
from repro.core.practical import flood_grid
from repro.core.sbr import sbr_grid
from repro.errors import ReproError
from repro.faults.experiment import DEFAULT_FAULT_ROUNDS, DEFAULT_FAULT_SEED
from repro.obs.profile import CellProfile
from repro.runner.checkpoint import RunCheckpoint
from repro.runner.executor import (
    CellOutcome,
    CellTiming,
    GridResult,
    GridRunner,
    Observer,
)
from repro.runner.fastpath import FastPathPlanner, FastPathStats
from repro.runner.grid import ExperimentGrid
from repro.runner.memo import sbr_per_request_traffic

MB = 1 << 20

#: Quick-mode trims, mirroring ``reporting.summary.generate_full_report``.
QUICK_TABLE5_COMBOS = (("cloudflare", "akamai"), ("cdn77", "azure"))
QUICK_FIG7_MS = (2, 12, 15)


@dataclass(frozen=True)
class RunAllReport:
    """Every regenerated artifact plus run telemetry."""

    table4: List
    table5: List
    fig6: List
    fig7: List
    workers: int
    #: Wall seconds for the combined grid run.
    duration_s: float
    #: Sum of per-cell seconds (the serial-equivalent work).
    cell_seconds: float
    cell_count: int
    #: Aggregate per-cell wall-time statistics for the whole run.
    timing: CellTiming = field(default_factory=CellTiming)
    #: Per-experiment timing breakdown (experiment name -> CellTiming).
    timing_by_experiment: Dict[str, CellTiming] = field(default_factory=dict)
    #: One profile entry per executed grid cell, in grid order.
    cells: Tuple[CellProfile, ...] = ()
    #: Observability harvest — empty unless the run collected.
    spans: Tuple[Any, ...] = ()
    events: Tuple[Any, ...] = ()
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Compression-conversion rows (CCFC, arXiv 2409.00712 follow-up).
    table_ccfc: List = field(default_factory=list)
    #: Faulted-SBR rows (Table VI) — empty unless the run was faulted.
    table_faults: List = field(default_factory=list)
    #: Seed the faulted cells ran under (``None`` for clean runs).
    fault_seed: Optional[int] = None
    #: Cells restored from a checkpoint instead of being re-run.
    restored_cells: int = 0
    #: Defense recommendations (Table VII): cheapest sufficient
    #: mitigation per vulnerable finding, statically derived, so the
    #: artifact is deterministic across runs and resumes.
    table7_recommendations: Optional[RecommendationReport] = None
    #: What the closed-form fast path did (``None`` for ``--exact`` and
    #: observability runs, which simulate every cell).
    fastpath: Optional[FastPathStats] = None
    #: Wall seconds per run phase ("fastpath", "grid", "validate",
    #: "static"); feeds the persisted ``BENCH_runall.json`` trajectory.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Serial-equivalent work over wall time (1.0 when serial)."""
        if self.duration_s <= 0:
            return 1.0
        return self.cell_seconds / self.duration_s


def build_run_all_grid(
    vendors: Optional[Sequence[str]] = None,
    fig6_sizes: Optional[Sequence[int]] = None,
    table4_sizes: Sequence[int] = (1 * MB, 10 * MB, 25 * MB),
    table5_combos: Optional[Sequence[Tuple[str, str]]] = None,
    fig7_ms: Sequence[int] = tuple(range(1, 16)),
    flood_vendor: str = "cloudflare",
    fault_sizes: Sequence[int] = (),
    fault_seed: int = DEFAULT_FAULT_SEED,
    fault_rounds: int = DEFAULT_FAULT_ROUNDS,
    ccfc_sizes: Sequence[int] = (10 * MB,),
) -> ExperimentGrid:
    """The combined Tables IV–V / Figs 6–7 grid (deduped, ordered).

    A non-empty ``fault_sizes`` adds the faulted-SBR sweep (Table VI):
    one cell per vendor x size, each running ``fault_rounds`` attack
    rounds under the seeded default fault plan with vendor retries on.
    """
    from repro.reporting.figures import default_fig6_sizes

    names = list(vendors) if vendors is not None else all_vendor_names()
    sizes6 = list(fig6_sizes) if fig6_sizes is not None else default_fig6_sizes()
    combos = (
        list(table5_combos) if table5_combos is not None else vulnerable_combinations()
    )
    grid = ExperimentGrid("run-all")
    # OBR cells first: each hides a max-n binary search and dominates
    # wall time, so they must start before the swarm of cheap SBR cells.
    from repro.core.obr import obr_grid

    grid.extend(obr_grid(combos).cells)
    if fault_sizes:
        from repro.faults.experiment import faulted_sbr_grid

        # Faulted cells run many attack rounds each; start them early,
        # right behind the OBR searches, so they overlap the cheap tail.
        grid.extend(
            faulted_sbr_grid(
                names, tuple(fault_sizes), seed=fault_seed, rounds=fault_rounds
            ).cells
        )
    grid.extend(
        flood_grid(
            fig7_ms,
            vendor=flood_vendor,
            per_request=sbr_per_request_traffic(flood_vendor, 10 * MB),
        ).cells
    )
    grid.extend(sbr_grid(names, tuple(sizes6), name="fig6-sbr").cells)
    grid.extend(sbr_grid(names, tuple(table4_sizes), name="table4-sbr").cells)
    if ccfc_sizes:
        from repro.core.ccfc import ccfc_grid

        grid.extend(ccfc_grid(names, tuple(ccfc_sizes)).cells)
    return grid


def run_all(
    workers: Optional[int] = None,
    quick: bool = False,
    vendors: Optional[Sequence[str]] = None,
    collect_obs: bool = False,
    observer: Optional[Observer] = None,
    faults: bool = False,
    fault_seed: int = DEFAULT_FAULT_SEED,
    checkpoint_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    exact: bool = False,
) -> RunAllReport:
    """Regenerate Tables IV–V and Figs 6–7 in one grid run.

    ``quick=True`` trims the grid for smoke runs (Table IV at 1 MB,
    Fig 6 at three sizes, two Table V cascades, three Fig 7 points) —
    the CI path.  Results are identical to the serial regeneration; the
    equivalence tests pin this.

    ``collect_obs=True`` runs every cell traced and metered: the report
    then carries the merged span/event streams and metrics snapshot
    (``--trace``/``--metrics``).  ``observer`` is forwarded to the
    runner for live progress.

    ``faults=True`` adds the faulted-SBR sweep (Table VI): every vendor
    re-measured under the seeded default fault plan with its retry
    policy engaged.

    ``checkpoint_path`` journals every finished cell; ``resume=True``
    reuses the journal from a previous (killed) run so only the missing
    cells execute.  The resumed report is identical to an uninterrupted
    run's.

    By default SBR/OBR cells whose regimes calibrate exactly are
    answered by the closed-form fast path (bit-identical to simulation;
    a sampled subset is re-simulated and compared after the grid run).
    ``exact=True`` forces wire-level simulation for every cell — the
    reference path the fast path is differentially tested against.
    Observability runs (``collect_obs=True``) also simulate everything:
    a closed form has no wire exchanges to trace or meter.
    """
    from repro.reporting.figures import fig6_series_from_results
    from repro.reporting.tables import (
        ccfc_rows_from_results,
        fault_rows_from_results,
        table4_rows_from_results,
        table5_rows_from_results,
    )

    names = list(vendors) if vendors is not None else all_vendor_names()
    if quick:
        fig6_sizes: Sequence[int] = (1 * MB, 2 * MB, 3 * MB)
        table4_sizes: Sequence[int] = (1 * MB,)
        combos: Sequence[Tuple[str, str]] = QUICK_TABLE5_COMBOS
        fig7_ms: Sequence[int] = QUICK_FIG7_MS
        ccfc_sizes: Sequence[int] = (1 * MB,)
    else:
        from repro.reporting.figures import default_fig6_sizes

        fig6_sizes = default_fig6_sizes()
        table4_sizes = (1 * MB, 10 * MB, 25 * MB)
        combos = vulnerable_combinations()
        fig7_ms = tuple(range(1, 16))
        ccfc_sizes = (10 * MB,)
    fault_sizes: Sequence[int] = ()
    fault_rounds = DEFAULT_FAULT_ROUNDS
    if faults:
        fault_sizes = (1 * MB,) if quick else (1 * MB, 10 * MB)
        fault_rounds = 4 if quick else DEFAULT_FAULT_ROUNDS

    grid = build_run_all_grid(
        vendors=names,
        fig6_sizes=fig6_sizes,
        table4_sizes=table4_sizes,
        table5_combos=combos,
        fig7_ms=fig7_ms,
        fault_sizes=fault_sizes,
        fault_seed=fault_seed,
        ccfc_sizes=ccfc_sizes,
    )

    if resume and checkpoint_path is None:
        raise ReproError("resume requires a checkpoint path")

    from repro.obs.metrics import MetricsRegistry, use_metrics

    phase_seconds: Dict[str, float] = {}
    planner: Optional[FastPathPlanner] = None
    fast_outcomes: Dict[int, CellOutcome] = {}
    subgrid = grid
    # Runner-level telemetry (fast-path decision counters) records even
    # when per-cell collection is off, so every run record carries it.
    runner_registry = MetricsRegistry()
    if not exact and not collect_obs:
        planner = FastPathPlanner()
        phase_started = time.perf_counter()
        with use_metrics(runner_registry):
            fast_plan = planner.plan(grid)
        phase_seconds["fastpath"] = time.perf_counter() - phase_started
        fast_outcomes = fast_plan.outcomes
        subgrid = fast_plan.residual

    # The checkpoint journals only the simulated residual: fast-path
    # answers are cheaper to recompute than to restore, and a resumed
    # run re-plans deterministically, so the merged outcome tuple is
    # identical either way.
    checkpoint: Optional[RunCheckpoint] = None
    restored_cells = 0
    if checkpoint_path is not None:
        path = Path(checkpoint_path)
        if path.exists() and not resume:
            raise ReproError(
                f"checkpoint {path} already exists; resume it or remove it first"
            )
        checkpoint = RunCheckpoint(path)
        restored_cells = len(checkpoint.restore(subgrid.cells))

    runner = GridRunner(workers, collect=collect_obs, observer=observer)
    try:
        result = runner.run(subgrid, checkpoint=checkpoint)
    finally:
        if checkpoint is not None:
            checkpoint.close()
    phase_seconds["grid"] = result.duration_s

    if planner is not None:
        phase_started = time.perf_counter()
        with use_metrics(runner_registry):
            planner.validate()
        phase_seconds["validate"] = time.perf_counter() - phase_started

    if fast_outcomes:
        by_cell = {outcome.cell: outcome for outcome in result}
        result = GridResult(
            grid_name=grid.name,
            outcomes=tuple(
                fast_outcomes[index]
                if index in fast_outcomes
                else replace(by_cell[cell], index=index)
                for index, cell in enumerate(grid.cells)
            ),
            workers=result.workers,
            duration_s=sum(phase_seconds.values()),
        )
    result.values()  # any failed cell aborts the regeneration, loudly

    # CCFC cells share the (vendor, size) key shape with SBR cells, so
    # the two experiments must be keyed separately — a merged map would
    # let whichever cell ran later shadow the other's result.
    by_key = {
        outcome.cell.key: outcome.value
        for outcome in result
        if outcome.ok and outcome.cell.experiment != "ccfc"
    }
    ccfc_by_key = {
        outcome.cell.key: outcome.value
        for outcome in result
        if outcome.ok and outcome.cell.experiment == "ccfc"
    }
    flood_values = [
        outcome.value for outcome in result if outcome.cell.experiment == "flood"
    ]

    timing = result.cell_seconds()
    by_experiment: Dict[str, List] = {}
    for outcome in result:
        by_experiment.setdefault(outcome.cell.experiment, []).append(outcome)
    timing_by_experiment = {
        name: CellTiming.from_outcomes(tuple(outcomes))
        for name, outcomes in by_experiment.items()
    }
    cells = tuple(
        CellProfile(
            experiment=outcome.cell.experiment,
            label=outcome.cell.label,
            ok=outcome.ok,
            duration_s=outcome.duration_s,
        )
        for outcome in result
    )

    # Table VII rides along: purely static (config probes + closed
    # forms), so it costs ~a second, never touches the grid, and stays
    # byte-identical between fresh and checkpoint-resumed runs.
    from repro.analysis.recommend import recommend
    from repro.analysis.report import analyze_vendor_matrix

    def _recommendations() -> RecommendationReport:
        return recommend(
            report=analyze_vendor_matrix(
                resource_size=10 * MB, obr_resource_size=1024, vendors=names
            )
        )

    spans: List[Any] = []
    events: List[Any] = []
    metrics: Dict[str, Any] = {}
    phase_started = time.perf_counter()
    if collect_obs:
        registry = MetricsRegistry()
        for outcome in result:
            if outcome.obs is None:
                continue
            spans.extend(outcome.obs.spans)
            events.extend(outcome.obs.events)
            registry.merge_snapshot(outcome.obs.metrics)
        with use_metrics(registry):
            recommendations = _recommendations()
        metrics = registry.snapshot()
    else:
        recommendations = _recommendations()
        if len(runner_registry):
            metrics = runner_registry.snapshot()
    phase_seconds["static"] = time.perf_counter() - phase_started

    return RunAllReport(
        table4=table4_rows_from_results(by_key, names, table4_sizes),
        table5=table5_rows_from_results(by_key, combos),
        fig6=fig6_series_from_results(by_key, names, fig6_sizes),
        fig7=flood_values,
        workers=result.workers,
        duration_s=result.duration_s,
        cell_seconds=timing.total_s,
        cell_count=len(result),
        timing=timing,
        timing_by_experiment=timing_by_experiment,
        cells=cells,
        spans=tuple(spans),
        events=tuple(events),
        metrics=metrics,
        table_ccfc=ccfc_rows_from_results(ccfc_by_key, names, ccfc_sizes),
        table_faults=(
            fault_rows_from_results(by_key, names, fault_sizes, fault_seed)
            if fault_sizes
            else []
        ),
        fault_seed=fault_seed if faults else None,
        restored_cells=restored_cells,
        table7_recommendations=recommendations,
        fastpath=planner.stats if planner is not None else None,
        phase_seconds=phase_seconds,
    )


def write_report(
    report: RunAllReport, output_dir: Union[str, Path]
) -> List[Path]:
    """Render the report's artifacts into ``output_dir`` (txt files)."""
    from repro.reporting.paper_values import PAPER_TABLE4_FACTORS, PAPER_TABLE5
    from repro.reporting.render import render_table

    target = Path(output_dir)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def _write(name: str, content: str) -> None:
        path = target / name
        path.write_text(content + "\n", encoding="utf-8")
        written.append(path)

    sizes = sorted(report.table4[0].factors) if report.table4 else []
    _write(
        "table4_sbr_factors.txt",
        render_table(
            ["CDN", "Exploited Case"] + [f"{s // MB}MB (paper)" for s in sizes],
            [
                [
                    row.display_name,
                    " & ".join(row.exploited_cases),
                    *(
                        f"{row.factors[s]:.0f} "
                        f"({PAPER_TABLE4_FACTORS[row.vendor].get(s, '-')})"
                        for s in sizes
                    ),
                ]
                for row in report.table4
            ],
        ),
    )
    _write(
        "table5_obr_factors.txt",
        render_table(
            ["FCDN", "BCDN", "Max n (paper)", "BCDN->FCDN B (paper)", "Factor (paper)"],
            [
                [
                    row.fcdn,
                    row.bcdn,
                    f"{row.max_n} ({PAPER_TABLE5[(row.fcdn, row.bcdn)][0]})",
                    f"{row.fcdn_bcdn_traffic} ({PAPER_TABLE5[(row.fcdn, row.bcdn)][2]})",
                    f"{row.factor:.1f} ({PAPER_TABLE5[(row.fcdn, row.bcdn)][3]})",
                ]
                for row in report.table5
            ],
        ),
    )
    if report.fig6:
        header = ["size"] + [series.vendor for series in report.fig6]
        _write(
            "fig6a_amplification_factors.txt",
            render_table(
                header,
                [
                    [f"{size // MB}MB"]
                    + [f"{series.factors[i]:.0f}" for series in report.fig6]
                    for i, size in enumerate(report.fig6[0].sizes)
                ],
            ),
        )
    if report.table_ccfc:
        ccfc_sizes = sorted(report.table_ccfc[0].factors)
        _write(
            "table_ccfc.txt",
            render_table(
                ["CDN", "Negotiated coding"]
                + [f"{s // MB}MB factor" for s in ccfc_sizes],
                [
                    [
                        row.display_name,
                        row.encoding or "-",
                        *(f"{row.factors[s]:.1f}" for s in ccfc_sizes),
                    ]
                    for row in report.table_ccfc
                ],
            ),
        )
    if report.table_faults:
        _write(
            "table6_faulted_sbr.txt",
            render_table(
                [
                    "CDN",
                    "Size",
                    "Clean factor",
                    "Faulted factor",
                    "Re-amp",
                    "Faults",
                    "Retries",
                    "Exhausted",
                    "Budget",
                ],
                [
                    [
                        row.display_name,
                        f"{row.resource_size // MB}MB",
                        f"{row.clean_factor:.0f}",
                        f"{row.faulted_factor:.0f}",
                        f"{row.reamplification:.2f}x",
                        row.faults,
                        row.retries,
                        row.exhausted_fetches,
                        row.max_attempts,
                    ]
                    for row in report.table_faults
                ],
            ),
        )
    _write(
        "fig7_bandwidth.txt",
        render_table(
            ["m", "steady origin Mbps", "peak client Kbps", "saturated"],
            [
                [
                    result.m,
                    f"{result.steady_origin_mbps:.1f}",
                    f"{result.peak_client_kbps:.1f}",
                    "yes" if result.saturated else "no",
                ]
                for result in report.fig7
            ],
        ),
    )
    if report.table7_recommendations is not None:
        from repro.analysis.recommend import render_recommendations_table

        _write(
            "table7_recommendations.txt",
            render_recommendations_table(report.table7_recommendations),
        )
        _write(
            "table7_recommendations.json",
            report.table7_recommendations.to_json(),
        )
    return written
