"""Closed-form fast path for grid cells (planner layer).

:class:`FastPathPlanner` sits between :func:`repro.runner.runall.run_all`
and the :class:`~repro.runner.executor.GridRunner`: it walks a grid
**before** execution and answers every cell it can prove exact from the
calibrated closed forms in :mod:`repro.core.vectorized`, leaving the
rest (flood bandwidth sims, faulted cells, and any cell the engines
refuse) to wire-level simulation.

The correctness story is layered:

* the engines *refuse* (:class:`~repro.core.vectorized.ExactModelError`)
  whenever a regime fails calibration — a refusal costs speed, never
  correctness, because the cell silently falls back to simulation;
* a deterministic sample of fast-answered SBR cells is re-run through
  the real simulation afterwards (:meth:`FastPathPlanner.validate`) and
  any disagreement raises :class:`FastPathMismatchError` — the run
  fails loudly rather than shipping a wrong table;
* OBR answers are probe-verified at calibration time and pinned
  cell-by-cell against simulation by
  ``tests/analysis/test_fastpath_equivalence.py``, so runtime
  revalidation (which would repeat the max-n search, the single most
  expensive simulation in the grid) is left to the test suite.

Sampling is by cell content digest, not randomness, so a resumed run
validates exactly the cells the original run would have.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.vectorized import (
    CcfcFastEngine,
    ExactModelError,
    ObrFastEngine,
    SbrFastEngine,
)
from repro.errors import ReproError
from repro.obs.metrics import current_metrics
from repro.runner.checkpoint import cell_digest
from repro.runner.executor import CellOutcome
from repro.runner.grid import ExperimentCell, ExperimentGrid

#: Experiment kinds the planner may answer from closed forms.
FAST_EXPERIMENTS: Tuple[str, ...] = ("sbr", "obr", "ccfc")

#: One in every this-many fast-answered SBR/CCFC cells is re-simulated
#: and compared bit-for-bit after the grid run.
DEFAULT_VALIDATE_DENOMINATOR = 8


class FastPathMismatchError(ReproError):
    """A sampled cross-validation disagreed with the fast-path answer."""


@dataclass(frozen=True)
class FastPathStats:
    """What the planner did to one grid, for reporting and CI gating."""

    #: Cells answered from closed forms.
    answered: int = 0
    #: Eligible cells the engines refused (fell back to simulation).
    refused: int = 0
    #: Cells whose experiment kind is outside the fast path's scope.
    ineligible: int = 0
    #: Fast-answered cells re-simulated and compared by :meth:`validate`.
    validated: int = 0
    #: Wire-level simulations spent calibrating regime models.
    calibration_runs: int = 0

    @property
    def total(self) -> int:
        return self.answered + self.refused + self.ineligible

    @property
    def hit_rate(self) -> float:
        """Fast-answered share of the whole grid (0.0 for an empty grid)."""
        if self.total <= 0:
            return 0.0
        return self.answered / self.total


@dataclass(frozen=True)
class FastPathPlan:
    """One planned grid: fast outcomes plus the residual to simulate."""

    #: Fast answers, keyed by index in the *original* grid.
    outcomes: Dict[int, CellOutcome] = field(default_factory=dict)
    #: The cells that still need the simulation runner, original order.
    residual: "ExperimentGrid" = field(
        default_factory=lambda: ExperimentGrid("residual")
    )
    stats: FastPathStats = field(default_factory=FastPathStats)


def _digest_bucket(cell: ExperimentCell, denominator: int) -> int:
    """Deterministic bucket in ``[0, denominator)`` for sampling."""
    return int(cell_digest(cell), 16) % denominator


class FastPathPlanner:
    """Answers provably-exact grid cells without opening a connection."""

    def __init__(
        self, validate_denominator: int = DEFAULT_VALIDATE_DENOMINATOR
    ) -> None:
        if validate_denominator < 1:
            raise ReproError(
                f"validate denominator must be >= 1, got {validate_denominator}"
            )
        self.validate_denominator = validate_denominator
        self.sbr = SbrFastEngine()
        self.obr = ObrFastEngine()
        self.ccfc = CcfcFastEngine()
        #: ``(cell, fast_value)`` pairs queued for :meth:`validate`.
        self._samples: List[Tuple[ExperimentCell, Any]] = []
        self._validated = 0
        self._answered = 0
        self._refused = 0
        self._ineligible = 0

    # -- planning -------------------------------------------------------

    def eligible(self, cell: ExperimentCell) -> bool:
        """Is this cell's experiment kind within the fast path's scope?"""
        return cell.experiment in FAST_EXPERIMENTS

    def answer(self, cell: ExperimentCell) -> Optional[Any]:
        """The closed-form value for ``cell``, or ``None`` to simulate.

        ``None`` covers both ineligible experiment kinds and engine
        refusals; the caller cannot tell them apart here — use
        :meth:`plan` for counted statistics.
        """
        if not self.eligible(cell):
            return None
        try:
            if cell.experiment == "sbr":
                vendor, resource_size = cell.key
                rounds = cell.kwargs().get("rounds", 1)
                return self.sbr.measure(vendor, resource_size, rounds=rounds)
            if cell.experiment == "ccfc":
                vendor, resource_size = cell.key
                rounds = cell.kwargs().get("rounds", 1)
                return self.ccfc.measure(vendor, resource_size, rounds=rounds)
            fcdn, bcdn = cell.key
            params = cell.kwargs()
            overlap_count = params.get("overlap_count", 0)
            return self.obr.measure(
                fcdn,
                bcdn,
                resource_size=params.get("resource_size", 1024),
                overlap_count=overlap_count if overlap_count else None,
            )
        except ExactModelError:
            return None

    def plan(self, grid: ExperimentGrid) -> FastPathPlan:
        """Partition ``grid`` into fast outcomes and a residual grid.

        Fast outcomes carry the original grid indices, so merging them
        back with the residual's (re-indexed) outcomes reproduces the
        exact outcome tuple a sim-only run would produce.
        """
        outcomes: Dict[int, CellOutcome] = {}
        residual = ExperimentGrid(grid.name)
        answered = refused = ineligible = 0
        for index, cell in enumerate(grid.cells):
            if not self.eligible(cell):
                ineligible += 1
                residual.add(cell)
                continue
            started = time.perf_counter()
            value = self.answer(cell)
            if value is None:
                refused += 1
                residual.add(cell)
                continue
            answered += 1
            outcomes[index] = CellOutcome(
                cell=cell,
                index=index,
                value=value,
                duration_s=time.perf_counter() - started,
            )
            if (
                cell.experiment in ("sbr", "ccfc")
                and _digest_bucket(cell, self.validate_denominator) == 0
            ):
                self._samples.append((cell, value))
        self._answered += answered
        self._refused += refused
        self._ineligible += ineligible
        registry = current_metrics()
        if registry is not None:
            for outcome_name, count in (
                ("answered", answered),
                ("refused", refused),
                ("ineligible", ineligible),
            ):
                if count:
                    registry.record_fastpath_cells(outcome_name, count)
        return FastPathPlan(outcomes=outcomes, residual=residual, stats=self.stats)

    # -- cross-validation -----------------------------------------------

    def validate(self) -> int:
        """Re-simulate the sampled cells; raise on any disagreement.

        Returns the number of cells validated in this call.  The queue
        drains, so calling again validates nothing until more cells are
        planned.
        """
        from repro.runner.experiments import execute_cell

        count = 0
        while self._samples:
            cell, fast_value = self._samples.pop()
            simulated = execute_cell(cell)
            if simulated != fast_value:
                raise FastPathMismatchError(
                    f"fast path disagrees with simulation on {cell.label}: "
                    f"fast={fast_value!r} sim={simulated!r}"
                )
            count += 1
        self._validated += count
        registry = current_metrics()
        if registry is not None and count:
            registry.record_fastpath_cells("validated", count)
        return count

    @property
    def stats(self) -> FastPathStats:
        """Cumulative statistics over everything planned and validated."""
        return FastPathStats(
            answered=self._answered,
            refused=self._refused,
            ineligible=self._ineligible,
            validated=self._validated,
            calibration_runs=(
                self.sbr.calibration_runs
                + self.obr.calibration_runs
                + self.ccfc.calibration_runs
            ),
        )
