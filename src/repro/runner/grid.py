"""Grid/spec model for parallel experiment execution.

The paper's evaluation is a stack of parameter grids — Table IV is
13 vendors x 3 sizes, Fig 6 is 13 vendors x 25 sizes, Table V is 11
FCDN x BCDN cascades, Fig 7 is m = 1..15 flood intensities.  Every cell
is an independent, deterministic measurement, which makes the whole
sweep embarrassingly parallel *if* the work is described as data instead
of inline loops.

:class:`ExperimentCell` is that description: a named experiment kind
plus a key (the grid coordinates) plus extra keyword parameters, all
hashable and picklable so cells can cross a process boundary.
:class:`ExperimentGrid` is an ordered, duplicate-free sequence of cells;
**grid order defines result order**, which is what lets the executor
guarantee parallel output identical to serial output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Tuple

from repro.errors import ConfigurationError

#: Scalar cell coordinates — everything here must hash, pickle, and
#: compare by value so cells can key dictionaries across processes.
Key = Tuple[Any, ...]


@dataclass(frozen=True)
class ExperimentCell:
    """One grid point: an experiment kind and its coordinates.

    ``experiment`` names a cell function in the
    :mod:`repro.runner.experiments` registry; ``key`` is the coordinate
    tuple that identifies the cell within its grid (e.g. ``("akamai",
    10485760)``); ``params`` carries extra keyword arguments for the
    cell function as a sorted tuple of pairs, keeping the cell hashable.
    """

    experiment: str
    key: Key
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, experiment: str, key: Iterable[Any], **params: Any) -> "ExperimentCell":
        return cls(
            experiment=experiment,
            key=tuple(key),
            params=tuple(sorted(params.items())),
        )

    def kwargs(self) -> Dict[str, Any]:
        """The extra parameters as a keyword-argument dict."""
        return dict(self.params)

    @property
    def label(self) -> str:
        """Human-readable cell name, e.g. ``sbr[akamai, 10485760]``."""
        coords = ", ".join(str(part) for part in self.key)
        return f"{self.experiment}[{coords}]"


class ExperimentGrid:
    """An ordered, duplicate-free collection of cells.

    Duplicate cells are dropped on construction (first occurrence wins):
    ``run_all`` builds one SBR grid serving both Table IV and Fig 6, and
    their size axes overlap.  Order is preserved — it is the contract the
    executor merges results back into.
    """

    __slots__ = ("name", "_cells", "_index_by_cell")

    def __init__(self, name: str, cells: Iterable[ExperimentCell] = ()) -> None:
        self.name = name
        self._cells: List[ExperimentCell] = []
        self._index_by_cell: Dict[ExperimentCell, int] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: ExperimentCell) -> None:
        """Append ``cell`` unless an identical cell is already present."""
        if cell in self._index_by_cell:
            return
        self._index_by_cell[cell] = len(self._cells)
        self._cells.append(cell)

    def extend(self, cells: Iterable[ExperimentCell]) -> None:
        for cell in cells:
            self.add(cell)

    def index_of(self, cell: ExperimentCell) -> int:
        """Position of ``cell`` in grid order."""
        try:
            return self._index_by_cell[cell]
        except KeyError:
            raise ConfigurationError(f"cell {cell.label} is not in grid {self.name!r}")

    @property
    def cells(self) -> Tuple[ExperimentCell, ...]:
        return tuple(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[ExperimentCell]:
        return iter(self._cells)

    def __contains__(self, cell: object) -> bool:
        return cell in self._index_by_cell

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentGrid):
            return NotImplemented
        return self.name == other.name and self._cells == other._cells

    def __repr__(self) -> str:
        return f"ExperimentGrid({self.name!r}, {len(self._cells)} cells)"
