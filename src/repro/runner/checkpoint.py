"""Crash-safe JSONL checkpointing for grid runs.

A :class:`RunCheckpoint` is an append-only journal: one header line
identifying the format, then one JSON line per finished cell, flushed
as soon as the cell completes.  A killed run leaves at worst a torn
final line, which the loader skips; every intact line is a cell that
``repro run-all --resume`` does not need to re-run.

Cells are identified by a content digest over ``(experiment, key,
params)`` — stable across processes and sessions as long as the grid
definition is unchanged — and additionally verified against the grid
position on restore, so a reordered or edited grid silently falls back
to recomputing rather than restoring a stale value.  Failed cells are
journaled (for reporting) but never restored: a resume retries them.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from pathlib import Path
from typing import IO, Any, Dict, Optional, Sequence, Union

from repro.runner.executor import CellOutcome
from repro.runner.grid import ExperimentCell

#: Format tag carried by the journal's header line.
FORMAT = "repro-checkpoint-v1"

#: Exceptions a corrupt or stale pickled outcome can raise on load; any
#: of these means "recompute the cell", never "crash the resume".
_RESTORE_ERRORS = (
    ValueError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    pickle.UnpicklingError,
)


def cell_digest(cell: ExperimentCell) -> str:
    """Content digest identifying a cell across runs and processes."""
    token = f"{cell.experiment}|{cell.key!r}|{cell.params!r}"
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


class RunCheckpoint:
    """An append-only journal of finished grid cells."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None
        self._seen: Dict[str, Dict[str, Any]] = {}
        self._load()

    # -- loading --------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="ascii") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    # Torn tail from a killed writer; everything before
                    # it is intact.
                    continue
                if not isinstance(entry, dict) or entry.get("format") == FORMAT:
                    continue
                digest = entry.get("digest")
                if isinstance(digest, str):
                    self._seen[digest] = entry

    @property
    def completed_count(self) -> int:
        return len(self._seen)

    def restore(self, cells: Sequence[ExperimentCell]) -> Dict[int, CellOutcome]:
        """Outcomes to reuse, keyed by grid index.

        Only successful cells restore, and only when both the digest and
        the grid position still match the journaled entry.
        """
        restored: Dict[int, CellOutcome] = {}
        for index, cell in enumerate(cells):
            entry = self._seen.get(cell_digest(cell))
            if entry is None or not entry.get("ok"):
                continue
            blob = entry.get("outcome")
            if not isinstance(blob, str):
                continue
            try:
                outcome = pickle.loads(base64.b64decode(blob.encode("ascii")))
            except _RESTORE_ERRORS:
                continue
            if not isinstance(outcome, CellOutcome) or outcome.failure is not None:
                continue
            if outcome.index != index or outcome.cell != cell:
                continue
            restored[index] = outcome
        return restored

    # -- recording ------------------------------------------------------

    def record(self, outcome: CellOutcome) -> None:
        """Journal one finished cell; flushed before returning."""
        digest = cell_digest(outcome.cell)
        entry: Dict[str, Any] = {
            "digest": digest,
            "index": outcome.index,
            "label": outcome.cell.label,
            "ok": outcome.ok,
            "outcome": base64.b64encode(pickle.dumps(outcome)).decode("ascii"),
        }
        handle = self._ensure_open()
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        self._seen[digest] = entry

    def _ensure_open(self) -> IO[str]:
        if self._handle is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(self.path, "a", encoding="ascii")
            if fresh:
                self._handle.write(json.dumps({"format": FORMAT}) + "\n")
                self._handle.flush()
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:
        return f"RunCheckpoint({str(self.path)!r}, {self.completed_count} cells)"
