"""Parallel grid execution with deterministic result merging.

:class:`GridRunner` runs every cell of an
:class:`~repro.runner.grid.ExperimentGrid` — serially in-process, or
fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor` —
and returns a :class:`GridResult` whose outcomes are **always in grid
order**, regardless of completion order.  Because every cell function is
deterministic, the parallel result object compares (and reprs) identical
to the serial one; ``tests/runner/test_equivalence.py`` pins that
guarantee.

A failing cell never kills the sweep: its exception is captured as a
:class:`CellFailure` (type name + message, both stable across
processes) and the remaining cells keep running.  Per-cell wall time is
recorded but excluded from equality — timing is observability, not
result.

Worker-count resolution, in priority order:

1. ``REPRO_RUNNER_SERIAL=1`` in the environment forces serial execution
   (the benchmarks' escape hatch);
2. an explicit ``workers=`` argument;
3. ``REPRO_RUNNER_WORKERS`` in the environment;
4. ``os.cpu_count()``.

``workers <= 1`` always means the serial in-process path.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.runner.grid import ExperimentCell, ExperimentGrid

#: Signature of the runner's progress observer: called after every
#: finished cell with ``(outcome, done_count, total_count)``.
Observer = Callable[["CellOutcome", int, int], None]

#: Environment variable forcing serial execution regardless of workers.
SERIAL_ENV = "REPRO_RUNNER_SERIAL"
#: Environment variable providing the default worker count.
WORKERS_ENV = "REPRO_RUNNER_WORKERS"


class RunnerCellError(ReproError):
    """Raised when unwrapping a grid result that contains a failed cell."""


@dataclass(frozen=True)
class CellFailure:
    """A captured cell exception, comparable across process boundaries.

    Only the exception type name and message participate in equality:
    tracebacks embed file paths and line numbers that differ between the
    serial and pool paths, so they are carried for diagnostics only.
    """

    exception_type: str
    message: str
    traceback: str = field(default="", compare=False, repr=False)

    @classmethod
    def from_exception(cls, error: BaseException) -> "CellFailure":
        return cls(
            exception_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ),
        )

    def describe(self) -> str:
        return f"{self.exception_type}: {self.message}"


@dataclass(frozen=True)
class CellObservation:
    """Per-cell observability payload: spans, trace events, and a
    metrics snapshot collected while the cell ran.

    Built only when the runner is asked to ``collect``; ships across the
    process-pool boundary as plain tuples/dicts.
    """

    #: Finished :class:`~repro.obs.tracer.SpanRecord` objects.
    spans: Tuple[Any, ...] = ()
    #: :class:`~repro.netsim.trace.TraceEvent` objects from every
    #: attack ledger the cell produced.
    events: Tuple[Any, ...] = ()
    #: A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict.
    metrics: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell: its value or its failure, plus timing."""

    cell: ExperimentCell
    index: int
    value: Any = None
    failure: Optional[CellFailure] = None
    #: Wall seconds the cell took; excluded from equality *and* repr so
    #: a parallel run's outcomes are byte-identical to a serial run's.
    duration_s: float = field(default=0.0, compare=False, repr=False)
    #: Observability payload (``None`` unless the run collected); like
    #: timing, excluded from equality and repr.
    obs: Optional[CellObservation] = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return self.failure is None

    def unwrap(self) -> Any:
        """The cell's value, re-raising a captured failure."""
        if self.failure is not None:
            raise RunnerCellError(
                f"cell {self.cell.label} failed: {self.failure.describe()}"
            )
        return self.value


@dataclass(frozen=True)
class CellTiming:
    """Aggregate per-cell wall-time statistics for one grid run.

    Failed cells are **included** in every figure (a cell that burned
    30 s before raising still burned 30 s) and additionally broken out
    as ``failed_s``/``failed_count``.
    """

    total_s: float = 0.0
    max_s: float = 0.0
    mean_s: float = 0.0
    ok_s: float = 0.0
    failed_s: float = 0.0
    count: int = 0
    failed_count: int = 0
    #: Label of the slowest cell ("" for an empty run).
    slowest: str = ""

    @classmethod
    def from_outcomes(cls, outcomes: Tuple["CellOutcome", ...]) -> "CellTiming":
        if not outcomes:
            return cls()
        total = sum(o.duration_s for o in outcomes)
        failed = [o for o in outcomes if not o.ok]
        peak = max(outcomes, key=lambda o: o.duration_s)
        return cls(
            total_s=total,
            max_s=peak.duration_s,
            mean_s=total / len(outcomes),
            ok_s=total - sum(o.duration_s for o in failed),
            failed_s=sum(o.duration_s for o in failed),
            count=len(outcomes),
            failed_count=len(failed),
            slowest=peak.cell.label,
        )


@dataclass(frozen=True)
class GridResult:
    """All outcomes of one grid run, merged in grid order."""

    grid_name: str
    outcomes: Tuple[CellOutcome, ...]
    workers: int = field(default=1, compare=False, repr=False)
    #: Wall seconds for the whole run; excluded from equality and repr.
    duration_s: float = field(default=0.0, compare=False, repr=False)

    def __iter__(self) -> Iterator[CellOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def values(self) -> List[Any]:
        """Every cell value in grid order, re-raising the first failure."""
        return [outcome.unwrap() for outcome in self.outcomes]

    def failures(self) -> List[CellOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def value_by_key(self) -> Dict[Tuple[Any, ...], Any]:
        """Map cell key -> value for successful cells."""
        return {o.cell.key: o.value for o in self.outcomes if o.ok}

    def cell_seconds(self) -> CellTiming:
        """Per-cell wall-time statistics (total, max, mean, failed-cell
        share) — not just the sum, and failed cells count too."""
        return CellTiming.from_outcomes(self.outcomes)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Apply the worker-count resolution rules documented above."""
    if os.environ.get(SERIAL_ENV, "").strip() not in ("", "0"):
        return 1
    if workers is not None:
        return max(1, workers)
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ReproError(f"{WORKERS_ENV} must be an integer, got {env!r}")
    return max(1, os.cpu_count() or 1)


def _execute_indexed(
    index: int, cell: ExperimentCell, collect: bool = False
) -> CellOutcome:
    """Run one cell, capturing failure and timing (worker entry point).

    With ``collect=True`` the cell runs under a fresh
    :class:`~repro.obs.tracer.Tracer` (span ids prefixed with the cell
    index so traces from different cells never collide) and a fresh
    :class:`~repro.obs.metrics.MetricsRegistry`; the harvest ships back
    as :attr:`CellOutcome.obs`.
    """
    from repro.runner.experiments import execute_cell

    if not collect:
        started = time.perf_counter()
        try:
            value = execute_cell(cell)
            return CellOutcome(
                cell=cell,
                index=index,
                value=value,
                duration_s=time.perf_counter() - started,
            )
        except Exception as error:
            return CellOutcome(
                cell=cell,
                index=index,
                failure=CellFailure.from_exception(error),
                duration_s=time.perf_counter() - started,
            )

    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.obs.tracer import Tracer, use_tracer

    tracer = Tracer(id_prefix=f"c{index}.")
    registry = MetricsRegistry()
    value: Any = None
    failure: Optional[CellFailure] = None
    started = time.perf_counter()
    with use_tracer(tracer), use_metrics(registry):
        with tracer.span("runner.cell") as span:
            span.set(experiment=cell.experiment, label=cell.label, index=index)
            try:
                value = execute_cell(cell)
                span.set(ok=True)
            except Exception as error:
                failure = CellFailure.from_exception(error)
                span.set(ok=False, error=failure.describe())
    duration = time.perf_counter() - started
    registry.record_cell(cell.experiment, duration, failure is None)
    return CellOutcome(
        cell=cell,
        index=index,
        value=value,
        failure=failure,
        duration_s=duration,
        obs=CellObservation(
            spans=tracer.finished_spans(),
            events=tracer.events(),
            metrics=registry.snapshot(),
        ),
    )


class GridRunner:
    """Executes experiment grids, serially or over a process pool."""

    def __init__(
        self,
        workers: Optional[int] = None,
        max_pending: Optional[int] = None,
        collect: bool = False,
        observer: Optional[Observer] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        #: Cap on futures in flight; bounds memory for very large grids.
        self.max_pending = max_pending if max_pending is not None else self.workers * 4
        #: When true, every cell runs traced+metered and its outcome
        #: carries a :class:`CellObservation`.
        self.collect = collect
        #: Progress callback invoked after every finished cell (in
        #: completion order, which differs from grid order under a pool).
        self.observer = observer

    def run(self, grid: ExperimentGrid) -> GridResult:
        """Run every cell; outcomes come back in grid order."""
        started = time.perf_counter()
        cells = grid.cells
        if self.workers <= 1 or len(cells) <= 1:
            outcomes = []
            for i, cell in enumerate(cells):
                outcome = _execute_indexed(i, cell, collect=self.collect)
                outcomes.append(outcome)
                self._notify(outcome, len(outcomes), len(cells))
            effective_workers = 1
        else:
            outcomes = self._run_pool(cells)
            effective_workers = min(self.workers, len(cells))
        return GridResult(
            grid_name=grid.name,
            outcomes=tuple(outcomes),
            workers=effective_workers,
            duration_s=time.perf_counter() - started,
        )

    def _notify(self, outcome: CellOutcome, done: int, total: int) -> None:
        if self.observer is not None:
            self.observer(outcome, done, total)

    def _run_pool(self, cells: Tuple[ExperimentCell, ...]) -> List[CellOutcome]:
        slots: List[Optional[CellOutcome]] = [None] * len(cells)
        queue = iter(enumerate(cells))
        completed = 0
        with ProcessPoolExecutor(max_workers=min(self.workers, len(cells))) as pool:
            pending = set()
            exhausted = False
            while not exhausted or pending:
                while not exhausted and len(pending) < self.max_pending:
                    try:
                        index, cell = next(queue)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.add(
                        pool.submit(_execute_indexed, index, cell, self.collect)
                    )
                if not pending:
                    continue
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome = future.result()
                    slots[outcome.index] = outcome
                    completed += 1
                    self._notify(outcome, completed, len(cells))
        assert all(outcome is not None for outcome in slots)
        return [outcome for outcome in slots if outcome is not None]
