"""Parallel grid execution with deterministic result merging.

:class:`GridRunner` runs every cell of an
:class:`~repro.runner.grid.ExperimentGrid` — serially in-process, or
fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor` —
and returns a :class:`GridResult` whose outcomes are **always in grid
order**, regardless of completion order.  Because every cell function is
deterministic, the parallel result object compares (and reprs) identical
to the serial one; ``tests/runner/test_equivalence.py`` pins that
guarantee.

A failing cell never kills the sweep: its exception is captured as a
:class:`CellFailure` (type name + message + cause chain, all stable
across processes) and the remaining cells keep running.  Per-cell wall
time is recorded but excluded from equality — timing is observability,
not result.

Degradation is layered:

* **per-cell retries** (``cell_retries`` / ``REPRO_RUNNER_RETRIES``):
  a raising cell is re-attempted in place, with exponential backoff;
* **worker-crash containment**: a worker process dying (OOM kill,
  segfault) breaks a ``ProcessPoolExecutor`` irrecoverably — the runner
  catches the break, re-runs the in-flight cells solo to separate the
  crasher from innocent bystanders, and records a deterministic crasher
  as a ``WorkerCrash`` failure instead of losing the sweep;
* **checkpointing**: pass a
  :class:`~repro.runner.checkpoint.RunCheckpoint` to :meth:`GridRunner.run`
  and every finished cell is journaled immediately; a rerun restores
  completed cells and only executes the remainder.

Worker-count resolution, in priority order:

1. ``REPRO_RUNNER_SERIAL=1`` in the environment forces serial execution
   (the benchmarks' escape hatch);
2. an explicit ``workers=`` argument;
3. ``REPRO_RUNNER_WORKERS`` in the environment;
4. ``os.cpu_count()``.

``workers <= 1`` always means the serial in-process path.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ReproError
from repro.runner.grid import ExperimentCell, ExperimentGrid

if TYPE_CHECKING:
    from repro.runner.checkpoint import RunCheckpoint

#: Signature of the runner's progress observer: called after every
#: finished cell with ``(outcome, done_count, total_count)``.
Observer = Callable[["CellOutcome", int, int], None]

#: Environment variable forcing serial execution regardless of workers.
SERIAL_ENV = "REPRO_RUNNER_SERIAL"
#: Environment variable providing the default worker count.
WORKERS_ENV = "REPRO_RUNNER_WORKERS"
#: Environment variable providing the default per-cell retry budget.
RETRIES_ENV = "REPRO_RUNNER_RETRIES"

#: Exception-type name given to cells whose worker process died.
WORKER_CRASH = "WorkerCrash"


class RunnerCellError(ReproError):
    """Raised when unwrapping a grid result that contains a failed cell."""


@dataclass(frozen=True)
class CellFailure:
    """A captured cell exception, comparable across process boundaries.

    Only the exception type name and message participate in equality:
    tracebacks embed file paths and line numbers that differ between the
    serial and pool paths, so they are carried for diagnostics only.
    """

    exception_type: str
    message: str
    #: The full cause chain, outermost first: ``"Type: message"`` per
    #: link, following ``__cause__`` then (unsuppressed) ``__context__``.
    #: Cheap strings, stable across processes, so it stays in equality.
    chain: Tuple[str, ...] = ()
    traceback: str = field(default="", compare=False, repr=False)

    @classmethod
    def from_exception(cls, error: BaseException) -> "CellFailure":
        chain: List[str] = []
        # Identity-list cycle guard: ``any(... is ...)`` instead of an
        # ``id()``-keyed set, so no address-derived value exists on this
        # path.  Cause chains are short; the linear scan is irrelevant.
        seen: List[BaseException] = []
        current: Optional[BaseException] = error
        while current is not None and not any(current is prior for prior in seen):
            seen.append(current)
            chain.append(f"{type(current).__name__}: {current}")
            if current.__cause__ is not None:
                current = current.__cause__
            elif current.__context__ is not None and not current.__suppress_context__:
                current = current.__context__
            else:
                current = None
        return cls(
            exception_type=type(error).__name__,
            message=str(error),
            chain=tuple(chain),
            traceback="".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ),
        )

    def describe(self) -> str:
        base = f"{self.exception_type}: {self.message}"
        if len(self.chain) > 1:
            return f"{base} (root cause: {self.chain[-1]})"
        return base


@dataclass(frozen=True)
class CellObservation:
    """Per-cell observability payload: spans, trace events, and a
    metrics snapshot collected while the cell ran.

    Built only when the runner is asked to ``collect``; ships across the
    process-pool boundary as plain tuples/dicts.
    """

    #: Finished :class:`~repro.obs.tracer.SpanRecord` objects.
    spans: Tuple[Any, ...] = ()
    #: :class:`~repro.netsim.trace.TraceEvent` objects from every
    #: attack ledger the cell produced.
    events: Tuple[Any, ...] = ()
    #: A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict.
    metrics: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell: its value or its failure, plus timing."""

    cell: ExperimentCell
    index: int
    value: Any = None
    failure: Optional[CellFailure] = None
    #: Wall seconds the cell took; excluded from equality *and* repr so
    #: a parallel run's outcomes are byte-identical to a serial run's.
    duration_s: float = field(default=0.0, compare=False, repr=False)
    #: Observability payload (``None`` unless the run collected); like
    #: timing, excluded from equality and repr.
    obs: Optional[CellObservation] = field(default=None, compare=False, repr=False)
    #: How many in-process attempts the cell took (1 = first try).
    #: Excluded from equality: a resumed run may legitimately succeed on
    #: a different attempt count than an uninterrupted one.
    attempts: int = field(default=1, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return self.failure is None

    def unwrap(self) -> Any:
        """The cell's value, re-raising a captured failure."""
        if self.failure is not None:
            raise RunnerCellError(
                f"cell {self.cell.label} failed: {self.failure.describe()}"
            )
        return self.value


@dataclass(frozen=True)
class CellTiming:
    """Aggregate per-cell wall-time statistics for one grid run.

    Failed cells are **included** in every figure (a cell that burned
    30 s before raising still burned 30 s) and additionally broken out
    as ``failed_s``/``failed_count``.
    """

    total_s: float = 0.0
    max_s: float = 0.0
    mean_s: float = 0.0
    ok_s: float = 0.0
    failed_s: float = 0.0
    count: int = 0
    failed_count: int = 0
    #: Label of the slowest cell ("" for an empty run).
    slowest: str = ""

    @classmethod
    def from_outcomes(cls, outcomes: Tuple["CellOutcome", ...]) -> "CellTiming":
        if not outcomes:
            return cls()
        total = sum(o.duration_s for o in outcomes)
        failed = [o for o in outcomes if not o.ok]
        peak = max(outcomes, key=lambda o: o.duration_s)
        return cls(
            total_s=total,
            max_s=peak.duration_s,
            mean_s=total / len(outcomes),
            ok_s=total - sum(o.duration_s for o in failed),
            failed_s=sum(o.duration_s for o in failed),
            count=len(outcomes),
            failed_count=len(failed),
            slowest=peak.cell.label,
        )


@dataclass(frozen=True)
class GridResult:
    """All outcomes of one grid run, merged in grid order."""

    grid_name: str
    outcomes: Tuple[CellOutcome, ...]
    workers: int = field(default=1, compare=False, repr=False)
    #: Wall seconds for the whole run; excluded from equality and repr.
    duration_s: float = field(default=0.0, compare=False, repr=False)

    def __iter__(self) -> Iterator[CellOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def values(self) -> List[Any]:
        """Every cell value in grid order, re-raising the first failure."""
        return [outcome.unwrap() for outcome in self.outcomes]

    def failures(self) -> List[CellOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def value_by_key(self) -> Dict[Tuple[Any, ...], Any]:
        """Map cell key -> value for successful cells."""
        return {o.cell.key: o.value for o in self.outcomes if o.ok}

    def cell_seconds(self) -> CellTiming:
        """Per-cell wall-time statistics (total, max, mean, failed-cell
        share) — not just the sum, and failed cells count too."""
        return CellTiming.from_outcomes(self.outcomes)


def resolve_cell_retries(retries: Optional[int] = None) -> int:
    """Per-cell retry budget: explicit argument, else ``REPRO_RUNNER_RETRIES``,
    else zero (cell functions are deterministic; retries only help when a
    fault layer or flaky external dependency is in play)."""
    if retries is not None:
        if retries < 0:
            raise ReproError(f"cell retries must be >= 0, got {retries}")
        return retries
    env = os.environ.get(RETRIES_ENV, "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            raise ReproError(f"{RETRIES_ENV} must be an integer, got {env!r}")
    return 0


def resolve_workers(workers: Optional[int] = None) -> int:
    """Apply the worker-count resolution rules documented above."""
    if os.environ.get(SERIAL_ENV, "").strip() not in ("", "0"):
        return 1
    if workers is not None:
        return max(1, workers)
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ReproError(f"{WORKERS_ENV} must be an integer, got {env!r}")
    return max(1, os.cpu_count() or 1)


def _attempt_cell(
    cell: ExperimentCell, retries: int, backoff_s: float
) -> Tuple[Any, Optional[CellFailure], int]:
    """Run one cell with up to ``retries`` in-place re-attempts.

    Returns ``(value, failure, attempts)``; backoff doubles per attempt
    and is actually slept (this is runner resilience against flaky cell
    dependencies, not simulated time).
    """
    from repro.runner.experiments import execute_cell

    attempts = 0
    while True:
        attempts += 1
        try:
            return execute_cell(cell), None, attempts
        except Exception as error:
            if attempts > retries:
                return None, CellFailure.from_exception(error), attempts
            if backoff_s > 0:
                time.sleep(backoff_s * 2 ** (attempts - 1))


def _execute_indexed(
    index: int,
    cell: ExperimentCell,
    collect: bool = False,
    retries: int = 0,
    backoff_s: float = 0.0,
) -> CellOutcome:
    """Run one cell, capturing failure and timing (worker entry point).

    With ``collect=True`` the cell runs under a fresh
    :class:`~repro.obs.tracer.Tracer` (span ids prefixed with the cell
    index so traces from different cells never collide) and a fresh
    :class:`~repro.obs.metrics.MetricsRegistry`; the harvest ships back
    as :attr:`CellOutcome.obs`.
    """
    if not collect:
        started = time.perf_counter()
        value, failure, attempts = _attempt_cell(cell, retries, backoff_s)
        return CellOutcome(
            cell=cell,
            index=index,
            value=value,
            failure=failure,
            duration_s=time.perf_counter() - started,
            attempts=attempts,
        )

    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.obs.tracer import Tracer, use_tracer

    tracer = Tracer(id_prefix=f"c{index}.")
    registry = MetricsRegistry()
    started = time.perf_counter()
    with use_tracer(tracer), use_metrics(registry):
        with tracer.span("runner.cell") as span:
            span.set(experiment=cell.experiment, label=cell.label, index=index)
            value, failure, attempts = _attempt_cell(cell, retries, backoff_s)
            if failure is None:
                span.set(ok=True)
            else:
                span.set(ok=False, error=failure.describe())
            if attempts > 1:
                span.set(attempts=attempts)
    duration = time.perf_counter() - started
    registry.record_cell(cell.experiment, duration, failure is None)
    return CellOutcome(
        cell=cell,
        index=index,
        value=value,
        failure=failure,
        duration_s=duration,
        obs=CellObservation(
            spans=tracer.finished_spans(),
            events=tracer.events(),
            metrics=registry.snapshot(),
        ),
        attempts=attempts,
    )


class _PoolBroken(Exception):
    """Internal: the process pool died with these cell indices in flight."""

    def __init__(self, in_flight: List[int]) -> None:
        super().__init__(f"pool broke with cells {in_flight} in flight")
        self.in_flight = in_flight


class GridRunner:
    """Executes experiment grids, serially or over a process pool."""

    def __init__(
        self,
        workers: Optional[int] = None,
        max_pending: Optional[int] = None,
        collect: bool = False,
        observer: Optional[Observer] = None,
        cell_retries: Optional[int] = None,
        retry_backoff_s: float = 0.05,
        max_pool_restarts: int = 8,
    ) -> None:
        self.workers = resolve_workers(workers)
        #: Cap on futures in flight; bounds memory for very large grids.
        self.max_pending = max_pending if max_pending is not None else self.workers * 4
        #: When true, every cell runs traced+metered and its outcome
        #: carries a :class:`CellObservation`.
        self.collect = collect
        #: Progress callback invoked after every finished cell (in
        #: completion order, which differs from grid order under a pool).
        self.observer = observer
        #: In-place re-attempts per raising cell (0 = fail immediately).
        self.cell_retries = resolve_cell_retries(cell_retries)
        #: Base backoff slept between in-place attempts (doubles each time).
        self.retry_backoff_s = retry_backoff_s
        #: How many broken-pool recoveries to tolerate before giving up.
        self.max_pool_restarts = max_pool_restarts

    def run(
        self, grid: ExperimentGrid, checkpoint: Optional["RunCheckpoint"] = None
    ) -> GridResult:
        """Run every cell; outcomes come back in grid order.

        With a ``checkpoint``, previously journaled successful cells are
        restored without re-running (or re-notifying the observer), and
        every freshly finished cell is journaled before the run moves on.
        """
        started = time.perf_counter()
        cells = grid.cells
        slots: List[Optional[CellOutcome]] = [None] * len(cells)
        if checkpoint is not None:
            for index, outcome in checkpoint.restore(cells).items():
                slots[index] = outcome
        remaining = sum(1 for slot in slots if slot is None)
        if self.workers <= 1 or remaining <= 1:
            done = len(cells) - remaining
            for i, cell in enumerate(cells):
                if slots[i] is not None:
                    continue
                outcome = _execute_indexed(
                    i,
                    cell,
                    collect=self.collect,
                    retries=self.cell_retries,
                    backoff_s=self.retry_backoff_s,
                )
                slots[i] = outcome
                done += 1
                self._record(outcome, checkpoint)
                self._notify(outcome, done, len(cells))
            effective_workers = 1
        else:
            self._run_pool(cells, slots, checkpoint)
            effective_workers = min(self.workers, remaining)
        assert all(outcome is not None for outcome in slots)
        return GridResult(
            grid_name=grid.name,
            outcomes=tuple(outcome for outcome in slots if outcome is not None),
            workers=effective_workers,
            duration_s=time.perf_counter() - started,
        )

    def _notify(self, outcome: CellOutcome, done: int, total: int) -> None:
        if self.observer is not None:
            self.observer(outcome, done, total)

    def _record(
        self, outcome: CellOutcome, checkpoint: Optional["RunCheckpoint"]
    ) -> None:
        if checkpoint is not None:
            checkpoint.record(outcome)

    def _run_pool(
        self,
        cells: Tuple[ExperimentCell, ...],
        slots: List[Optional[CellOutcome]],
        checkpoint: Optional["RunCheckpoint"],
    ) -> None:
        """Fill the empty ``slots`` via a process pool, surviving crashes.

        A worker process dying poisons the whole ``ProcessPoolExecutor``
        (every pending future raises ``BrokenProcessPool``), so recovery
        is pass-based: re-run the cells that were in flight when the pool
        broke **solo** — a one-cell, one-worker pass — which cleanly
        separates a deterministic crasher (its solo pass breaks too, and
        it gets a ``WorkerCrash`` failure) from innocent cells that just
        shared the doomed pool.  Then resume pooled execution for the
        rest.
        """
        done_counter = [sum(1 for slot in slots if slot is not None)]
        restarts = 0
        while True:
            remaining = [i for i, slot in enumerate(slots) if slot is None]
            if not remaining:
                return
            try:
                self._pool_pass(cells, slots, remaining, checkpoint, done_counter)
            except _PoolBroken as broken:
                restarts += 1
                if restarts > self.max_pool_restarts:
                    raise ReproError(
                        f"grid run aborted: process pool broke {restarts} times "
                        f"(last in-flight cells: {broken.in_flight})"
                    )
                self._retry_solo(cells, slots, broken.in_flight, checkpoint, done_counter)

    def _retry_solo(
        self,
        cells: Tuple[ExperimentCell, ...],
        slots: List[Optional[CellOutcome]],
        suspects: List[int],
        checkpoint: Optional["RunCheckpoint"],
        done_counter: List[int],
    ) -> None:
        for index in suspects:
            if slots[index] is not None:
                continue
            try:
                self._pool_pass(
                    cells, slots, [index], checkpoint, done_counter, solo=True
                )
            except _PoolBroken:
                # Crashed alone in a fresh single-worker pool: the cell
                # itself kills its worker, deterministically.
                outcome = CellOutcome(
                    cell=cells[index],
                    index=index,
                    failure=CellFailure(
                        exception_type=WORKER_CRASH,
                        message=(
                            f"worker process died while running {cells[index].label}"
                        ),
                    ),
                )
                slots[index] = outcome
                done_counter[0] += 1
                self._record(outcome, checkpoint)
                self._notify(outcome, done_counter[0], len(cells))

    def _pool_pass(
        self,
        cells: Tuple[ExperimentCell, ...],
        slots: List[Optional[CellOutcome]],
        batch: List[int],
        checkpoint: Optional["RunCheckpoint"],
        done_counter: List[int],
        solo: bool = False,
    ) -> None:
        workers = 1 if solo else min(self.workers, len(batch))
        queue = iter(batch)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending: Dict[Any, int] = {}
            exhausted = False
            while not exhausted or pending:
                while not exhausted and len(pending) < self.max_pending:
                    try:
                        index = next(queue)
                    except StopIteration:
                        exhausted = True
                        break
                    future = pool.submit(
                        _execute_indexed,
                        index,
                        cells[index],
                        self.collect,
                        self.cell_retries,
                        self.retry_backoff_s,
                    )
                    pending[future] = index
                if not pending:
                    continue
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        outcome = future.result()
                    except BrokenExecutor:
                        raise _PoolBroken(sorted(pending.values()))
                    del pending[future]
                    slots[outcome.index] = outcome
                    done_counter[0] += 1
                    self._record(outcome, checkpoint)
                    self._notify(outcome, done_counter[0], len(cells))
