"""Cell functions: how each experiment kind executes one grid cell.

Cell functions live at module top level and are resolved **by name**
through a registry, so an :class:`~repro.runner.grid.ExperimentCell`
stays picklable and a worker process (fork or spawn) can execute it
after merely importing this module.

Five kinds cover the paper's Tables IV–V, Figs 6–7, the faulted
re-amplification table, and the compression-conversion follow-up:

* ``sbr`` — key ``(vendor, resource_size)``, runs one SBR measurement
  (memoized through :func:`repro.runner.memo.measure_sbr`);
* ``obr`` — key ``(fcdn, bcdn)``, searches max n and measures one OBR
  cascade;
* ``ccfc`` — key ``(vendor, resource_size)``, one compression-conversion
  measurement (memoized through :func:`repro.runner.memo.measure_ccfc`);
* ``flood`` — key ``(vendor, m)``, one Fig 7 bandwidth simulation;
* ``sbr-faults`` — key ``(vendor, resource_size, seed)``, one SBR
  measurement under a seeded fault plan with vendor retries engaged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.core.obr import ObrAttack
from repro.core.practical import BandwidthAttackSimulation
from repro.errors import ConfigurationError
from repro.runner.grid import ExperimentCell
from repro.runner.memo import measure_ccfc, measure_sbr

CellFunction = Callable[[ExperimentCell], Any]

_REGISTRY: Dict[str, CellFunction] = {}


def register(name: str, fn: CellFunction) -> None:
    """Register a cell function under ``name`` (last registration wins)."""
    _REGISTRY[name] = fn


def cell_function(name: str) -> CellFunction:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"no cell function registered for experiment {name!r} "
            f"(known: {sorted(_REGISTRY)})"
        )


def execute_cell(cell: ExperimentCell) -> Any:
    """Run one cell and return its result value.

    This is the function worker processes invoke; everything it needs is
    reachable from the cell itself.
    """
    return cell_function(cell.experiment)(cell)


# ---------------------------------------------------------------------------
# Cell builders + cell functions per experiment kind
# ---------------------------------------------------------------------------

def sbr_cell(vendor: str, resource_size: int, rounds: int = 1) -> ExperimentCell:
    """Table IV / Fig 6 cell: one vendor at one resource size."""
    return ExperimentCell.make("sbr", (vendor, resource_size), rounds=rounds)


def _run_sbr_cell(cell: ExperimentCell) -> Any:
    vendor, resource_size = cell.key
    rounds = cell.kwargs().get("rounds", 1)
    return measure_sbr(vendor, resource_size, rounds)


def ccfc_cell(vendor: str, resource_size: int, rounds: int = 1) -> ExperimentCell:
    """Compression-conversion cell: one vendor at one resource size."""
    return ExperimentCell.make("ccfc", (vendor, resource_size), rounds=rounds)


def _run_ccfc_cell(cell: ExperimentCell) -> Any:
    vendor, resource_size = cell.key
    rounds = cell.kwargs().get("rounds", 1)
    return measure_ccfc(vendor, resource_size, rounds)


def obr_cell(
    fcdn: str,
    bcdn: str,
    resource_size: int = 1024,
    overlap_count: int = 0,
) -> ExperimentCell:
    """Table V cell: one FCDN x BCDN cascade.

    ``overlap_count=0`` means "search the maximum n" (the Table V
    methodology); a positive count skips the search.
    """
    return ExperimentCell.make(
        "obr", (fcdn, bcdn), resource_size=resource_size, overlap_count=overlap_count
    )


def _run_obr_cell(cell: ExperimentCell) -> Any:
    fcdn, bcdn = cell.key
    params = cell.kwargs()
    attack = ObrAttack(fcdn, bcdn, resource_size=params.get("resource_size", 1024))
    overlap_count = params.get("overlap_count", 0)
    return attack.run(overlap_count=overlap_count if overlap_count else None)


def flood_cell(
    vendor: str,
    m: int,
    resource_size: int = 10 * (1 << 20),
    origin_uplink_mbps: float = 1000.0,
    per_request: Any = None,
) -> ExperimentCell:
    """Fig 7 cell: one flood intensity ``m`` through one vendor.

    ``per_request`` optionally pins the (origin_bytes, client_bytes)
    per-request traffic so the cell skips the SBR probe — ``run_all``
    measures it once and shares it across all 15 cells.
    """
    return ExperimentCell.make(
        "flood",
        (vendor, m),
        resource_size=resource_size,
        origin_uplink_mbps=origin_uplink_mbps,
        per_request=tuple(per_request) if per_request is not None else None,
    )


def _run_flood_cell(cell: ExperimentCell) -> Any:
    vendor, m = cell.key
    params = cell.kwargs()
    simulation = BandwidthAttackSimulation(
        vendor=vendor,
        resource_size=params.get("resource_size", 10 * (1 << 20)),
        origin_uplink_mbps=params.get("origin_uplink_mbps", 1000.0),
        per_request=params.get("per_request"),
    )
    return simulation.run(m)


def faulted_sbr_cell(
    vendor: str, resource_size: int, seed: int, rounds: int = 1
) -> ExperimentCell:
    """Faulted-SBR cell: one vendor/size under one fault seed."""
    return ExperimentCell.make(
        "sbr-faults", (vendor, resource_size, seed), rounds=rounds
    )


def _run_faulted_sbr_cell(cell: ExperimentCell) -> Any:
    from repro.faults.experiment import measure_sbr_under_faults

    vendor, resource_size, seed = cell.key
    rounds = cell.kwargs().get("rounds", 1)
    return measure_sbr_under_faults(vendor, resource_size, seed=seed, rounds=rounds)


register("sbr", _run_sbr_cell)
register("obr", _run_obr_cell)
register("ccfc", _run_ccfc_cell)
register("flood", _run_flood_cell)
register("sbr-faults", _run_faulted_sbr_cell)
