"""Benign range-request clients.

The paper's introduction motivates range requests with multi-thread file
downloading and resuming from break-point; this package implements both
on top of the simulator's public API, so the benign workloads that make
the Range mechanism worth having can be exercised (and regression-tested)
alongside the attacks.
"""

from __future__ import annotations

from repro.clienttools.downloader import DownloadReport, ResumingDownload, SegmentedDownloader

__all__ = ["DownloadReport", "ResumingDownload", "SegmentedDownloader"]
