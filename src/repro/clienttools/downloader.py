"""Segmented downloading and break-point resume over range requests.

These are the two legitimate uses RFC 7233 was designed for (and the
paper's §II-B motivation):

* :class:`SegmentedDownloader` — split a resource into ``k`` disjoint
  ranges, fetch each with its own request ("multi-thread downloading"),
  verify and reassemble;
* :class:`ResumingDownload` — fetch sequentially, tolerate interrupted
  transfers, and resume from the break-point with an open-ended range.

Both work against any deployment (direct origin or through CDNs) and
double as end-to-end checks that the simulator serves correct bytes to
well-behaved clients.  Both honor ``Retry-After`` on 5xx responses
(RFC 9110 §10.2.3) in either of its two forms — delta-seconds, or an
absolute HTTP-date anchored against the downloader's injected clock and
clamped to a non-negative wait.  The transfer is re-issued up to
``retry_attempts`` tries per segment; the waits are tallied (not slept)
in :attr:`DownloadReport.waited_s`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from datetime import timezone
from email.utils import parsedate_to_datetime
from typing import Callable, List, Optional, Tuple

from repro.core.deployment import Client, ClientResult, Deployment
from repro.errors import ReproError
from repro.http.ranges import parse_content_range
from repro.http.status import StatusCode

#: Epoch-seconds source used to anchor absolute ``Retry-After`` dates.
#: Injected so tests pin the wait deterministically; ``time.time`` is
#: the production edge default.
Clock = Callable[[], float]


class DownloadError(ReproError):
    """A download could not be completed or verified."""


@dataclass(frozen=True)
class DownloadReport:
    """Outcome of a completed download."""

    path: str
    content: bytes
    total_length: int
    requests_sent: int
    bytes_received: int
    retries: int = 0
    waited_s: float = 0.0

    @property
    def overhead_ratio(self) -> float:
        """Received wire bytes per payload byte (protocol overhead)."""
        if self.total_length == 0:
            return 0.0
        return self.bytes_received / self.total_length


def _parse_http_date_wait(text: str, now: Optional[float]) -> Optional[float]:
    """Seconds to wait for an absolute ``Retry-After`` HTTP-date.

    Needs ``now`` (injected-clock epoch seconds) to anchor the absolute
    instant; without one the date is unusable and the response is final.
    A date already in the past clamps to ``0.0`` — "retry immediately",
    never a negative wait.
    """
    if now is None:
        return None
    try:
        when = parsedate_to_datetime(text)
    except (TypeError, ValueError):
        return None
    if when is None:  # pre-3.10 parsedate_to_datetime returns None
        return None
    if when.tzinfo is None:
        # RFC 9110 §5.6.7: a date with no zone is interpreted as GMT.
        when = when.replace(tzinfo=timezone.utc)
    return max(0.0, when.timestamp() - now)


def _parse_retry_after(
    value: Optional[str], now: Optional[float] = None
) -> Optional[float]:
    """Parse a ``Retry-After`` value (RFC 9110 §10.2.3): delta-seconds
    or HTTP-date.

    Delta-seconds must be finite and non-negative; the HTTP-date form is
    anchored against ``now`` and clamped to ``>= 0``.  Garbage (either
    form) yields ``None`` and the response is treated as final.
    """
    if value is None:
        return None
    text = value.strip()
    try:
        seconds = float(text)
    except ValueError:
        return _parse_http_date_wait(text, now)
    if seconds < 0 or not math.isfinite(seconds):
        return None
    return seconds


@dataclass
class _TransferTally:
    """Mutable per-download accounting shared by every fetch."""

    requests_sent: int = 0
    bytes_received: int = 0
    retries: int = 0
    waited_s: float = 0.0
    clock: Optional[Clock] = None

    def fetch(
        self,
        client: Client,
        path: str,
        range_value: str,
        retry_attempts: int,
        abort_after: Optional[int] = None,
    ) -> ClientResult:
        """One logical transfer: re-issue on 5xx + ``Retry-After``."""
        attempt = 1
        while True:
            result = client.get(
                path, range_value=range_value, abort_after=abort_after
            )
            self.requests_sent += 1
            self.bytes_received += result.received_bytes
            status = int(result.response.status)
            if status < int(StatusCode.INTERNAL_SERVER_ERROR):
                return result
            if attempt >= retry_attempts:
                return result
            delay = _parse_retry_after(
                result.response.headers.get("Retry-After"),
                now=self.clock() if self.clock is not None else None,
            )
            if delay is None:
                return result
            # Honor the pacing hint without a wall-clock sleep: the
            # simulated wait is reported, not performed.
            self.retries += 1
            self.waited_s += delay
            attempt += 1


def _probe_length(client: Client, path: str) -> int:
    """Learn the resource length from a 1-byte range probe."""
    result = client.get(path, range_value="bytes=0-0")
    if result.response.status != StatusCode.PARTIAL_CONTENT:
        raise DownloadError(
            f"probe expected 206, got {result.response.status} for {path!r}"
        )
    content_range = result.response.headers.get("Content-Range")
    if content_range is None:
        raise DownloadError("probe response has no Content-Range")
    _, complete = parse_content_range(content_range)
    if complete is None:
        raise DownloadError("origin did not reveal the complete length")
    return complete


class SegmentedDownloader:
    """Download a resource in ``segments`` parallel-style range fetches."""

    def __init__(
        self,
        deployment: Deployment,
        segments: int = 4,
        retry_attempts: int = 3,
        clock: Optional[Clock] = None,
    ) -> None:
        if segments < 1:
            raise ValueError(f"segments must be >= 1, got {segments}")
        if retry_attempts < 1:
            raise ValueError(f"retry_attempts must be >= 1, got {retry_attempts}")
        self.deployment = deployment
        self.segments = segments
        self.retry_attempts = retry_attempts
        self.clock: Clock = clock if clock is not None else time.time

    def plan(self, total_length: int) -> List[Tuple[int, int]]:
        """Split ``[0, total_length)`` into contiguous inclusive ranges."""
        if total_length <= 0:
            return []
        count = min(self.segments, total_length)
        base = total_length // count
        plan: List[Tuple[int, int]] = []
        start = 0
        for index in range(count):
            extra = 1 if index < total_length % count else 0
            end = start + base + extra - 1
            plan.append((start, end))
            start = end + 1
        return plan

    def download(self, path: str, host: str = "victim.example") -> DownloadReport:
        """Fetch ``path`` in segments and reassemble."""
        client = self.deployment.client(host=host)
        total = _probe_length(client, path)
        tally = _TransferTally(requests_sent=1, clock=self.clock)
        pieces: List[bytes] = []
        for start, end in self.plan(total):
            result = tally.fetch(
                client, path, f"bytes={start}-{end}", self.retry_attempts
            )
            if result.response.status != StatusCode.PARTIAL_CONTENT:
                raise DownloadError(
                    f"segment {start}-{end}: expected 206, got "
                    f"{result.response.status}"
                )
            piece = result.response.body.materialize()
            if len(piece) != end - start + 1:
                raise DownloadError(
                    f"segment {start}-{end}: got {len(piece)} bytes"
                )
            pieces.append(piece)
        content = b"".join(pieces)
        if len(content) != total:
            raise DownloadError(
                f"reassembled {len(content)} bytes, expected {total}"
            )
        return DownloadReport(
            path=path,
            content=content,
            total_length=total,
            requests_sent=tally.requests_sent,
            bytes_received=tally.bytes_received,
            retries=tally.retries,
            waited_s=tally.waited_s,
        )


class ResumingDownload:
    """Sequential download that recovers from interrupted transfers.

    ``chunk_size`` bounds each request; an interruption is simulated by
    the caller via ``abort_after`` — the client keeps whatever prefix
    arrived and resumes with ``bytes=<received>-``.
    """

    def __init__(
        self,
        deployment: Deployment,
        chunk_size: int = 64 * 1024,
        retry_attempts: int = 3,
        clock: Optional[Clock] = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if retry_attempts < 1:
            raise ValueError(f"retry_attempts must be >= 1, got {retry_attempts}")
        self.deployment = deployment
        self.chunk_size = chunk_size
        self.retry_attempts = retry_attempts
        self.clock: Clock = clock if clock is not None else time.time

    def download(
        self,
        path: str,
        host: str = "victim.example",
        interrupt_percent: Optional[float] = None,
    ) -> DownloadReport:
        """Fetch ``path``; optionally interrupt the first transfer after
        ``interrupt_percent`` of the body and resume from the break-point."""
        client = self.deployment.client(host=host)
        total = _probe_length(client, path)
        tally = _TransferTally(requests_sent=1, clock=self.clock)
        received = bytearray()

        while len(received) < total:
            start = len(received)
            end = min(start + self.chunk_size, total) - 1
            abort_after = None
            if interrupt_percent is not None and start == 0:
                # Cut the first transfer partway through its body.
                first = client.get(path, range_value=f"bytes={start}-{end}")
                tally.requests_sent += 1
                header_bytes = first.response.header_block_size()
                keep = int((end - start + 1) * interrupt_percent)
                received.extend(first.response.body.materialize()[:keep])
                tally.bytes_received += header_bytes + keep
                interrupt_percent = None
                continue
            result = tally.fetch(
                client,
                path,
                f"bytes={start}-{end}",
                self.retry_attempts,
                abort_after=abort_after,
            )
            if result.response.status != StatusCode.PARTIAL_CONTENT:
                raise DownloadError(
                    f"resume at {start}: expected 206, got {result.response.status}"
                )
            received.extend(result.response.body.materialize())

        return DownloadReport(
            path=path,
            content=bytes(received),
            total_length=total,
            requests_sent=tally.requests_sent,
            bytes_received=tally.bytes_received,
            retries=tally.retries,
            waited_s=tally.waited_s,
        )
