"""Retry-induced re-amplification: SBR measured under a fault plan.

Separated from the package ``__init__`` on purpose: this module imports
the attack stack (``core.sbr`` → deployment → ``cdn.node``), which
itself imports ``repro.faults.plan`` — importing it from the package
init would close that loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from repro.core.sbr import SbrAttack

if TYPE_CHECKING:
    from repro.runner.grid import ExperimentGrid
from repro.faults.plan import FaultInjector, FaultPlan, use_faults
from repro.faults.retry import retry_policy_for

DEFAULT_FAULT_SEED = 20200605  # the paper's DSN 2020 presentation date
DEFAULT_FAULT_ROUNDS = 6


@dataclass(frozen=True)
class FaultedSbrResult:
    """One vendor's SBR traffic under faults, next to its clean baseline."""

    vendor: str
    resource_size: int
    seed: int
    rounds: int
    client_traffic: int
    origin_traffic: int
    amplification: float
    clean_client_traffic: int
    clean_origin_traffic: int
    clean_amplification: float
    statuses: Tuple[int, ...]
    faults_injected: Tuple[Tuple[str, int], ...]
    retries: int
    backoff_s: float
    fetches: int
    exhausted_fetches: int
    max_attempts: int

    @property
    def total_faults(self) -> int:
        return sum(count for _, count in self.faults_injected)

    @property
    def reamplification(self) -> float:
        """Origin bytes under faults over clean origin bytes (>1 means
        retries re-shipped fetch windows)."""
        if self.clean_origin_traffic == 0:
            return 0.0
        return self.origin_traffic / self.clean_origin_traffic


def measure_sbr_under_faults(
    vendor: str,
    resource_size: int,
    seed: int = DEFAULT_FAULT_SEED,
    rounds: int = DEFAULT_FAULT_ROUNDS,
    plan: Optional[FaultPlan] = None,
) -> FaultedSbrResult:
    """Run the SBR attack with a fault injector armed and compare to clean.

    The clean baseline is measured *outside* the fault context (and via
    the memoized single-round path, scaled by ``rounds``) so the two
    traffic totals are directly comparable.
    """
    # Lazy import: repro.runner imports this module's siblings.
    from repro.runner.memo import measure_sbr

    clean = measure_sbr(vendor, resource_size)
    injector = FaultInjector(plan if plan is not None else FaultPlan.default(seed))
    with use_faults(injector):
        faulted = SbrAttack(vendor, resource_size).run(rounds=rounds)
    stats = injector.stats
    return FaultedSbrResult(
        vendor=vendor,
        resource_size=resource_size,
        seed=seed,
        rounds=rounds,
        client_traffic=faulted.client_traffic,
        origin_traffic=faulted.origin_traffic,
        amplification=faulted.amplification,
        clean_client_traffic=clean.client_traffic * rounds,
        clean_origin_traffic=clean.origin_traffic * rounds,
        clean_amplification=clean.amplification,
        statuses=faulted.statuses,
        faults_injected=tuple(sorted(stats.injected.items())),
        retries=stats.retries,
        backoff_s=stats.backoff_s,
        fetches=stats.fetches,
        exhausted_fetches=stats.exhausted_fetches,
        max_attempts=retry_policy_for(vendor).max_attempts,
    )


def faulted_sbr_grid(
    vendors: Iterable[str],
    sizes: Iterable[int],
    seed: int = DEFAULT_FAULT_SEED,
    rounds: int = DEFAULT_FAULT_ROUNDS,
) -> "ExperimentGrid":
    """An :class:`ExperimentGrid` of faulted-SBR cells (vendor × size)."""
    from repro.runner.experiments import faulted_sbr_cell
    from repro.runner.grid import ExperimentGrid

    grid = ExperimentGrid(name="sbr-faults")
    for vendor in vendors:
        for size in sizes:
            grid.add(faulted_sbr_cell(vendor, size, seed=seed, rounds=rounds))
    return grid
