"""``repro.faults`` — deterministic fault injection and retry modeling.

The paper's amplification numbers assume a healthy origin and clean
transfers.  Real CDNs retry failed back-to-origin fetches, so a fetch
window that dies mid-transfer is shipped *again* — amplifying beyond
Table IV.  This package makes that measurable, deterministically:

* :mod:`repro.faults.plan` — :class:`FaultPlan` (seeded rule set) and
  :class:`FaultInjector` (stateful decision engine).  Decisions hash
  ``(seed, rule, counter)`` instead of drawing from a stateful RNG, so
  the same seed produces the same fault sequence in any process.
  Installed via the :func:`use_faults` context manager; every injection
  point guards on :func:`current_faults`, so the disabled hot path pays
  one ``ContextVar`` read and nothing else.
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (attempt budget,
  exponential backoff with deterministic jitter) and the per-vendor
  policy registry governing CDN back-to-origin re-fetches.
* :mod:`repro.faults.flaky` — :class:`FlakyOrigin`, the shared
  fail-every-Nth-request origin wrapper (promoted from the test suite).
* :mod:`repro.faults.experiment` — ``measure_sbr_under_faults``, the
  retry-induced re-amplification measurement.  Import it from its
  module directly: it pulls in the attack stack, which this package
  ``__init__`` must not (the attack stack itself imports
  ``repro.faults.plan``).
"""

from __future__ import annotations

from repro.faults.flaky import FlakyOrigin
from repro.faults.plan import (
    DELIVERY_FAULT_KINDS,
    SITE_CDN_ORIGIN,
    SITE_ORIGIN,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    FaultStats,
    current_faults,
    use_faults,
)
from repro.faults.retry import (
    DEFAULT_RETRY_POLICY,
    VENDOR_RETRY_POLICIES,
    RetryPolicy,
    retry_policy_for,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "DELIVERY_FAULT_KINDS",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "FaultStats",
    "FlakyOrigin",
    "RetryPolicy",
    "SITE_CDN_ORIGIN",
    "SITE_ORIGIN",
    "VENDOR_RETRY_POLICIES",
    "current_faults",
    "retry_policy_for",
    "use_faults",
]
