"""Seeded fault plans and the deterministic injection engine.

A :class:`FaultPlan` is a frozen list of :class:`FaultRule` entries plus
a seed.  A :class:`FaultInjector` evaluates the plan at each injection
point (origin request handling, segment delivery) without any stateful
RNG: every decision hashes ``"{seed}:{rule_index}:{counter}"`` and maps
the first eight digest bytes onto ``[0, 1)``.  The same seed therefore
yields the same fault sequence regardless of process, platform, or the
order in which *other* rules fire — which is what makes faulted grid
cells reproducible across serial and parallel runs.

This module must stay import-light: ``netsim/connection.py`` imports it,
so pulling in ``repro.netsim`` (or anything that transitively reaches
the attack stack) here would create a cycle.  The segment-name constants
below are deliberately literals mirroring ``repro.netsim.tap``; a unit
test pins the equality.
"""

from __future__ import annotations

import enum
import hashlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ReproError
from repro.http.status import StatusCode

# Mirror of repro.netsim.tap segment names (importing tap here would
# cycle through netsim.connection).  Pinned by tests/faults/test_plan.py.
SITE_ORIGIN = "origin"
SITE_CDN_ORIGIN = "cdn-origin"


class FaultPlanError(ReproError):
    """An invalid fault rule or plan."""


class FaultKind(enum.Enum):
    """What goes wrong when a rule fires."""

    ORIGIN_ERROR = "origin-error"
    STALL = "stall"
    TRUNCATE = "truncate"
    RESET = "reset"


# Kinds applied at the delivery layer (netsim), as opposed to the origin
# request handler.
DELIVERY_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.STALL,
    FaultKind.TRUNCATE,
    FaultKind.RESET,
)


@dataclass(frozen=True)
class FaultRule:
    """One failure mode with a firing rate and a site to apply it at.

    ``rate`` is the per-opportunity firing probability; ``burst`` makes
    each firing persist for that many consecutive opportunities (origin
    outages rarely last a single request).
    """

    kind: FaultKind
    rate: float
    site: str = SITE_ORIGIN
    status: int = int(StatusCode.SERVICE_UNAVAILABLE)
    retry_after: Optional[int] = 1
    truncate_fraction: float = 0.5
    burst: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.burst < 1:
            raise FaultPlanError(f"fault burst must be >= 1, got {self.burst!r}")
        if not 0.0 < self.truncate_fraction <= 1.0:
            raise FaultPlanError(
                f"truncate_fraction must be in (0, 1], got {self.truncate_fraction!r}"
            )
        if self.kind is FaultKind.ORIGIN_ERROR:
            if not 500 <= self.status < 600:
                raise FaultPlanError(
                    f"origin fault status must be a 5xx code, got {self.status!r}"
                )
            try:
                StatusCode(self.status)
            except ValueError as exc:
                raise FaultPlanError(
                    f"origin fault status {self.status!r} is not a known StatusCode"
                ) from exc
            if self.site != SITE_ORIGIN:
                raise FaultPlanError("origin-error rules only apply at the origin site")
        elif self.site == SITE_ORIGIN:
            raise FaultPlanError(
                f"{self.kind.value} rules apply at a delivery segment, not the origin"
            )

    @property
    def is_delivery(self) -> bool:
        return self.kind in DELIVERY_FAULT_KINDS


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered rule set; the whole unit of determinism."""

    seed: int
    rules: Tuple[FaultRule, ...]

    def __post_init__(self) -> None:
        # Empty rule sets are legal ("armed but quiet" control plans).
        if self.seed < 0:
            raise FaultPlanError(f"fault seed must be non-negative, got {self.seed!r}")

    @classmethod
    def default(cls, seed: int) -> "FaultPlan":
        """The stock mix used by ``repro run-all --faults``."""
        return cls(
            seed=seed,
            rules=(
                FaultRule(FaultKind.ORIGIN_ERROR, rate=0.25, burst=2),
                FaultRule(
                    FaultKind.TRUNCATE,
                    rate=0.15,
                    site=SITE_CDN_ORIGIN,
                    truncate_fraction=0.4,
                ),
                FaultRule(FaultKind.STALL, rate=0.05, site=SITE_CDN_ORIGIN),
                FaultRule(FaultKind.RESET, rate=0.05, site=SITE_CDN_ORIGIN),
            ),
        )

    @classmethod
    def quiet(cls, seed: int) -> "FaultPlan":
        """Armed but rule-free: retries engage, nothing ever fires."""
        return cls(seed=seed, rules=())


@dataclass
class FaultStats:
    """Mutable tallies kept by one injector instance."""

    injected: Dict[str, int] = field(default_factory=dict)
    opportunities: int = 0
    retries: int = 0
    backoff_s: float = 0.0
    fetches: int = 0
    exhausted_fetches: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically.

    Instances are stateful (burst counters, per-rule decision counters,
    stats) but the state is a pure function of the plan and the sequence
    of opportunities presented — no wall clock, no global RNG.
    """

    # Pseudo rule index used for backoff jitter draws so they never
    # perturb the fault decision streams.
    _JITTER_STREAM = -1

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._counters = [0 for _ in plan.rules]
        self._burst_left = [0 for _ in plan.rules]
        self._jitter_counter = 0

    # -- deterministic decision stream ---------------------------------

    def _unit(self, rule_index: int, counter: int) -> float:
        token = f"{self.plan.seed}:{rule_index}:{counter}".encode("ascii")
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def _fire(self, index: int, rule: FaultRule) -> bool:
        if self._burst_left[index] > 0:
            self._burst_left[index] -= 1
            return True
        counter = self._counters[index]
        self._counters[index] += 1
        if self._unit(index, counter) < rule.rate:
            self._burst_left[index] = rule.burst - 1
            return True
        return False

    def jitter_unit(self) -> float:
        """A [0, 1) draw from a stream separate from fault decisions."""
        counter = self._jitter_counter
        self._jitter_counter += 1
        return self._unit(self._JITTER_STREAM, counter)

    # -- injection points ----------------------------------------------

    def origin_fault(self, path: str) -> Optional[FaultRule]:
        """Consulted by the origin per request; returns the rule to apply."""
        self.stats.opportunities += 1
        for index, rule in enumerate(self.plan.rules):
            if rule.kind is not FaultKind.ORIGIN_ERROR:
                continue
            if self._fire(index, rule):
                self._count(SITE_ORIGIN, rule.kind)
                return rule
        return None

    def delivery_fault(self, segment: str) -> Optional[FaultRule]:
        """Consulted by the net layer per exchange on a matching segment."""
        matched = False
        for index, rule in enumerate(self.plan.rules):
            if not rule.is_delivery or rule.site != segment:
                continue
            if not matched:
                matched = True
                self.stats.opportunities += 1
            if self._fire(index, rule):
                self._count(segment, rule.kind)
                return rule
        return None

    # -- retry bookkeeping (fed by CdnNode) ----------------------------

    def note_retry(self, vendor: str, delay_s: float) -> None:
        self.stats.retries += 1
        self.stats.backoff_s += delay_s

    def note_fetch(self, vendor: str, attempts: int, ok: bool) -> None:
        self.stats.fetches += 1
        if not ok:
            self.stats.exhausted_fetches += 1

    def _count(self, site: str, kind: FaultKind) -> None:
        key = f"{site}:{kind.value}"
        self.stats.injected[key] = self.stats.injected.get(key, 0) + 1
        # Local import keeps this module import-light; only paid when a
        # fault actually fires.
        from repro.obs.metrics import current_metrics

        registry = current_metrics()
        if registry is not None:
            registry.record_fault(site, kind.value)


_ACTIVE_FAULTS: ContextVar[Optional[FaultInjector]] = ContextVar(
    "repro_active_faults", default=None
)


def current_faults() -> Optional[FaultInjector]:
    """The injector installed on this context, or None (common case)."""
    return _ACTIVE_FAULTS.get()


@contextmanager
def use_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for the duration of the block."""
    token = _ACTIVE_FAULTS.set(injector)
    try:
        yield injector
    finally:
        _ACTIVE_FAULTS.reset(token)
