"""A deterministic flaky-origin wrapper shared by tests and experiments."""

from __future__ import annotations

from typing import Optional, Union

from repro.handler import HttpHandler
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.status import StatusCode


class FlakyOrigin(HttpHandler):
    """Wraps a handler; fails every ``period``-th request with ``status``.

    The failure response carries ``Retry-After: {retry_after}`` (omitted
    when ``retry_after`` is None) so retry-aware clients can be
    exercised against it.
    """

    def __init__(
        self,
        inner: HttpHandler,
        period: int = 2,
        status: int = int(StatusCode.SERVICE_UNAVAILABLE),
        retry_after: Optional[Union[int, str]] = 1,
    ) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period!r}")
        self.inner = inner
        self.period = period
        self.status = status
        self.retry_after = retry_after
        self._count = 0

    @property
    def requests_seen(self) -> int:
        return self._count

    def handle(self, request: HttpRequest) -> HttpResponse:
        self._count += 1
        if self._count % self.period == 0:
            pairs = [("Content-Length", "0")]
            if self.retry_after is not None:
                pairs.append(("Retry-After", str(self.retry_after)))
            return HttpResponse(self.status, headers=Headers(pairs))
        return self.inner.handle(request)
