"""Vendor retry/backoff policies for CDN back-to-origin fetches.

The paper measures what a CDN ships per fetch; this module models how
many times it ships it.  Budgets are modeled on vendors' published
origin-retry behavior and on the abort/maintain split observed in
``core/connection_drop.py`` — vendors that maintain the origin fetch
after a client abort are exactly the ones that lean on aggressive
retries to keep their caches warm.

Backoff delays are *simulated* (accounted, never slept), and jitter is
a deterministic unit draw supplied by the caller, so two runs with the
same fault seed accrue identical backoff totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.http.status import StatusCode


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and backoff schedule for one vendor's origin fetches."""

    max_attempts: int = 3
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 8.0
    jitter_fraction: float = 0.25
    retry_on_5xx: bool = True
    retry_on_truncation: bool = True

    def should_retry(self, status: int, truncated: bool = False) -> bool:
        """Whether a completed attempt with this outcome warrants another."""
        if truncated and self.retry_on_truncation:
            return True
        if status >= int(StatusCode.INTERNAL_SERVER_ERROR) and self.retry_on_5xx:
            return True
        return False

    def backoff_s(self, attempt: int, unit: float = 0.0) -> float:
        """Delay before attempt ``attempt + 1`` (``attempt`` is 1-based).

        ``unit`` in [0, 1) spreads the delay across
        ``[1 - jitter, 1 + jitter]`` of the exponential schedule.
        """
        if attempt < 1:
            raise ValueError(f"attempt numbers are 1-based, got {attempt!r}")
        raw = self.base_delay_s * self.multiplier ** (attempt - 1)
        capped = min(raw, self.max_delay_s)
        return capped * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


DEFAULT_RETRY_POLICY = RetryPolicy()

# Attempt budgets track each vendor's observed posture: the
# maintain-on-abort vendors (akamai, cdn77, cdnsun) retry hardest; azure
# never re-fetches what it truncated on purpose (its capped fetch is a
# design decision, not a failure); the strict small-window vendors
# (fastly, keycdn, stackpath) give up fast.
VENDOR_RETRY_POLICIES: Dict[str, RetryPolicy] = {
    "akamai": RetryPolicy(max_attempts=4, base_delay_s=0.25),
    "azure": RetryPolicy(max_attempts=2, retry_on_truncation=False),
    "cdn77": RetryPolicy(max_attempts=4),
    "cdnsun": RetryPolicy(max_attempts=4),
    "cloudflare": RetryPolicy(max_attempts=3, base_delay_s=0.25),
    "cloudfront": RetryPolicy(max_attempts=3),
    "fastly": RetryPolicy(max_attempts=2, base_delay_s=0.1, max_delay_s=1.0),
    "keycdn": RetryPolicy(max_attempts=2),
    "stackpath": RetryPolicy(max_attempts=2),
}


def retry_policy_for(vendor: str) -> RetryPolicy:
    """The vendor's policy, or the stock default for unlisted vendors."""
    return VENDOR_RETRY_POLICIES.get(vendor, DEFAULT_RETRY_POLICY)
