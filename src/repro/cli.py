"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments:

* ``vendors`` — list the 13 modeled CDNs;
* ``sbr`` — run the SBR attack against one vendor (Table IV cell);
* ``obr`` — run the OBR attack through one cascade (Table V row);
* ``survey`` — regenerate the feasibility tables (Tables I–III);
* ``flood`` — the bandwidth experiment for one m (Fig 7 row);
* ``economics`` — project a campaign's victim cost (§V-E).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.purity import BaselineEntry

from repro.cdn.vendors import all_vendor_names, profile_class
from repro.core.economics import estimate_obr_campaign, estimate_sbr_campaign
from repro.core.feasibility import survey
from repro.core.obr import ObrAttack, vulnerable_combinations
from repro.core.practical import BandwidthAttackSimulation
from repro.core.sbr import SbrAttack, exploited_range_cases
from repro.errors import ReproError, UsageError
from repro.reporting.render import format_bytes, render_sparkline, render_table
from repro.reporting.tables import table1_rows, table2_rows, table3_rows

MB = 1 << 20


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RangeAmp attack simulator (DSN 2020 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("vendors", help="list the modeled CDN vendors")

    sbr = commands.add_parser("sbr", help="run the Small Byte Range attack")
    sbr.add_argument("vendor", choices=all_vendor_names())
    sbr.add_argument("--size-mb", type=int, default=10, help="resource size in MB")
    sbr.add_argument("--rounds", type=int, default=1, help="attack rounds to send")

    obr = commands.add_parser("obr", help="run the Overlapping Byte Ranges attack")
    obr.add_argument("fcdn", choices=all_vendor_names())
    obr.add_argument("bcdn", choices=all_vendor_names())
    obr.add_argument(
        "--overlaps", type=int, default=None,
        help="overlap count n (default: search the maximum)",
    )

    commands.add_parser(
        "survey", help="probe every vendor and print Tables I-III"
    )

    flood = commands.add_parser("flood", help="bandwidth experiment (Fig 7)")
    flood.add_argument("--m", type=int, default=12, help="attack requests per second")
    flood.add_argument("--vendor", default="cloudflare", choices=all_vendor_names())
    flood.add_argument("--uplink-mbps", type=float, default=1000.0)

    economics = commands.add_parser(
        "economics", help="project a campaign's victim cost"
    )
    economics.add_argument("attack", choices=["sbr", "obr"])
    economics.add_argument("vendor", help="vendor, or fcdn:bcdn for obr")
    economics.add_argument("--size-mb", type=int, default=10)
    economics.add_argument("--rps", type=float, default=10.0)
    economics.add_argument("--hours", type=float, default=1.0)

    scenario = commands.add_parser(
        "scenario", help="run a JSON scenario file of experiments"
    )
    scenario.add_argument("path", help="path to the scenario JSON")

    analyze = commands.add_parser(
        "analyze",
        help="statically audit every vendor and cascade (no traffic simulated)",
    )
    analyze.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format (default: table)",
    )
    analyze.add_argument(
        "--size-mb", type=int, default=10,
        help="SBR resource size in MB the bounds assume (default: 10)",
    )
    analyze.add_argument(
        "--obr-size", type=int, default=1024,
        help="OBR resource size in bytes the bounds assume (default: 1024)",
    )
    analyze.add_argument(
        "--ccfc-size-mb", type=int, default=10,
        help="CCFC resource size in MB the bounds assume (default: 10)",
    )
    analyze.add_argument(
        "--with-retries", action="store_true",
        help="also print the retry-aware SBR bound (clean bound scaled by "
             "each vendor's back-to-origin attempt budget)",
    )
    analyze.add_argument(
        "--runlog", nargs="?", const="runlog.jsonl", default=None,
        metavar="PATH",
        help="append a run record (static bounds by subject) to this JSONL "
             "ledger (default PATH: runlog.jsonl)",
    )

    recommend = commands.add_parser(
        "recommend",
        help="recommend the cheapest sufficient mitigation per vulnerable "
             "finding, with residual worst-case bounds",
    )
    recommend.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format (default: table)",
    )
    recommend.add_argument(
        "--threshold", type=float, default=None, metavar="F",
        help="residual factor a mitigation must stay under to qualify "
             "(default: 10.0, the low-severity boundary)",
    )
    recommend.add_argument(
        "--size-mb", type=int, default=10,
        help="SBR resource size in MB the residual bounds assume "
             "(default: 10)",
    )
    recommend.add_argument(
        "--obr-size", type=int, default=1024,
        help="OBR resource size in bytes the residual bounds assume "
             "(default: 1024)",
    )
    recommend.add_argument(
        "--ccfc-size-mb", type=int, default=10,
        help="CCFC resource size in MB the residual bounds assume "
             "(default: 10)",
    )
    recommend.add_argument(
        "--with-retries", action="store_true",
        help="also report the retry-aware residual factor per option "
             "(informational; sufficiency is judged on the clean residual)",
    )
    recommend.add_argument(
        "--verify", action="store_true",
        help="cross-validate each recommendation dynamically: simulate "
             "the attack under the mitigated profile on a quick grid and "
             "check sim <= residual bound",
    )
    recommend.add_argument(
        "--runlog", nargs="?", const="runlog.jsonl", default=None,
        metavar="PATH",
        help="append a run record (chosen residual factors by subject) to "
             "this JSONL ledger (default PATH: runlog.jsonl)",
    )

    lint = commands.add_parser(
        "lint",
        help="check source files against the repo's wire-accounting "
             "and typing invariants",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the installed "
             "repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program determinism (purity) analysis "
             "over the installed repro package",
    )
    lint.add_argument(
        "--baseline",
        help="purity suppression baseline for --deep (default: "
             "purity-baseline.toml when present in the working directory)",
    )

    purity = commands.add_parser(
        "purity",
        help="whole-program determinism analysis: report call paths from "
             "nondeterminism sources to serialization sinks",
    )
    purity.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    purity.add_argument(
        "--output",
        help="write the report to this file (a one-line summary still "
             "goes to stdout)",
    )
    purity.add_argument(
        "--baseline",
        help="suppression baseline TOML (default: purity-baseline.toml "
             "when present in the working directory)",
    )

    commands.add_parser(
        "matrix", help="print the vendor x Range-shape policy matrix"
    )

    serve = commands.add_parser(
        "serve",
        help="run the DoS-hardened amplification-analysis HTTP service",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8437,
        help="listen port (0 picks a free one; printed at startup)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="batch worker threads (1 runs batches on the event loop)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8,
        help="concurrently running batch requests before queueing",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="waiting-room size; beyond it requests are shed with 429",
    )
    serve.add_argument(
        "--default-deadline-ms", type=int, default=2000,
        help="per-request deadline when X-Deadline-Ms is absent",
    )
    serve.add_argument(
        "--rate-capacity", type=float, default=256.0,
        help="token-bucket burst size for admission",
    )
    serve.add_argument(
        "--rate-refill", type=float, default=0.0,
        help="token-bucket refill per second (0 disables rate limiting)",
    )
    serve.add_argument(
        "--drain-grace-s", type=float, default=10.0,
        help="seconds SIGTERM waits for in-flight work before exiting",
    )
    serve.add_argument(
        "--runlog", default=None,
        help="run-ledger path; the session's RunRecord is appended on drain",
    )

    report = commands.add_parser(
        "report", help="regenerate every table/figure into a directory"
    )
    report.add_argument("output_dir", nargs="?", default="report")
    report.add_argument("--quick", action="store_true", help="trim the sweeps")

    run_all = commands.add_parser(
        "run-all",
        help="regenerate Tables IV-V and Figs 6-7 in one parallel grid run",
    )
    run_all.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: REPRO_RUNNER_WORKERS or cpu count; "
             "1 means serial)",
    )
    run_all.add_argument(
        "--quick", action="store_true", help="trim the grids for a smoke run"
    )
    run_all.add_argument(
        "--output-dir", default=None,
        help="also write the rendered artifacts into this directory",
    )
    run_all.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the joined span + exchange stream as JSONL to PATH",
    )
    run_all.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the metrics snapshot to PATH (.prom extension selects "
             "Prometheus text format, anything else JSON)",
    )
    run_all.add_argument(
        "--profile", nargs="?", const="runall_profile.txt", default=None,
        metavar="PATH",
        help="write the per-cell time/byte profile report "
             "(default PATH: runall_profile.txt)",
    )
    run_all.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line",
    )
    run_all.add_argument(
        "--faults", action="store_true",
        help="also run the faulted-SBR sweep (Table VI): seeded fault "
             "plan + vendor retry policies",
    )
    run_all.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="fault plan seed (default: 20200605); same seed, same faults",
    )
    run_all.add_argument(
        "--checkpoint", nargs="?", const="runall_checkpoint.jsonl",
        default=None, metavar="PATH",
        help="journal finished cells to PATH so a killed run can resume "
             "(default PATH: runall_checkpoint.jsonl)",
    )
    run_all.add_argument(
        "--resume", action="store_true",
        help="reuse the checkpoint from a previous killed run; only the "
             "missing cells execute (implies --checkpoint)",
    )
    run_all.add_argument(
        "--exact", action="store_true",
        help="simulate every cell at the wire level instead of answering "
             "calibrated SBR/OBR cells from closed forms (the reference "
             "path the fast path is differentially tested against)",
    )
    run_all.add_argument(
        "--bench", nargs="?", const="BENCH_runall.json", default=None,
        metavar="PATH",
        help="write the schema-versioned benchmark observation (wall "
             "clock, cells/sec, fast-path hit rate, per-phase breakdown) "
             "to PATH; with --output-dir it is also written there by "
             "default",
    )
    run_all.add_argument(
        "--runlog", nargs="?", const="runlog.jsonl", default=None,
        metavar="PATH",
        help="append the full run record (config digest, phase and "
             "per-cell timings, fast-path counters, factors, artifact "
             "digests) to this JSONL ledger (default PATH: runlog.jsonl)",
    )

    obs = commands.add_parser(
        "obs",
        help="inspect the persistent run ledger and export telemetry",
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)

    obs_runs = obs_commands.add_parser(
        "runs", help="list recorded runs, oldest first"
    )
    obs_runs.add_argument(
        "--ledger", default="runlog.jsonl", metavar="PATH",
        help="run ledger to read (default: runlog.jsonl)",
    )
    obs_runs.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show only the newest N runs",
    )
    obs_runs.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format (default: table)",
    )

    obs_top = obs_commands.add_parser(
        "top",
        help="rank one recorded run's slowest cells (or a trace's "
             "slowest spans)",
    )
    obs_top.add_argument(
        "run", nargs="?", default="-1",
        help="ledger index or run-id prefix (default: -1, the newest)",
    )
    obs_top.add_argument(
        "--ledger", default="runlog.jsonl", metavar="PATH",
        help="run ledger to read (default: runlog.jsonl)",
    )
    obs_top.add_argument(
        "-n", "--count", type=int, default=10, metavar="N",
        help="entries to show (default: 10)",
    )
    obs_top.add_argument(
        "--trace", default=None, metavar="PATH",
        help="rank spans from this joined trace JSONL (run-all --trace "
             "output) instead of ledger cells",
    )

    obs_diff = obs_commands.add_parser(
        "diff",
        help="compare two recorded runs cell-by-cell and "
             "factor-by-factor",
    )
    obs_diff.add_argument("before", help="ledger index or run-id prefix")
    obs_diff.add_argument("after", help="ledger index or run-id prefix")
    obs_diff.add_argument(
        "--ledger", default="runlog.jsonl", metavar="PATH",
        help="run ledger to read (default: runlog.jsonl)",
    )
    obs_diff.add_argument(
        "--gate", action="store_true",
        help="exit nonzero when any cell slows past the threshold or "
             "any factor drifts past tolerance (the CI regression gate)",
    )
    obs_diff.add_argument(
        "--threshold", type=float, default=0.5, metavar="R",
        help="slowdown ratio over 1.0 that trips the timing gate "
             "(default: 0.5, i.e. 50%% slower)",
    )
    obs_diff.add_argument(
        "--min-seconds", type=float, default=0.1, dest="min_seconds",
        metavar="S",
        help="ignore cells faster than this in the after run — too "
             "noisy to gate on (default: 0.1)",
    )
    obs_diff.add_argument(
        "--factor-tolerance", type=float, default=1e-6,
        dest="factor_tolerance", metavar="T",
        help="relative amplification-factor drift allowed before the "
             "gate fails (default: 1e-6)",
    )
    obs_diff.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format (default: table)",
    )

    obs_export_trace = obs_commands.add_parser(
        "export-trace",
        help="convert a run-all --trace JSONL into Chrome trace-event "
             "JSON (Perfetto / chrome://tracing loadable)",
    )
    obs_export_trace.add_argument(
        "input", help="joined span/exchange JSONL (run-all --trace output)"
    )
    obs_export_trace.add_argument(
        "output", nargs="?", default=None,
        help="target JSON path (default: INPUT with a .trace.json suffix)",
    )

    obs_export_prom = obs_commands.add_parser(
        "export-prom",
        help="write one recorded run's metrics snapshot as a Prometheus "
             "textfile-exporter file (atomic write)",
    )
    obs_export_prom.add_argument(
        "run", nargs="?", default="-1",
        help="ledger index or run-id prefix (default: -1, the newest)",
    )
    obs_export_prom.add_argument(
        "output", nargs="?", default="runlog.prom",
        help="target .prom path (default: runlog.prom)",
    )
    obs_export_prom.add_argument(
        "--ledger", default="runlog.jsonl", metavar="PATH",
        help="run ledger to read (default: runlog.jsonl)",
    )

    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------

def _cmd_vendors() -> int:
    rows = [
        [name, profile_class(name).display_name, profile_class(name).server_header]
        for name in all_vendor_names()
    ]
    print(render_table(["name", "display name", "Server header"], rows))
    return 0


def _cmd_sbr(args: argparse.Namespace) -> int:
    size = args.size_mb * MB
    result = SbrAttack(args.vendor, resource_size=size).run(rounds=args.rounds)
    cases = " & ".join(exploited_range_cases(args.vendor, size))
    print(f"SBR against {args.vendor} ({args.size_mb} MB resource, "
          f"{args.rounds} round(s), case: {cases})")
    print(f"  attacker received: {format_bytes(result.client_traffic)}")
    print(f"  origin pushed:     {format_bytes(result.origin_traffic)}")
    print(f"  amplification:     {result.amplification:.1f}x")
    return 0


def _cmd_obr(args: argparse.Namespace) -> int:
    attack = ObrAttack(args.fcdn, args.bcdn)
    result = attack.run(overlap_count=args.overlaps)
    print(f"OBR through {args.fcdn} -> {args.bcdn} (1 KB resource)")
    print(f"  overlap count n:   {result.overlap_count}")
    print(f"  origin -> BCDN:    {format_bytes(result.bcdn_origin_traffic)}")
    print(f"  BCDN -> FCDN:      {format_bytes(result.fcdn_bcdn_traffic)}")
    print(f"  attacker received: {format_bytes(result.client_traffic)} (aborted)")
    print(f"  amplification:     {result.amplification:.1f}x")
    return 0


def _cmd_survey() -> int:
    feasibility = survey(file_size=16 * 1024)
    print("Table I - SBR-vulnerable forwarding:")
    print(
        render_table(
            ["CDN", "vulnerable", "formats"],
            [
                [
                    row.display_name,
                    "yes" if row.vulnerable else "no",
                    "; ".join(f"{f} ({p})" for f, p in row.vulnerable_formats),
                ]
                for row in table1_rows(feasibility=feasibility)
            ],
        )
    )
    print("\nTable II - OBR front-ends:")
    print(
        render_table(
            ["CDN", "lazy multi-range formats"],
            [
                [row.display_name, "; ".join(row.lazy_formats)]
                for row in table2_rows(feasibility=feasibility)
            ],
        )
    )
    print("\nTable III - OBR back-ends:")
    print(
        render_table(
            ["CDN", "reply"],
            [
                [
                    row.display_name,
                    "n-part (overlapping)"
                    + (f", n <= {row.part_limit}" if row.part_limit else ""),
                ]
                for row in table3_rows(feasibility=feasibility)
            ],
        )
    )
    return 0


def _cmd_flood(args: argparse.Namespace) -> int:
    simulation = BandwidthAttackSimulation(
        vendor=args.vendor, origin_uplink_mbps=args.uplink_mbps
    )
    result = simulation.run(args.m)
    print(f"m={args.m} SBR req/s for 30s via {args.vendor} "
          f"({args.uplink_mbps:.0f} Mbps origin uplink)")
    print(f"  steady origin egress: {result.steady_origin_mbps:.1f} Mbps"
          + ("  [SATURATED]" if result.saturated else ""))
    print(f"  peak client ingress:  {result.peak_client_kbps:.1f} Kbps")
    print(f"  origin Mbps/s:        {render_sparkline(result.origin_mbps, width=40)}")
    return 0


def _cmd_economics(args: argparse.Namespace) -> int:
    duration = args.hours * 3600.0
    if args.attack == "sbr":
        if args.vendor not in all_vendor_names():
            print(f"unknown vendor {args.vendor!r}", file=sys.stderr)
            return 2
        campaign = estimate_sbr_campaign(
            args.vendor,
            resource_size=args.size_mb * MB,
            requests_per_second=args.rps,
            duration_seconds=duration,
        )
    else:
        fcdn, _, bcdn = args.vendor.partition(":")
        if (fcdn, bcdn) not in vulnerable_combinations():
            print(
                f"{args.vendor!r} is not a vulnerable fcdn:bcdn pair "
                f"(try e.g. cloudflare:akamai)",
                file=sys.stderr,
            )
            return 2
        campaign = estimate_obr_campaign(
            fcdn, bcdn, requests_per_second=args.rps, duration_seconds=duration
        )
    print(f"{campaign.attack.upper()} campaign vs {campaign.vendor}: "
          f"{args.rps:g} req/s for {args.hours:g} h")
    print(f"  victim traffic:   {format_bytes(campaign.victim_bytes)} "
          f"({campaign.victim_bandwidth_mbps:.1f} Mbps sustained)")
    print(f"  attacker traffic: {format_bytes(campaign.attacker_bytes)} "
          f"({campaign.attacker_bandwidth_mbps:.3f} Mbps)")
    print(f"  victim bill:      ${campaign.victim_cost_usd:,.2f} "
          f"at ${campaign.rate_usd_per_gb}/GB")
    return 0


def _cmd_matrix() -> int:
    from repro.cdn.vendors.matrix import PROBE_CASES, behavior_matrix

    matrix = behavior_matrix()
    shapes = list(PROBE_CASES)
    short = {  # compact policy labels for the terminal
        "laziness": "lazy",
        "deletion": "DEL",
        "expansion": "EXP",
    }
    rows = [
        [vendor] + [short[matrix[vendor][shape].policy.value] for shape in shapes]
        for vendor in sorted(matrix)
    ]
    print(render_table(["vendor"] + shapes, rows))
    print("\nDEL/EXP single-range cells are the SBR surface (Table I); "
          "lazy multi-range cells are the OBR front-end surface (Table II).")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.summary import generate_full_report

    written = generate_full_report(args.output_dir, quick=args.quick)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    import json

    from repro.obs.profile import render_profile
    from repro.obs.progress import ProgressReporter
    from repro.runner.runall import run_all, write_report

    from pathlib import Path

    from repro.faults.experiment import DEFAULT_FAULT_SEED

    checkpoint_path = args.checkpoint
    if args.resume and checkpoint_path is None:
        checkpoint_path = "runall_checkpoint.jsonl"
    if checkpoint_path is not None and not args.resume:
        # A fresh run starts a fresh journal; a stale one is worthless
        # (and the library refuses to overwrite it silently).
        Path(checkpoint_path).unlink(missing_ok=True)

    collect_obs = bool(args.trace or args.metrics or args.profile)
    reporter = None if args.no_progress else ProgressReporter(prefix="run-all")
    wall_started = time.perf_counter()
    report = run_all(
        workers=args.workers,
        quick=args.quick,
        collect_obs=collect_obs,
        observer=reporter,
        faults=args.faults,
        fault_seed=(
            args.fault_seed if args.fault_seed is not None else DEFAULT_FAULT_SEED
        ),
        checkpoint_path=checkpoint_path,
        resume=args.resume,
        exact=args.exact,
    )
    wall_s = time.perf_counter() - wall_started
    if reporter is not None:
        reporter.close()
    if checkpoint_path is not None:
        print(
            f"checkpoint: {checkpoint_path} "
            f"({report.restored_cells} cell(s) restored)"
            if args.resume
            else f"checkpoint: {checkpoint_path}"
        )
    print(
        f"run-all: {report.cell_count} cells over {report.workers} worker(s) "
        f"in {report.duration_s:.1f}s "
        f"({report.cell_seconds:.1f}s of cell work, {report.speedup:.1f}x)"
    )
    timing = report.timing
    print(
        f"  per cell: max {timing.max_s:.2f}s ({timing.slowest}), "
        f"mean {timing.mean_s:.3f}s"
        + (
            f", {timing.failed_count} failed ({timing.failed_s:.2f}s)"
            if timing.failed_count
            else ""
        )
    )
    if report.fastpath is not None:
        stats = report.fastpath
        print(
            f"  fast path: {stats.answered}/{stats.total} cells answered "
            f"from closed forms ({stats.hit_rate:.0%} hit rate, "
            f"{stats.refused} refused, {stats.validated} cross-validated, "
            f"{stats.calibration_runs} calibration sims)"
        )
    elif args.exact:
        print("  fast path: disabled (--exact); every cell simulated")

    written_artifacts: List[Path] = []
    if args.trace is not None:
        from repro.netsim.trace import dump_joined_jsonl

        with open(args.trace, "w", encoding="utf-8") as stream:
            count = dump_joined_jsonl(report.events, report.spans, stream)
        print(f"wrote {args.trace} ({count} lines: "
              f"{len(report.events)} exchanges, {len(report.spans)} spans)")
        written_artifacts.append(Path(args.trace))

    if args.metrics is not None:
        from repro.obs.metrics import MetricsRegistry

        if args.metrics.endswith(".prom"):
            registry = MetricsRegistry()
            registry.merge_snapshot(report.metrics)
            content = registry.to_prometheus()
        else:
            content = json.dumps(report.metrics, indent=2, sort_keys=True) + "\n"
        with open(args.metrics, "w", encoding="utf-8") as stream:
            stream.write(content)
        print(f"wrote {args.metrics} ({len(report.metrics)} metric families)")
        written_artifacts.append(Path(args.metrics))

    if args.profile is not None:
        content = render_profile(
            report.cells,
            report.timing_by_experiment,
            total_s=report.duration_s,
            workers=report.workers,
            metrics_snapshot=report.metrics or None,
        )
        with open(args.profile, "w", encoding="utf-8") as stream:
            stream.write(content)
        print(f"wrote {args.profile} ({len(report.cells)} cells profiled)")
        written_artifacts.append(Path(args.profile))

    sizes = sorted(report.table4[0].factors) if report.table4 else []
    print("\nTable IV - SBR amplification factors:")
    print(
        render_table(
            ["CDN", "Exploited Range Case"] + [f"{s // MB}MB" for s in sizes],
            [
                [row.display_name, " & ".join(row.exploited_cases)]
                + [f"{row.factors[s]:.0f}" for s in sizes]
                for row in report.table4
            ],
        )
    )
    print("\nTable V - OBR amplification factors:")
    print(
        render_table(
            ["FCDN", "BCDN", "Max n", "BCDN->FCDN", "Factor"],
            [
                [
                    row.fcdn,
                    row.bcdn,
                    row.max_n,
                    format_bytes(row.fcdn_bcdn_traffic),
                    f"{row.factor:.1f}",
                ]
                for row in report.table5
            ],
        )
    )
    if report.table_ccfc:
        ccfc_sizes = sorted(report.table_ccfc[0].factors)
        print("\nCCFC - compression-conversion amplification factors:")
        print(
            render_table(
                ["CDN", "Coding"] + [f"{s // MB}MB" for s in ccfc_sizes],
                [
                    [row.display_name, row.encoding or "-"]
                    + [f"{row.factors[s]:.1f}" for s in ccfc_sizes]
                    for row in report.table_ccfc
                ],
            )
        )
    if report.table_faults:
        print(
            f"\nTable VI - SBR under faults + vendor retries "
            f"(seed {report.fault_seed}):"
        )
        print(
            render_table(
                ["CDN", "Size", "Clean", "Faulted", "Re-amp", "Faults",
                 "Retries", "Budget"],
                [
                    [
                        row.display_name,
                        f"{row.resource_size // MB}MB",
                        f"{row.clean_factor:.0f}",
                        f"{row.faulted_factor:.0f}",
                        f"{row.reamplification:.2f}x",
                        row.faults,
                        row.retries,
                        row.max_attempts,
                    ]
                    for row in report.table_faults
                ],
            )
        )
    if report.table7_recommendations is not None:
        from repro.analysis.recommend import render_recommendations_table

        print("\nTable VII - Defense recommendations (static residual bounds):")
        print(render_recommendations_table(report.table7_recommendations))
    print("\nFig 6a - SBR factor vs size:")
    for series in report.fig6:
        print(f"  {series.vendor:<12} {render_sparkline(series.factors, width=40)}")
    print("\nFig 7 - origin egress vs m:")
    print(
        render_table(
            ["m", "steady origin Mbps", "peak client Kbps", "saturated"],
            [
                [
                    result.m,
                    f"{result.steady_origin_mbps:.1f}",
                    f"{result.peak_client_kbps:.1f}",
                    "yes" if result.saturated else "no",
                ]
                for result in report.fig7
            ],
        )
    )
    label = "run-all" + ("-quick" if args.quick else "")
    if args.exact:
        label += "-exact"
    if args.faults:
        label += "-faults"
    if args.output_dir is not None or args.bench is not None:
        from repro.reporting.bench import bench_from_runall

        bench = bench_from_runall(report, label, wall_s=wall_s)
        if args.output_dir is not None:
            for path in write_report(report, args.output_dir):
                print(f"wrote {path}")
                written_artifacts.append(path)
            bench_path = bench.write(Path(args.output_dir))
            print(f"wrote {bench_path}")
            written_artifacts.append(bench_path)
        if args.bench is not None:
            bench_path = bench.write(args.bench)
            print(f"wrote {bench_path}")
            written_artifacts.append(bench_path)
    if args.runlog is not None:
        from repro.obs.runlog import RunLedger, artifact_digest, record_from_runall

        config = {
            "quick": args.quick,
            "exact": args.exact,
            "faults": args.faults,
            "fault_seed": (
                args.fault_seed if args.fault_seed is not None else DEFAULT_FAULT_SEED
            ),
            "workers": report.workers,
        }
        record = RunLedger(args.runlog).append(
            record_from_runall(
                report,
                label,
                config,
                wall_s=wall_s,
                artifacts={
                    path.name: artifact_digest(path) for path in written_artifacts
                },
            )
        )
        print(f"runlog: appended run {record.run_id} ({label}) to {args.runlog}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_vendor_matrix, render_findings_table

    wall_started = time.perf_counter()
    report = analyze_vendor_matrix(
        resource_size=args.size_mb * MB,
        obr_resource_size=args.obr_size,
        ccfc_resource_size=args.ccfc_size_mb * MB,
    )
    wall_s = time.perf_counter() - wall_started
    if args.format == "json":
        print(report.to_json())
    else:
        print(render_findings_table(report))
        print(
            f"\n{len(report.by_kind('sbr'))} SBR-vulnerable vendor(s), "
            f"{len(report.by_kind('obr'))} OBR-vulnerable cascade(s), "
            f"{len(report.by_kind('ccfc'))} CCFC-vulnerable vendor(s), "
            f"{len(report.safe)} safe — bounds at "
            f"{args.size_mb}MB (SBR) / {args.obr_size}B (OBR) / "
            f"{args.ccfc_size_mb}MB (CCFC), zero traffic simulated"
        )
    if args.with_retries and args.format != "json":
        from repro.analysis.bounds import faulted_sbr_bound
        from repro.cdn.vendors import all_vendor_names, create_profile
        from repro.reporting.render import render_table

        rows = []
        for name in all_vendor_names():
            bound = faulted_sbr_bound(name, args.size_mb * MB)
            rows.append(
                [
                    create_profile(name).display_name,
                    bound.max_attempts,
                    f"{bound.base.factor:.0f}",
                    f"{bound.factor:.0f}",
                ]
            )
        print(
            f"\nRetry-aware SBR bound at {args.size_mb}MB "
            f"(clean bound x attempt budget, bare-wire denominator):"
        )
        print(render_table(["CDN", "Attempts", "Clean bound", "Faulted bound"], rows))
    if args.runlog is not None:
        from repro.obs.runlog import RunLedger, record_from_analysis

        config = {
            "size_mb": args.size_mb,
            "obr_size": args.obr_size,
            "ccfc_size_mb": args.ccfc_size_mb,
            "with_retries": args.with_retries,
        }
        record = RunLedger(args.runlog).append(
            record_from_analysis(report, config, wall_s=wall_s)
        )
        # JSON mode keeps stdout machine-parseable; the notice moves aside.
        print(
            f"runlog: appended run {record.run_id} (analyze) to {args.runlog}",
            file=sys.stderr if args.format == "json" else sys.stdout,
        )
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from repro.analysis.recommend import (
        DEFAULT_THRESHOLD,
        recommend,
        render_recommendations_table,
        verify_recommendations,
    )

    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    wall_started = time.perf_counter()
    report = recommend(
        resource_size=args.size_mb * MB,
        obr_resource_size=args.obr_size,
        threshold=threshold,
        with_retries=args.with_retries,
        ccfc_resource_size=args.ccfc_size_mb * MB,
    )
    wall_s = time.perf_counter() - wall_started
    if args.format == "json":
        print(report.to_json())
    else:
        print(render_recommendations_table(report))
        print(
            f"\n{len(report.by_kind('sbr'))} SBR, {len(report.by_kind('obr'))} "
            f"OBR, and {len(report.by_kind('ccfc'))} CCFC finding(s); "
            f"threshold {threshold:g}x "
            f"(bounds at {args.size_mb}MB SBR / {args.obr_size}B OBR / "
            f"{args.ccfc_size_mb}MB CCFC)"
        )
        if report.unresolved:
            for recommendation in report.unresolved:
                print(
                    f"UNRESOLVED: {recommendation.subject} — no mitigation "
                    f"stays under {threshold:g}x"
                )
    if args.runlog is not None:
        from repro.obs.runlog import RunLedger, record_from_recommendations

        config = {
            "size_mb": args.size_mb,
            "obr_size": args.obr_size,
            "ccfc_size_mb": args.ccfc_size_mb,
            "threshold": threshold,
            "with_retries": args.with_retries,
            "verify": args.verify,
        }
        record = RunLedger(args.runlog).append(
            record_from_recommendations(report, config, wall_s=wall_s)
        )
        print(
            f"runlog: appended run {record.run_id} (recommend) to {args.runlog}",
            file=sys.stderr if args.format == "json" else sys.stdout,
        )
    if not report.all_resolved:
        return 1
    if args.verify:
        checks = verify_recommendations(report)
        failures = [check for check in checks if not check.ok]
        if args.format != "json":
            print(
                f"verified {len(checks)} simulated check(s): "
                f"{len(checks) - len(failures)} ok, {len(failures)} failed"
            )
        for check in failures:
            print(
                f"VERIFY FAIL: {check.subject} under {check.mitigation} at "
                f"{check.resource_size}B: simulated {check.simulated_factor:.3f}x "
                f"> residual bound {check.residual_bound:.3f}x",
                file=sys.stderr,
            )
        if failures:
            return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis service until SIGTERM/SIGINT, then drain."""
    import asyncio

    from repro.serve.app import AnalysisService, ServeConfig
    from repro.serve.server import serve_until_drained

    config = ServeConfig(
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        default_deadline_ms=args.default_deadline_ms,
        rate_capacity=args.rate_capacity,
        rate_refill=args.rate_refill,
    )
    service = AnalysisService(config)
    return asyncio.run(
        serve_until_drained(
            service,
            host=args.host,
            port=args.port,
            workers=args.workers,
            runlog=args.runlog,
            drain_grace_s=args.drain_grace_s,
        )
    )


def _cmd_obs_runs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.runlog import RunLedger
    from repro.reporting.render import format_duration

    records = RunLedger(args.ledger).load()
    offset = 0
    if args.limit is not None and 0 < args.limit < len(records):
        offset = len(records) - args.limit
        records = records[offset:]
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in records], indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"ledger {args.ledger} is empty")
        return 0
    print(
        render_table(
            ["#", "run id", "command", "label", "cells", "wall", "fast", "factors"],
            [
                [
                    offset + index,
                    record.run_id,
                    record.command,
                    record.label,
                    record.cell_count,
                    format_duration(record.wall_s),
                    (
                        f"{record.fastpath['hit_rate']:.0%}"
                        if record.fastpath is not None
                        else "-"
                    ),
                    len(record.factors),
                ]
                for index, record in enumerate(records)
            ],
        )
    )
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from repro.reporting.render import format_duration

    if args.trace is not None:
        from repro.netsim.trace import load_joined_jsonl

        with open(args.trace, "r", encoding="utf-8") as stream:
            _, spans = load_joined_jsonl(stream)
        ranked_spans = sorted(spans, key=lambda s: s.end - s.start, reverse=True)
        print(f"top {min(args.count, len(ranked_spans))} spans of {args.trace} "
              f"({len(ranked_spans)} total):")
        print(
            render_table(
                ["span", "trace", "wall"],
                [
                    [span.name, span.trace_id, format_duration(span.end - span.start)]
                    for span in ranked_spans[: args.count]
                ],
            )
        )
        return 0

    from repro.obs.runlog import RunLedger

    record = RunLedger(args.ledger).resolve(args.run)
    total_s = record.cell_seconds
    ranked = sorted(record.cells, key=lambda c: c.seconds, reverse=True)
    print(
        f"top {min(args.count, len(ranked))} cells of run {record.run_id} "
        f"({record.label}, {record.cell_count} cells, "
        f"{format_duration(record.wall_s)} wall):"
    )
    print(
        render_table(
            ["cell", "experiment", "wall", "share", "ok"],
            [
                [
                    cell.label,
                    cell.experiment,
                    format_duration(cell.seconds),
                    f"{cell.seconds / total_s:.0%}" if total_s > 0 else "-",
                    "ok" if cell.ok else "FAILED",
                ]
                for cell in ranked[: args.count]
            ],
        )
    )
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json
    import math

    from repro.obs.runlog import RunLedger, diff_runs
    from repro.reporting.render import format_duration

    ledger = RunLedger(args.ledger)
    diff = diff_runs(
        ledger.resolve(args.before),
        ledger.resolve(args.after),
        threshold=args.threshold,
        min_seconds=args.min_seconds,
        factor_tolerance=args.factor_tolerance,
    )
    timing = diff.timing_regressions()
    factors = diff.factor_regressions()
    if args.format == "json":
        payload = {
            "before": diff.before.run_id,
            "after": diff.after.run_id,
            "shared_cells": len(diff.cells),
            "added_cells": list(diff.added_cells),
            "removed_cells": list(diff.removed_cells),
            "added_factors": list(diff.added_factors),
            "removed_factors": list(diff.removed_factors),
            "timing_regressions": [
                {
                    "label": delta.label,
                    "experiment": delta.experiment,
                    "before_s": delta.before_s,
                    "after_s": delta.after_s,
                    "ratio": delta.ratio if math.isfinite(delta.ratio) else None,
                }
                for delta in timing
            ],
            "factor_regressions": [
                {
                    "key": delta.key,
                    "before": delta.before,
                    "after": delta.after,
                    "relative": (
                        delta.relative if math.isfinite(delta.relative) else None
                    ),
                }
                for delta in factors
            ],
            "ok": diff.ok,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"diff {diff.before.run_id} ({diff.before.label}) -> "
            f"{diff.after.run_id} ({diff.after.label}): "
            f"{len(diff.cells)} shared cell(s), "
            f"{len(diff.added_cells)} added, {len(diff.removed_cells)} removed"
        )
        print(
            f"wall: {format_duration(diff.before.wall_s)} -> "
            f"{format_duration(diff.after.wall_s)}"
        )
        if timing:
            print("\ntiming regressions "
                  f"(> {1.0 + args.threshold:.2f}x and > {args.min_seconds:g}s):")
            print(
                render_table(
                    ["cell", "experiment", "before", "after", "ratio"],
                    [
                        [
                            delta.label,
                            delta.experiment,
                            format_duration(delta.before_s),
                            format_duration(delta.after_s),
                            f"{delta.ratio:.2f}x",
                        ]
                        for delta in timing
                    ],
                )
            )
        if factors:
            print("\nfactor drift (deterministic outputs; any drift "
                  f"> {args.factor_tolerance:g} relative is a regression):")
            print(
                render_table(
                    ["factor", "before", "after", "drift"],
                    [
                        [
                            delta.key,
                            f"{delta.before:.6g}",
                            f"{delta.after:.6g}",
                            f"{delta.relative:+.2%}",
                        ]
                        for delta in factors
                    ],
                )
            )
        if not timing and not factors:
            print("no regressions")
    if args.gate:
        failures = diff.gate_failures()
        for failure in failures:
            print(f"GATE: {failure}", file=sys.stderr)
        if failures:
            print(
                f"gate FAILED with {len(failures)} regression(s)", file=sys.stderr
            )
            return 1
        if args.format != "json":
            print("gate passed")
    return 0


def _cmd_obs_export_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.export import chrome_trace_from_jsonl, write_chrome_trace

    output = (
        args.output
        if args.output is not None
        else str(Path(args.input).with_suffix(".trace.json"))
    )
    with open(args.input, "r", encoding="utf-8") as stream:
        trace = chrome_trace_from_jsonl(stream)
    path = write_chrome_trace(trace, output)
    print(f"wrote {path} ({len(trace['traceEvents'])} trace events)")
    return 0


def _cmd_obs_export_prom(args: argparse.Namespace) -> int:
    from repro.obs.export import write_prometheus_textfile
    from repro.obs.runlog import RunLedger

    record = RunLedger(args.ledger).resolve(args.run)
    path, families = write_prometheus_textfile(record.metrics, args.output)
    print(f"wrote {path} ({families} metric families from run {record.run_id})")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "runs":
        return _cmd_obs_runs(args)
    if args.obs_command == "top":
        return _cmd_obs_top(args)
    if args.obs_command == "diff":
        return _cmd_obs_diff(args)
    if args.obs_command == "export-trace":
        return _cmd_obs_export_trace(args)
    if args.obs_command == "export-prom":
        return _cmd_obs_export_prom(args)
    raise AssertionError(
        f"unhandled obs command {args.obs_command!r}"
    )  # pragma: no cover


def _load_purity_baseline(
    option: Optional[str],
) -> Tuple[List["BaselineEntry"], Optional[str]]:
    """Resolve the suppression baseline: an explicit ``--baseline`` must
    exist (usage error otherwise); with no flag, ``purity-baseline.toml``
    in the working directory is picked up when present."""
    from pathlib import Path

    from repro.analysis.purity import BASELINE_FILENAME, load_baseline

    if option is not None:
        return load_baseline(option), option
    default = Path(BASELINE_FILENAME)
    if default.is_file():
        return load_baseline(default), str(default)
    return [], None


def _cmd_purity(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import purity

    entries, baseline_path = _load_purity_baseline(args.baseline)
    report = purity.analyze_tree(baseline=entries, baseline_path=baseline_path)
    if args.format == "sarif":
        rendered = purity.to_sarif_json(report)
    elif args.format == "json":
        rendered = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        rendered = purity.render_text(report)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(
            f"wrote {args.format} report to {args.output}: "
            f"{len(report.findings)} finding(s), "
            f"{len(report.unused_suppressions)} unused suppression(s)"
        )
    else:
        print(rendered)
    return 0 if report.clean else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.lint import lint_paths, lint_repo

    findings = lint_paths(args.paths) if args.paths else lint_repo()
    purity_report = None
    if args.deep:
        from repro.analysis import purity

        entries, baseline_path = _load_purity_baseline(args.baseline)
        purity_report = purity.analyze_tree(
            baseline=entries, baseline_path=baseline_path
        )
    if args.format == "json":
        payload = {
            "findings": [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "rule": finding.rule,
                    "message": finding.message,
                }
                for finding in findings
            ],
            "count": len(findings),
        }
        if purity_report is not None:
            payload["purity"] = purity_report.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding)
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
        if purity_report is not None:
            from repro.analysis.purity import render_text

            print(render_text(purity_report))
    clean = not findings and (purity_report is None or purity_report.clean)
    return 0 if clean else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import load_scenario, run_scenario

    outcome = run_scenario(load_scenario(args.path))
    print(json.dumps(outcome.to_dict(), indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "vendors":
            return _cmd_vendors()
        if args.command == "sbr":
            return _cmd_sbr(args)
        if args.command == "obr":
            return _cmd_obr(args)
        if args.command == "survey":
            return _cmd_survey()
        if args.command == "flood":
            return _cmd_flood(args)
        if args.command == "economics":
            return _cmd_economics(args)
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "recommend":
            return _cmd_recommend(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "purity":
            return _cmd_purity(args)
        if args.command == "matrix":
            return _cmd_matrix()
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "run-all":
            return _cmd_run_all(args)
        if args.command == "obs":
            return _cmd_obs(args)
    except UsageError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
