"""Mitigations and detection (paper §VI-C and §VII).

* :mod:`repro.defense.mitigations` — the CDN-side fixes the paper
  proposes (and that several vendors deployed): switching to the
  Laziness policy (G-Core's "slice" option), bounding expansion to a few
  KB, and enforcing RFC 7233 §6.1's guard against overlapping /
  many-small multi-range requests (CDN77's fix).
* :mod:`repro.defense.detection` — origin- or CDN-side heuristics that
  flag RangeAmp traffic patterns, illustrating why the paper considers
  local DoS defense insufficient.
"""

from __future__ import annotations

from repro.defense.detection import DetectionVerdict, RangeAmpDetector
from repro.defense.mitigations import (
    MitigatedProfile,
    SlicingProfile,
    rfc7233_multirange_guard,
    with_bounded_expansion,
    with_laziness,
    with_overlap_rejection,
    with_slicing,
)
from repro.defense.ratelimit import RateLimitedHandler, TokenBucket

__all__ = [
    "DetectionVerdict",
    "MitigatedProfile",
    "RangeAmpDetector",
    "RateLimitedHandler",
    "SlicingProfile",
    "TokenBucket",
    "rfc7233_multirange_guard",
    "with_bounded_expansion",
    "with_laziness",
    "with_overlap_rejection",
    "with_slicing",
]
