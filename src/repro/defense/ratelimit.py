"""Per-client rate limiting as a CDN-side defense — and its limits.

Paper §VI-C argues that local DoS defenses struggle against RangeAmp:
"attack requests are no different from benign requests and come from
widely distributed CDN nodes".  This module makes that argument
quantitative with a classic token-bucket limiter:

* :class:`TokenBucket` — capacity/refill-rate bucket over a simulated
  clock;
* :class:`RateLimitedHandler` — wraps any handler and answers HTTP 429
  once a client key exhausts its bucket.

The key function is pluggable because *what to key on* is exactly the
hard part: keying on the client address is defeated by address rotation,
keying on the URL path is defeated by cache busting only if the query
string is included in the key, and keying on the bare path throttles
benign clients of popular objects.  The tests exercise all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.handler import HttpHandler
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.status import StatusCode
from repro.netsim.clock import SimClock


@dataclass
class TokenBucket:
    """A standard token bucket: ``capacity`` burst, ``refill_rate``
    tokens per second."""

    capacity: float
    refill_rate: float
    tokens: float = field(init=False)
    last_refill: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.refill_rate < 0:
            raise ValueError(
                f"invalid bucket (capacity={self.capacity}, "
                f"refill_rate={self.refill_rate})"
            )
        self.tokens = self.capacity

    def _refill(self, now: float) -> None:
        if now > self.last_refill:
            self.tokens = min(
                self.capacity, self.tokens + (now - self.last_refill) * self.refill_rate
            )
            self.last_refill = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens at time ``now`` if available."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def peek(self, now: float, cost: float = 1.0) -> bool:
        """Would :meth:`allow` succeed at ``now``?  Takes nothing."""
        return self.available(now) >= cost

    def available(self, now: float) -> float:
        """Tokens that would be on hand at ``now`` (no mutation)."""
        if now <= self.last_refill:
            return self.tokens
        return min(
            self.capacity, self.tokens + (now - self.last_refill) * self.refill_rate
        )

    def retry_after(self, now: float, cost: float = 1.0) -> float:
        """Seconds from ``now`` until ``cost`` tokens will be on hand.

        ``0.0`` when the take would succeed immediately; ``inf`` when
        the bucket can never refill that far (zero rate, or a cost above
        capacity).  This is the honest ``Retry-After`` value a shedding
        server should advertise.
        """
        shortfall = cost - self.available(now)
        if shortfall <= 0:
            return 0.0
        if self.refill_rate <= 0 or cost > self.capacity:
            return float("inf")
        return shortfall / self.refill_rate


def key_by_client_header(header: str = "X-Client-Address") -> Callable[[HttpRequest], str]:
    """Key requests by a client-identifying header (source address)."""

    def key(request: HttpRequest) -> str:
        return request.headers.get(header, "unknown")

    return key


def key_by_path(include_query: bool = False) -> Callable[[HttpRequest], str]:
    """Key requests by target path (optionally including the query
    string — including it makes the limiter blind to cache busting)."""

    def key(request: HttpRequest) -> str:
        return request.target if include_query else request.path

    return key


class RateLimitedHandler(HttpHandler):
    """Wraps a handler with per-key token-bucket limiting."""

    def __init__(
        self,
        inner: HttpHandler,
        rate_per_second: float,
        burst: float,
        clock: Optional[SimClock] = None,
        key_fn: Optional[Callable[[HttpRequest], str]] = None,
    ) -> None:
        self.inner = inner
        self.rate_per_second = rate_per_second
        self.burst = burst
        self.clock = clock if clock is not None else SimClock()
        self.key_fn = key_fn if key_fn is not None else key_by_client_header()
        self._buckets: Dict[str, TokenBucket] = {}
        self.rejected = 0
        self.admitted = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        key = self.key_fn(request)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(capacity=self.burst, refill_rate=self.rate_per_second)
            self._buckets[key] = bucket
        if not bucket.allow(self.clock.now):
            self.rejected += 1
            return self._too_many_requests()
        self.admitted += 1
        return self.inner.handle(request)

    def tracked_keys(self) -> int:
        """How many distinct keys the limiter is holding state for —
        itself a resource-exhaustion concern under key rotation."""
        return len(self._buckets)

    @staticmethod
    def _too_many_requests() -> HttpResponse:
        body = b"rate limit exceeded\n"
        return HttpResponse(
            StatusCode.TOO_MANY_REQUESTS,
            headers=Headers(
                [
                    ("Content-Type", "text/plain"),
                    ("Content-Length", str(len(body))),
                    ("Retry-After", "1"),
                ]
            ),
            body=body,
        )
