"""CDN-side mitigations (paper §VI-C).

The paper recommends three implementation changes, each available here
as a wrapper over any vendor profile:

* :func:`with_laziness` — forward the Range header unchanged, giving up
  range-driven caching entirely.  This is what G-Core shipped ("slice"
  option enabled by default) and it eliminates the SBR attack.
* :func:`with_bounded_expansion` — keep prefetching, but widen the range
  by at most a few KB ("it is acceptable to increase the byte range by
  8KB, which will not cause too much traffic difference").
* :func:`with_overlap_rejection` — enforce RFC 7233 §6.1: reject range
  requests with more than two overlapping ranges or many small ranges
  (CDN77's deployed fix against the OBR attack).

A :class:`MitigatedProfile` keeps the wrapped vendor's identity — its
header weight, limits, boundary — and only replaces the vulnerable
policy, so before/after comparisons isolate the mitigation's effect
(see ``benchmarks/bench_ablation_mitigations.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Tuple

from repro.cdn.limits import HeaderLimits
from repro.cdn.multirange import MultiRangeReplyBehavior
from repro.cdn.policy import ForwardDecision, ForwardPolicy, bounded_expansion
from repro.cdn.vendors.base import (
    EncodingPolicy,
    ExchangeFn,
    FetchResult,
    SpecShape,
    VendorConfig,
    VendorContext,
    VendorProfile,
    classify_spec,
)
from repro.errors import RangeNotSatisfiableError
from repro.http.body import Body
from repro.http.message import HttpRequest
from repro.http.ranges import (
    ByteRangeSpec,
    RangeSpecifier,
    ResolvedRange,
    ranges_overlap,
    try_parse_range_header,
)
from repro.http.status import StatusCode

#: RFC 7233 §6.1 heuristics: "more than two overlapping ranges or many
#: small ranges".
MAX_OVERLAPPING_RANGES = 2
MANY_SMALL_RANGES = 16
SMALL_RANGE_BYTES = 64


def _overlapping_pair_count(resolved: List[ResolvedRange]) -> int:
    """Number of unordered range pairs that overlap.

    Equivalent to the naive all-pairs scan (pairs with
    ``a.start <= b.end and b.start <= a.end``) but O(n log n): sort by
    start, then each range overlaps exactly the earlier ranges whose end
    reaches its start.  The OBR attack's probe requests carry tens of
    thousands of mutually overlapping ranges, so the quadratic scan was
    the single hottest path of the static recommendation engine.
    """
    starts = sorted(r.start for r in resolved)
    ends = sorted(r.end for r in resolved)
    pairs = 0
    for index, start in enumerate(starts):
        # Ranges ending before ``start`` cannot overlap this one; among
        # the remaining, the ``index`` earlier-starting ones all do.
        pairs += index - bisect_left(ends, start)
    return pairs


def rfc7233_multirange_guard(
    resource_size_hint: int = 1 << 30,
) -> Callable[[HttpRequest], Optional[str]]:
    """A request-limit predicate implementing RFC 7233 §6.1's advice.

    Returns a callable suitable for :class:`HeaderLimits.custom`.  The
    overlap check resolves ranges against ``resource_size_hint`` (open
    ranges overlap regardless of the exact size, so a large default is
    safe).
    """

    def check(request: HttpRequest) -> Optional[str]:
        spec = try_parse_range_header(request.headers.get("Range"))
        if spec is None or not spec.is_multi:
            return None
        try:
            resolved = spec.resolve(resource_size_hint)
        except RangeNotSatisfiableError:  # unsatisfiable: nothing to guard
            return None
        overlapping = _overlapping_pair_count(resolved)
        if overlapping > MAX_OVERLAPPING_RANGES:
            return f"{overlapping} overlapping range pairs (RFC 7233 6.1 guard)"
        small = sum(1 for r in resolved if r.length <= SMALL_RANGE_BYTES)
        if small >= MANY_SMALL_RANGES:
            return f"{small} small ranges (RFC 7233 6.1 guard)"
        if ranges_overlap(resolved) and len(resolved) > MAX_OVERLAPPING_RANGES:
            return "overlapping multi-range request (RFC 7233 6.1 guard)"
        return None

    return check


class MitigatedProfile(VendorProfile):
    """A vendor profile with its Range forwarding policy replaced.

    The wrapped vendor's observable identity (name, response headers,
    padding weight, boundary, limits) is preserved; only the policy under
    test changes.  The default single-connection fetch flow is used
    deliberately — the multi-connection quirks (Azure, StackPath,
    KeyCDN) are part of what the mitigations remove.
    """

    def __init__(
        self,
        inner: VendorProfile,
        forwarding: str = "laziness",
        expansion_slack: int = 8 * 1024,
        reply_behavior: Optional[MultiRangeReplyBehavior] = None,
        extra_guard: Optional[Callable[[HttpRequest], Optional[str]]] = None,
    ) -> None:
        if forwarding not in ("laziness", "bounded-expansion"):
            raise ValueError(f"unknown mitigation forwarding mode {forwarding!r}")
        limits = inner.limits
        if extra_guard is not None:
            limits = HeaderLimits(
                max_total_header_bytes=limits.max_total_header_bytes,
                max_single_header_line_bytes=limits.max_single_header_line_bytes,
                max_ranges=limits.max_ranges,
                custom=_chain_guards(limits.custom, extra_guard),
            )
        super().__init__(limits=limits)
        self.inner = inner
        self.forwarding = forwarding
        self.expansion_slack = expansion_slack
        # Mirror the wrapped vendor's identity at instance level.
        self.name = inner.name
        self.display_name = f"{inner.display_name} (mitigated)"
        self.reply_behavior = (
            reply_behavior if reply_behavior is not None else inner.reply_behavior
        )
        self.reply_max_parts = inner.reply_max_parts
        self.multipart_boundary = inner.multipart_boundary
        self.client_header_block_target = inner.client_header_block_target
        self.pad_header_name = inner.pad_header_name
        self.server_header = inner.server_header
        self.encoding_policy = inner.encoding_policy
        self.edge_accept_encoding = inner.edge_accept_encoding
        self.edge_decompresses = inner.edge_decompresses
        self.compression_ratios = inner.compression_ratios

    @classmethod
    def default_config(cls) -> VendorConfig:
        """Class-level fallback only: a bare :class:`MitigatedProfile`
        class knows no inner vendor, so this is the base default.
        Instance paths (deployment / grid construction / classification)
        go through :meth:`effective_config`, which returns the wrapped
        vendor's configuration."""
        return VendorProfile.default_config()

    def effective_config(self) -> VendorConfig:
        """The wrapped vendor's configuration — mitigated profiles must
        round-trip through ``classify_sbr`` and deployment construction
        with the inner vendor's config (Huawei's Range origin option,
        Cloudflare's cacheability) intact."""
        return self.inner.effective_config()

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        if self.forwarding == "laziness":
            return ForwardDecision.lazy(request.range_header)
        if classify_spec(spec) is SpecShape.SINGLE_CLOSED:
            only = spec.specs[0]
            assert isinstance(only, ByteRangeSpec) and only.last is not None
            first, last = bounded_expansion(only.first, only.last, slack=self.expansion_slack)
            return ForwardDecision.expand(f"bytes={first}-{last}")
        return ForwardDecision.lazy(request.range_header)

    def forward_headers(self) -> List[Tuple[str, str]]:
        return self.inner.forward_headers()

    def response_headers(self) -> List[Tuple[str, str]]:
        return self.inner.response_headers()


def _chain_guards(
    first: Optional[Callable[[HttpRequest], Optional[str]]],
    second: Callable[[HttpRequest], Optional[str]],
) -> Callable[[HttpRequest], Optional[str]]:
    def check(request: HttpRequest) -> Optional[str]:
        if first is not None:
            message = first(request)
            if message:
                return message
        return second(request)

    return check


def with_laziness(inner: VendorProfile) -> MitigatedProfile:
    """The Laziness mitigation (G-Core's deployed fix)."""
    return MitigatedProfile(inner, forwarding="laziness")


def with_bounded_expansion(inner: VendorProfile, slack: int = 8 * 1024) -> MitigatedProfile:
    """The bounded-expansion mitigation (+``slack`` bytes, default 8 KB)."""
    return MitigatedProfile(inner, forwarding="bounded-expansion", expansion_slack=slack)


def with_overlap_rejection(inner: VendorProfile) -> MitigatedProfile:
    """The RFC 7233 §6.1 guard (CDN77's deployed fix): overlapping /
    many-small multi-range requests are rejected at ingress, and replies
    coalesce instead of honoring duplicates."""
    return MitigatedProfile(
        inner,
        forwarding="laziness",
        reply_behavior=MultiRangeReplyBehavior.COALESCE,
        extra_guard=rfc7233_multirange_guard(),
    )


class SlicingProfile(VendorProfile):
    """Slice-based range fetching — G-Core's deployed fix, properly.

    Instead of Deletion (pull everything) or pure Laziness (cache
    nothing), the edge fetches fixed-size *slices* covering the requested
    bytes — ``Range: bytes=<k*S>-<(k+1)*S - 1>`` — and caches each slice
    independently (the nginx ``slice`` module's behavior, which is what
    "the slice option" enables).  Per-request origin traffic is bounded
    by the slice size regardless of the resource size, killing the SBR
    amplification while keeping range-driven caching.

    Slicing applies to single closed ranges (the SBR shape).  Open-ended
    and suffix ranges need the representation length up front and are
    forwarded lazily; multi-range requests are forwarded lazily too.
    """

    def __init__(self, inner: VendorProfile, slice_size: int = 1 << 20) -> None:
        if slice_size < 1:
            raise ValueError(f"slice_size must be >= 1, got {slice_size}")
        super().__init__(limits=inner.limits)
        self.inner = inner
        self.slice_size = slice_size
        self.name = inner.name
        self.display_name = f"{inner.display_name} (sliced)"
        self.reply_behavior = MultiRangeReplyBehavior.COALESCE
        self.multipart_boundary = inner.multipart_boundary
        self.client_header_block_target = inner.client_header_block_target
        self.pad_header_name = inner.pad_header_name
        self.server_header = inner.server_header
        self.encoding_policy = inner.encoding_policy
        self.edge_accept_encoding = inner.edge_accept_encoding
        self.edge_decompresses = inner.edge_decompresses
        self.compression_ratios = inner.compression_ratios
        #: Slice cache: (host, target, slice index) -> payload body.
        self._slices: Dict[Tuple[str, str, int], Body] = {}
        #: Learned complete lengths: (host, target) -> int.
        self._lengths: Dict[Tuple[str, str], int] = {}

    def effective_config(self) -> VendorConfig:
        """The wrapped vendor's configuration (see
        :meth:`MitigatedProfile.effective_config`)."""
        return self.inner.effective_config()

    def fetch(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
        exchange: ExchangeFn,
    ) -> FetchResult:
        from repro.cdn.vendors.base import FetchResult, SpecShape, classify_spec
        from repro.cdn.window import ContentWindow
        from repro.http.body import CompositeBody
        from repro.http.ranges import ByteRangeSpec, parse_content_range

        if spec is None or classify_spec(spec) is not SpecShape.SINGLE_CLOSED:
            return super().fetch(request, spec, ctx, exchange)

        only = spec.specs[0]
        assert isinstance(only, ByteRangeSpec) and only.last is not None
        first_slice = only.first // self.slice_size
        last_slice = only.last // self.slice_size
        resource_key = (request.host or "", request.target)

        pieces = []
        complete = self._lengths.get(resource_key)
        source_headers = None
        for index in range(first_slice, last_slice + 1):
            if complete is not None and index * self.slice_size >= complete:
                break  # requested range runs past EOF; later slices vanish
            cached = self._slices.get(resource_key + (index,))
            if cached is not None:
                pieces.append(cached)
                continue
            slice_first = index * self.slice_size
            slice_last = (index + 1) * self.slice_size - 1
            upstream = self.build_upstream_request(
                request, ForwardDecision.expand(f"bytes={slice_first}-{slice_last}")
            )
            response = exchange(upstream, note=f"slice:{index}")
            if response.status == StatusCode.OK:
                # Origin without range support: take the whole body once.
                complete = len(response.body)
                self._lengths[resource_key] = complete
                return FetchResult(
                    window=ContentWindow.full(response.body),
                    policy=ForwardPolicy.EXPANSION,
                    upstream_status=200,
                    cacheable_full=True,
                    source_headers=response.headers,
                )
            if response.status != StatusCode.PARTIAL_CONTENT:
                return FetchResult(
                    passthrough=response,
                    policy=ForwardPolicy.EXPANSION,
                    upstream_status=response.status,
                )
            content_range = response.headers.get("Content-Range")
            resolved, complete_from_header = (
                parse_content_range(content_range) if content_range else (None, None)
            )
            if resolved is None or complete_from_header is None:
                return FetchResult(
                    passthrough=response,
                    policy=ForwardPolicy.EXPANSION,
                    upstream_status=206,
                )
            complete = complete_from_header
            self._lengths[resource_key] = complete
            self._slices[resource_key + (index,)] = response.body
            pieces.append(response.body)
            source_headers = response.headers

        if complete is None or not pieces:
            # The whole request was past EOF (the slice fetch 416'd) —
            # fall back to a lazy forward so the origin's 416 relays.
            return super().fetch(request, spec, ctx, exchange)

        window = ContentWindow(
            body=CompositeBody(pieces),
            offset=first_slice * self.slice_size,
            complete_length=complete,
        )
        return FetchResult(
            window=window,
            policy=ForwardPolicy.EXPANSION,
            upstream_status=206,
            source_headers=source_headers,
        )

    def forward_headers(self) -> List[Tuple[str, str]]:
        return self.inner.forward_headers()

    def response_headers(self) -> List[Tuple[str, str]]:
        return self.inner.response_headers()

    def cached_slice_count(self) -> int:
        """How many slices this edge currently holds."""
        return len(self._slices)


def with_slicing(inner: VendorProfile, slice_size: int = 1 << 20) -> SlicingProfile:
    """The slice-option mitigation: per-request origin traffic bounded by
    ``slice_size``, with per-slice caching."""
    return SlicingProfile(inner, slice_size=slice_size)


def with_encoding_passthrough(inner: VendorProfile) -> VendorProfile:
    """The CCFC pass-through fix: forward the client's ``Accept-Encoding``
    untouched and never decompress at the edge.

    The compression-conversion amplification (arXiv 2409.00712) needs the
    edge to *rewrite* the negotiation upstream and then inflate the
    compressed origin body for an identity-only client.  Forwarding the
    client's header verbatim makes the origin serve what the client can
    actually consume, so the edge ships bytes one-for-one.
    """
    mitigated = with_laziness(inner)
    mitigated.forwarding = "laziness"
    mitigated.encoding_policy = EncodingPolicy.FORWARD
    mitigated.edge_accept_encoding = ()
    mitigated.edge_decompresses = False
    return mitigated


def with_encoding_normalization(inner: VendorProfile) -> VendorProfile:
    """The CCFC normalization fix: upstream ``Accept-Encoding`` is clamped
    to what the *client* offered (or ``identity`` when it offered
    nothing), instead of the vendor's fixed rewrite list.

    Decompression support stays enabled — it simply never engages,
    because the origin only returns codings the client already accepts.
    """
    mitigated = with_laziness(inner)
    mitigated.encoding_policy = EncodingPolicy.NORMALIZE
    return mitigated
