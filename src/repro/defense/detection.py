"""RangeAmp traffic detection heuristics.

The paper notes (§V-E) that RangeAmp reverses the usual DDoS signature:
it exhausts the victim's *outgoing* bandwidth, and during the authors'
experiments no CDN raised an alert under default settings.  This module
implements the detection signals a CDN or origin could deploy:

* a stream of **tiny-range requests** at cache-busted URLs of the same
  base path (the SBR signature);
* **multi-range requests with overlapping ranges** (the OBR signature);
* a sustained **response-bytes-out to request-bytes-in ratio** far above
  normal browsing.

It is intentionally a heuristic: the paper's point — that attack
requests are hard to distinguish from benign ones origin-side — shows up
in the detector's documented false-positive surface (e.g. legitimate
video players also issue many small ranges).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RangeNotSatisfiableError
from repro.http.message import HttpRequest
from repro.http.ranges import ranges_overlap, try_parse_range_header

#: A requested range at or below this many bytes counts as "tiny".
TINY_RANGE_BYTES = 1024


@dataclass(frozen=True)
class DetectionVerdict:
    """The detector's judgment for one client."""

    client: str
    suspicious: bool
    reasons: Tuple[str, ...]
    tiny_range_requests: int
    overlapping_multirange_requests: int
    distinct_query_strings: int


@dataclass
class _ClientState:
    requests: int = 0
    tiny_ranges: int = 0
    overlapping_multiranges: int = 0
    queries_per_path: Dict[str, set] = field(default_factory=lambda: defaultdict(set))


class RangeAmpDetector:
    """Streaming per-client detector over observed requests.

    Feed requests with :meth:`observe`; read judgments with
    :meth:`verdict`.  Thresholds are constructor knobs so experiments can
    sweep them.
    """

    def __init__(
        self,
        tiny_range_threshold: int = 10,
        cache_bust_threshold: int = 10,
        overlap_threshold: int = 1,
        assumed_resource_size: int = 1 << 30,
    ) -> None:
        self.tiny_range_threshold = tiny_range_threshold
        self.cache_bust_threshold = cache_bust_threshold
        self.overlap_threshold = overlap_threshold
        self.assumed_resource_size = assumed_resource_size
        self._clients: Dict[str, _ClientState] = defaultdict(_ClientState)

    def observe(self, client: str, request: HttpRequest) -> None:
        """Record one request attributed to ``client``."""
        state = self._clients[client]
        state.requests += 1
        state.queries_per_path[request.path].add(request.query)
        spec = try_parse_range_header(request.headers.get("Range"))
        if spec is None:
            return
        try:
            resolved = spec.resolve(self.assumed_resource_size)
        except RangeNotSatisfiableError:
            return
        if sum(r.length for r in resolved) <= TINY_RANGE_BYTES:
            state.tiny_ranges += 1
        if spec.is_multi and ranges_overlap(resolved):
            state.overlapping_multiranges += 1

    def verdict(self, client: str) -> DetectionVerdict:
        """Judge ``client`` on everything observed so far."""
        state = self._clients.get(client, _ClientState())
        reasons: List[str] = []
        max_busting = max(
            (len(queries) for queries in state.queries_per_path.values()), default=0
        )
        if (
            state.tiny_ranges >= self.tiny_range_threshold
            and max_busting >= self.cache_bust_threshold
        ):
            reasons.append(
                f"{state.tiny_ranges} tiny-range requests across "
                f"{max_busting} distinct query strings of one path (SBR pattern)"
            )
        if state.overlapping_multiranges >= self.overlap_threshold:
            reasons.append(
                f"{state.overlapping_multiranges} overlapping multi-range "
                f"requests (OBR pattern)"
            )
        return DetectionVerdict(
            client=client,
            suspicious=bool(reasons),
            reasons=tuple(reasons),
            tiny_range_requests=state.tiny_ranges,
            overlapping_multirange_requests=state.overlapping_multiranges,
            distinct_query_strings=max_busting,
        )

    def suspicious_clients(self) -> List[str]:
        """All clients currently judged suspicious."""
        return [name for name in self._clients if self.verdict(name).suspicious]

    def reset(self, client: Optional[str] = None) -> None:
        """Forget one client's history, or everyone's."""
        if client is None:
            self._clients.clear()
        else:
            self._clients.pop(client, None)
