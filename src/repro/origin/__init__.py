"""Origin-server substrate.

The paper's origin is a stock Apache/2.4.18 on a 1000 Mbps uplink.
:class:`~repro.origin.server.OriginServer` reproduces its observable
behavior for this study: 200/206/416 selection, single-part and
multipart range replies, the post-CVE-2011-3192 guard against abusive
multi-range requests, and an Apache-shaped response header block (whose
byte weight feeds the amplification denominators).
"""

from __future__ import annotations

from repro.origin.resource import Resource, ResourceStore
from repro.origin.server import OriginServer, OriginStats

__all__ = ["OriginServer", "OriginStats", "Resource", "ResourceStore"]
