"""Resources served by the simulated origin."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import ResourceNotFoundError
from repro.http.body import Body, make_body

#: Content types guessed from path suffixes (enough for the experiments).
_SUFFIX_TYPES = {
    ".jpg": "image/jpeg",
    ".jpeg": "image/jpeg",
    ".png": "image/png",
    ".gif": "image/gif",
    ".html": "text/html",
    ".txt": "text/plain",
    ".css": "text/css",
    ".js": "application/javascript",
    ".json": "application/json",
    ".mp4": "video/mp4",
    ".bin": "application/octet-stream",
    ".zip": "application/zip",
}


def guess_content_type(path: str) -> str:
    """Guess a content type from the path suffix (octet-stream fallback)."""
    lowered = path.lower()
    for suffix, content_type in _SUFFIX_TYPES.items():
        if lowered.endswith(suffix):
            return content_type
    return "application/octet-stream"


@dataclass
class Resource:
    """A single origin resource.

    ``body`` accepts anything :func:`repro.http.body.make_body` does — in
    particular a plain ``int`` for an n-byte synthetic payload, which is
    how the multi-megabyte SBR targets are declared.
    """

    path: str
    body: Union[Body, bytes, str, int]
    content_type: Optional[str] = None
    last_modified: str = "Fri, 05 Jun 2020 07:30:00 GMT"
    #: Optional Cache-Control the origin emits for this resource — a
    #: malicious customer sets ``no-store`` to keep every request going
    #: back to origin without any query-string busting (paper §II-A).
    cache_control: Optional[str] = None
    #: Pre-compressed variants the origin can negotiate: coding name →
    #: compressed size in bytes (the CCFC attacker hosts highly
    #: compressible payloads, arXiv 2409.00712 §III).  ``None`` means the
    #: resource exists only as its identity representation.
    encodings: Optional[Dict[str, int]] = None
    _materialized_body: Body = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValueError(f"resource path must start with '/', got {self.path!r}")
        self._materialized_body = make_body(self.body)
        if self.content_type is None:
            self.content_type = guess_content_type(self.path)

    @property
    def content(self) -> Body:
        return self._materialized_body

    @property
    def size(self) -> int:
        return len(self._materialized_body)

    @property
    def etag(self) -> str:
        """A deterministic strong ETag derived from path and size.

        Apache derives its ETag from inode/size/mtime; ours hashes the
        identity instead so equal declarations produce equal tags.
        """
        digest = hashlib.sha1(
            f"{self.path}:{self.size}:{self.last_modified}".encode()
        ).hexdigest()
        return f'"{digest[:16]}"'


class ResourceStore:
    """Path-keyed collection of resources."""

    def __init__(self) -> None:
        self._resources: Dict[str, Resource] = {}

    def add(self, resource: Resource) -> Resource:
        """Register ``resource`` (replacing any same-path entry)."""
        self._resources[resource.path] = resource
        return resource

    def add_synthetic(self, path: str, size: int, content_type: Optional[str] = None) -> Resource:
        """Shorthand for registering an n-byte synthetic resource."""
        return self.add(Resource(path=path, body=size, content_type=content_type))

    def get(self, path: str) -> Resource:
        """Look up by exact path; raises :class:`ResourceNotFoundError`."""
        try:
            return self._resources[path]
        except KeyError:
            raise ResourceNotFoundError(path) from None

    def __contains__(self, path: object) -> bool:
        return path in self._resources

    def __len__(self) -> int:
        return len(self._resources)

    def paths(self) -> List[str]:
        return sorted(self._resources)
