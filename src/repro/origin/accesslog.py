"""Apache-style access logging and log-driven attack detection.

The paper's mitigation discussion (§VI-C) puts the origin operator in
the loop: when an SBR flood lands, the evidence available origin-side is
the access log.  This module provides that evidence chain:

* :class:`AccessLog` — entries in Apache's *combined* format extended
  with the ``Range`` header (the ``LogFormat "... \"%{Range}i\""``
  pattern real operators add for exactly this kind of investigation);
* :class:`AccessLoggingHandler` — wraps any handler and records every
  exchange, attributing clients via a configurable header;
* :func:`parse_log_line` — round-trips the format;
* :func:`feed_detector` — replays a log into a
  :class:`~repro.defense.detection.RangeAmpDetector`, turning the
  detector into an offline log-analysis tool.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.defense.detection import RangeAmpDetector
from repro.errors import ReproError
from repro.handler import HttpHandler
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse

#: Fixed timestamp, matching the simulator's fixed Date headers.
_FIXED_TIMESTAMP = "05/Jun/2020:08:00:00 +0000"


class AccessLogError(ReproError):
    """Malformed access-log line."""


@dataclass(frozen=True)
class AccessLogEntry:
    """One combined-format log entry (plus the Range header extension)."""

    client: str
    timestamp: str
    method: str
    target: str
    protocol: str
    status: int
    response_bytes: int
    referer: str
    user_agent: str
    range_header: str

    def to_line(self) -> str:
        """Serialize in combined format + trailing quoted Range."""
        return (
            f'{self.client} - - [{self.timestamp}] '
            f'"{self.method} {self.target} {self.protocol}" '
            f'{self.status} {self.response_bytes} '
            f'"{self.referer}" "{self.user_agent}" "{self.range_header}"'
        )


_LINE_RE = re.compile(
    r'^(?P<client>\S+) \S+ \S+ \[(?P<timestamp>[^\]]+)\] '
    r'"(?P<method>\S+) (?P<target>\S+) (?P<protocol>[^"]+)" '
    r'(?P<status>\d{3}) (?P<bytes>\d+|-) '
    r'"(?P<referer>[^"]*)" "(?P<agent>[^"]*)" "(?P<range>[^"]*)"$'
)


def parse_log_line(line: str) -> AccessLogEntry:
    """Parse one line produced by :meth:`AccessLogEntry.to_line`."""
    match = _LINE_RE.match(line.strip())
    if not match:
        raise AccessLogError(f"malformed access-log line: {line!r}")
    raw_bytes = match.group("bytes")
    return AccessLogEntry(
        client=match.group("client"),
        timestamp=match.group("timestamp"),
        method=match.group("method"),
        target=match.group("target"),
        protocol=match.group("protocol"),
        status=int(match.group("status")),
        response_bytes=0 if raw_bytes == "-" else int(raw_bytes),
        referer=match.group("referer"),
        user_agent=match.group("agent"),
        range_header=match.group("range"),
    )


class AccessLog:
    """An in-memory access log."""

    def __init__(self) -> None:
        self._entries: List[AccessLogEntry] = []

    def record(self, client: str, request: HttpRequest, response: HttpResponse) -> AccessLogEntry:
        entry = AccessLogEntry(
            client=client,
            timestamp=_FIXED_TIMESTAMP,
            method=request.method,
            target=request.target,
            protocol=request.version,
            status=response.status,
            response_bytes=len(response.body),
            referer=request.headers.get("Referer", "-"),
            user_agent=request.headers.get("User-Agent", "-"),
            range_header=request.headers.get("Range", "-"),
        )
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> List[AccessLogEntry]:
        return list(self._entries)

    def lines(self) -> List[str]:
        return [entry.to_line() for entry in self._entries]

    def total_bytes(self) -> int:
        """Response payload bytes across the log — the number an operator
        reconciles against their egress bill."""
        return sum(entry.response_bytes for entry in self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class AccessLoggingHandler(HttpHandler):
    """Wraps a handler, logging every exchange to an :class:`AccessLog`.

    The client identity comes from ``client_header`` (the address header
    a CDN adds on back-to-origin requests, e.g. ``X-Forwarded-For`` /
    ``True-Client-IP``); absent that, ``"-"`` is logged — which is
    itself part of the paper's point about origin-side visibility.
    """

    def __init__(
        self,
        inner: HttpHandler,
        log: Optional[AccessLog] = None,
        client_header: str = "X-Forwarded-For",
    ) -> None:
        self.inner = inner
        self.log = log if log is not None else AccessLog()
        self.client_header = client_header

    def handle(self, request: HttpRequest) -> HttpResponse:
        response = self.inner.handle(request)
        client = request.headers.get(self.client_header, "-")
        self.log.record(client, request, response)
        return response


def feed_detector(
    detector: RangeAmpDetector, entries: Iterable[AccessLogEntry]
) -> RangeAmpDetector:
    """Replay log entries into a detector (offline log analysis).

    Only the fields the detector inspects are reconstructed; returns the
    detector for chaining.
    """
    for entry in entries:
        headers = Headers([("Host", "origin")])
        if entry.range_header and entry.range_header != "-":
            headers.add("Range", entry.range_header)
        request = HttpRequest(
            method=entry.method, target=entry.target, headers=headers,
            version=entry.protocol,
        )
        detector.observe(entry.client, request)
    return detector
