"""Apache-like origin server.

Reproduces the behaviors of the paper's origin (Apache/2.4.18, default
configuration) that the attacks depend on:

* With range support **enabled** (default): valid single ranges get a
  single-part 206 with ``Content-Range``; valid disjoint multi-ranges get
  a ``multipart/byteranges`` 206; out-of-bounds ranges get a 416 with
  ``Content-Range: bytes */N``.
* The post-CVE-2011-3192 ("Apache Killer") guard: a multi-range request
  with overlapping ranges or more than ``max_ranges`` parts is answered
  with a plain 200 carrying the whole representation — Apache's actual
  fix downgrades abusive range sets to a full response.
* With range support **disabled** (how the OBR attacker configures the
  origin): the ``Range`` header is ignored, every request gets a 200 with
  the entire resource and no ``Accept-Ranges`` header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import RangeNotSatisfiableError, ResourceNotFoundError
from repro.faults.plan import FaultRule, current_faults
from repro.http.body import SyntheticBody
from repro.http.encoding import IDENTITY, accepts_encoding
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.multipart import MultipartByteranges
from repro.http.ranges import (
    ResolvedRange,
    format_content_range,
    format_unsatisfied_content_range,
    ranges_overlap,
    try_parse_range_header,
)
from repro.http.status import StatusCode
from repro.obs.tracer import current_tracer
from repro.origin.resource import Resource, ResourceStore

#: Fixed Date header: the simulation is deterministic, and a changing
#: Date would jitter the traffic accounting by a byte now and then.
_FIXED_DATE = "Fri, 05 Jun 2020 08:00:00 GMT"

#: Apache 2.4's effective cap on the number of ranges it will serve.
DEFAULT_MAX_RANGES = 200

#: Multipart boundary shaped like Apache's (13 hex digits).
_APACHE_BOUNDARY = "3d6b6a416f9b5"


@dataclass
class OriginStats:
    """Counters the experiments read back after a run."""

    requests: int = 0
    full_responses: int = 0
    partial_responses: int = 0
    multipart_responses: int = 0
    not_satisfiable: int = 0
    bytes_sent: int = 0


class OriginServer:
    """A synchronous origin server over a :class:`ResourceStore`."""

    def __init__(
        self,
        store: Optional[ResourceStore] = None,
        range_support: bool = True,
        server_header: str = "Apache/2.4.18 (Ubuntu)",
        max_ranges: int = DEFAULT_MAX_RANGES,
        reject_overlapping: bool = True,
    ) -> None:
        self.store = store if store is not None else ResourceStore()
        self.range_support = range_support
        self.server_header = server_header
        self.max_ranges = max_ranges
        self.reject_overlapping = reject_overlapping
        self.stats = OriginStats()

    # -- public API ---------------------------------------------------------

    def add_resource(self, resource: Resource) -> Resource:
        return self.store.add(resource)

    def add_synthetic_resource(
        self, path: str, size: int, content_type: Optional[str] = None
    ) -> Resource:
        return self.store.add_synthetic(path, size, content_type)

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Answer ``request`` (GET/HEAD; anything else is a 400)."""
        with current_tracer().span("origin.handle") as span:
            if span.recording:
                span.set(
                    method=request.method,
                    target=request.target,
                    range=request.headers.get("Range") or "",
                    range_support=self.range_support,
                )
            response = self._handle_traced(request)
            if span.recording:
                span.set(status=response.status, body_bytes=len(response.body))
            return response

    def _handle_traced(self, request: HttpRequest) -> HttpResponse:
        self.stats.requests += 1
        injector = current_faults()
        if injector is not None:
            fault = injector.origin_fault(request.path)
            if fault is not None:
                return self._finish(self._fault_response(fault))
        if request.method not in ("GET", "HEAD"):
            return self._finish(self._error(StatusCode.BAD_REQUEST))
        try:
            resource = self.store.get(request.path)
        except ResourceNotFoundError:
            return self._finish(self._error(StatusCode.NOT_FOUND))

        response = self._respond_for(resource, request)
        if request.method == "HEAD":
            response.body = response.body.slice(0, 0)
        return self._finish(response)

    # -- response construction ----------------------------------------------

    def _respond_for(self, resource: Resource, request: HttpRequest) -> HttpResponse:
        if not self.range_support:
            return self._full_response(resource, advertise_ranges=False)

        if request.method != "GET":
            # RFC 7233 §3.1: "A server MUST ignore a Range header field
            # received with a request method other than GET."
            return self._full_response(resource)

        spec = try_parse_range_header(request.range_header)
        if spec is None:
            # No Range header, or one we must ignore per RFC 7233 §3.1.
            encoded = self._encoded_response(resource, request)
            if encoded is not None:
                return encoded
            return self._full_response(resource)

        if not self._if_range_allows_partial(resource, request):
            # RFC 7233 §3.2: a failed If-Range validator downgrades the
            # range request to a full 200.
            return self._full_response(resource)

        try:
            resolved = spec.resolve(resource.size)
        except RangeNotSatisfiableError:
            self.stats.not_satisfiable += 1
            return self._not_satisfiable(resource)

        if len(resolved) == 1:
            return self._single_part(resource, resolved[0].start, resolved[0].end)

        if self._abusive_multirange(resolved):
            # Apache's CVE-2011-3192 fix: downgrade to a full response.
            return self._full_response(resource)

        return self._multipart(resource, resolved)

    def _abusive_multirange(self, resolved: List[ResolvedRange]) -> bool:
        if len(resolved) > self.max_ranges:
            return True
        return self.reject_overlapping and ranges_overlap(resolved)

    def _if_range_allows_partial(self, resource: Resource, request: HttpRequest) -> bool:
        """RFC 7233 §3.2: serve the range only when the If-Range
        validator (strong ETag or HTTP-date) matches the current
        representation; absent header means unconditional."""
        validator = request.headers.get("If-Range")
        if validator is None:
            return True
        validator = validator.strip()
        if validator.startswith('"') or validator.startswith('W/"'):
            # Weak validators are never a match for If-Range.
            return validator == resource.etag
        return validator == resource.last_modified

    def _base_headers(self, resource: Resource, advertise_ranges: bool = True) -> Headers:
        headers = Headers(
            [
                ("Date", _FIXED_DATE),
                ("Server", self.server_header),
                ("Last-Modified", resource.last_modified),
                ("ETag", resource.etag),
            ]
        )
        if self.range_support and advertise_ranges:
            headers.add("Accept-Ranges", "bytes")
        if resource.cache_control is not None:
            headers.add("Cache-Control", resource.cache_control)
        return headers

    def _full_response(self, resource: Resource, advertise_ranges: bool = True) -> HttpResponse:
        self.stats.full_responses += 1
        headers = self._base_headers(resource, advertise_ranges)
        headers.add("Content-Length", str(resource.size))
        headers.add("Content-Type", resource.content_type)
        return HttpResponse(StatusCode.OK, headers=headers, body=resource.content)

    def _encoded_response(self, resource: Resource, request: HttpRequest) -> Optional[HttpResponse]:
        """Proactive content negotiation (RFC 7231 §5.3.4) over the
        resource's pre-compressed variants.

        The origin serves the **smallest** acceptable non-identity
        variant — the egress-minimizing choice a CCFC attacker's origin
        makes (arXiv 2409.00712 §III).  Returns ``None`` when the
        resource has no variants, the request carries no
        ``Accept-Encoding``, or no non-identity variant is acceptable;
        the caller then falls back to the identity representation.
        """
        if not resource.encodings:
            return None
        accept = request.headers.get("Accept-Encoding")
        if accept is None:
            return None
        candidates = [
            (size, coding)
            for coding, size in resource.encodings.items()
            if coding.lower() != IDENTITY and accepts_encoding(accept, coding)
        ]
        if not candidates:
            return None
        size, coding = min(candidates)
        self.stats.full_responses += 1
        headers = self._base_headers(resource)
        headers.add("Content-Length", str(size))
        headers.add("Content-Type", resource.content_type)
        headers.add("Content-Encoding", coding)
        headers.add("Vary", "Accept-Encoding")
        return HttpResponse(StatusCode.OK, headers=headers, body=SyntheticBody(size))

    def _single_part(self, resource: Resource, start: int, end: int) -> HttpResponse:
        self.stats.partial_responses += 1
        headers = self._base_headers(resource)
        headers.add("Content-Length", str(end - start + 1))
        headers.add("Content-Range", format_content_range(start, end, resource.size))
        headers.add("Content-Type", resource.content_type)
        return HttpResponse(
            StatusCode.PARTIAL_CONTENT,
            headers=headers,
            body=resource.content.slice(start, end + 1),
        )

    def _multipart(self, resource: Resource, resolved: List[ResolvedRange]) -> HttpResponse:
        self.stats.multipart_responses += 1
        multipart = MultipartByteranges.build(
            resource_body=resource.content,
            ranges=resolved,
            content_type=resource.content_type,
            complete_length=resource.size,
            boundary=_APACHE_BOUNDARY,
        )
        body = multipart.to_body()
        headers = self._base_headers(resource)
        headers.add("Content-Length", str(len(body)))
        headers.add("Content-Type", multipart.content_type_header)
        return HttpResponse(StatusCode.PARTIAL_CONTENT, headers=headers, body=body)

    def _not_satisfiable(self, resource: Resource) -> HttpResponse:
        headers = self._base_headers(resource)
        headers.add("Content-Range", format_unsatisfied_content_range(resource.size))
        headers.add("Content-Length", "0")
        return HttpResponse(StatusCode.RANGE_NOT_SATISFIABLE, headers=headers)

    def _error(self, status: StatusCode) -> HttpResponse:
        body = f"{int(status)} {status.name}\n"
        headers = Headers(
            [
                ("Date", _FIXED_DATE),
                ("Server", self.server_header),
                ("Content-Length", str(len(body))),
                ("Content-Type", "text/plain"),
            ]
        )
        return HttpResponse(status, headers=headers, body=body)

    def _fault_response(self, fault: FaultRule) -> HttpResponse:
        response = self._error(StatusCode(fault.status))
        if fault.retry_after is not None:
            response.headers.add("Retry-After", str(fault.retry_after))
        return response

    def _finish(self, response: HttpResponse) -> HttpResponse:
        self.stats.bytes_sent += response.wire_size()
        return response
