"""The paper's primary contribution: RangeAmp attack construction,
execution, and measurement.

* :mod:`repro.core.deployment` — wires client → CDN chain → origin with
  traffic taps on every segment.
* :mod:`repro.core.cachebusting` — query-string cache busting (§II-A).
* :mod:`repro.core.amplification` — amplification-factor accounting.
* :mod:`repro.core.sbr` — the Small Byte Range attack (§IV-B), including
  each vendor's exploited range case from Table IV.
* :mod:`repro.core.obr` — the Overlapping Byte Ranges attack (§IV-C),
  including the max-n search against header limits (Table V).
* :mod:`repro.core.ccfc` — the CCFC compression-conversion attack
  (arXiv 2409.00712): edge rewrites Accept-Encoding upstream and ships
  decompressed bodies to identity-only clients.
* :mod:`repro.core.feasibility` — the paper's first experiment: probe a
  CDN with ABNF-generated range requests and classify its policies
  (Tables I–III).
* :mod:`repro.core.practical` — the paper's fourth experiment: sustained
  SBR floods against a bandwidth-limited origin (Fig 7).
"""

from __future__ import annotations

from repro.core.amplification import AmplificationReport
from repro.core.cachebusting import CacheBuster
from repro.core.ccfc import CcfcAttack, CcfcResult
from repro.core.deployment import CdnSpec, Client, Deployment, RecordingHandler
from repro.core.feasibility import (
    FeasibilityProbe,
    ForwardingObservation,
    ReplyObservation,
    VendorFeasibility,
)
from repro.core.obr import ObrAttack, ObrResult
from repro.core.practical import BandwidthAttackSimulation, BandwidthRunResult
from repro.core.sbr import SbrAttack, SbrResult, exploited_range_cases

__all__ = [
    "AmplificationReport",
    "BandwidthAttackSimulation",
    "BandwidthRunResult",
    "CacheBuster",
    "CcfcAttack",
    "CcfcResult",
    "CdnSpec",
    "Client",
    "Deployment",
    "FeasibilityProbe",
    "ForwardingObservation",
    "ObrAttack",
    "ObrResult",
    "RecordingHandler",
    "ReplyObservation",
    "SbrAttack",
    "SbrResult",
    "VendorFeasibility",
    "exploited_range_cases",
]
