"""Attack economics (paper §V-E, "a great monetary loss to the victims").

Most CDNs bill their customers by delivered traffic, so a RangeAmp
attacker does not just degrade a website — they run up its CDN bill and
its origin's egress bill.  This module turns attack measurements into
cost and time-to-exhaustion estimates:

* per-vendor **billing rates** (representative published per-GB prices
  from the paper's pricing references [17]–[21]; first-TB tiers, USD);
* :func:`estimate_sbr_campaign` — victim cost and origin-uplink
  saturation for a sustained SBR campaign;
* :func:`estimate_obr_campaign` — inter-CDN traffic burned per request
  stream for an OBR campaign.

All estimates derive from *measured* per-request traffic (a fresh attack
run), not hardcoded constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.obr import ObrAttack
from repro.core.sbr import SbrAttack

GB = 10 ** 9
MB = 1 << 20

#: Representative published traffic prices (USD per GB, first tier).
#: Shapes the cost estimates; override per call for current prices.
BILLING_USD_PER_GB = {
    "akamai": 0.085,
    "alibaba": 0.074,
    "azure": 0.087,
    "cdn77": 0.049,
    "cdnsun": 0.045,
    "cloudflare": 0.0,      # flat-rate plans: no per-GB metering
    "cloudfront": 0.085,
    "fastly": 0.12,
    "gcore": 0.08,
    "huawei": 0.077,
    "keycdn": 0.04,
    "stackpath": 0.0,       # flat-rate plans
    "tencent": 0.07,
}


@dataclass(frozen=True)
class CampaignEstimate:
    """Projected totals for a sustained attack campaign."""

    vendor: str
    attack: str
    requests_per_second: float
    duration_seconds: float
    #: Measured wire bytes one attack round moves on the victim segment.
    victim_bytes_per_request: int
    #: Measured wire bytes one attack round costs the attacker.
    attacker_bytes_per_request: int
    #: USD per GB used for the cost projection.
    rate_usd_per_gb: float

    @property
    def total_requests(self) -> float:
        return self.requests_per_second * self.duration_seconds

    @property
    def victim_bytes(self) -> float:
        return self.total_requests * self.victim_bytes_per_request

    @property
    def attacker_bytes(self) -> float:
        return self.total_requests * self.attacker_bytes_per_request

    @property
    def victim_cost_usd(self) -> float:
        """Traffic bill the victim accrues over the campaign."""
        return self.victim_bytes / GB * self.rate_usd_per_gb

    @property
    def victim_bandwidth_mbps(self) -> float:
        """Sustained victim-side bandwidth the campaign demands."""
        return self.requests_per_second * self.victim_bytes_per_request * 8 / 1e6

    @property
    def attacker_bandwidth_mbps(self) -> float:
        return self.requests_per_second * self.attacker_bytes_per_request * 8 / 1e6

    def saturating_rate(self, uplink_mbps: float) -> float:
        """Requests/second needed to pin a victim uplink of
        ``uplink_mbps`` (paper §V-D found ~12-14 req/s for 1000 Mbps
        with a 10 MB resource)."""
        per_request_mbit = self.victim_bytes_per_request * 8 / 1e6
        return uplink_mbps / per_request_mbit


def estimate_sbr_campaign(
    vendor: str,
    resource_size: int = 10 * MB,
    requests_per_second: float = 10.0,
    duration_seconds: float = 3600.0,
    rate_usd_per_gb: Optional[float] = None,
) -> CampaignEstimate:
    """Project a sustained SBR campaign from one measured round.

    The victim segment is cdn-origin (the origin's outgoing traffic —
    and, on traffic-billed CDNs, the customer's bill).
    """
    measured = SbrAttack(vendor, resource_size=resource_size).run()
    rate = (
        rate_usd_per_gb
        if rate_usd_per_gb is not None
        else BILLING_USD_PER_GB.get(vendor, 0.08)
    )
    return CampaignEstimate(
        vendor=vendor,
        attack="sbr",
        requests_per_second=requests_per_second,
        duration_seconds=duration_seconds,
        victim_bytes_per_request=measured.origin_traffic,
        attacker_bytes_per_request=measured.client_traffic,
        rate_usd_per_gb=rate,
    )


def estimate_obr_campaign(
    fcdn: str,
    bcdn: str,
    overlap_count: Optional[int] = None,
    requests_per_second: float = 10.0,
    duration_seconds: float = 3600.0,
    rate_usd_per_gb: Optional[float] = None,
) -> CampaignEstimate:
    """Project a sustained OBR campaign from one measured request.

    The victim segment is fcdn-bcdn; the attacker aborts early, so the
    attacker-side cost is the capped client delivery.
    """
    measured = ObrAttack(fcdn, bcdn).run(overlap_count=overlap_count)
    rate = (
        rate_usd_per_gb
        if rate_usd_per_gb is not None
        else BILLING_USD_PER_GB.get(bcdn, 0.08)
    )
    return CampaignEstimate(
        vendor=f"{fcdn}->{bcdn}",
        attack="obr",
        requests_per_second=requests_per_second,
        duration_seconds=duration_seconds,
        victim_bytes_per_request=measured.fcdn_bcdn_traffic,
        attacker_bytes_per_request=measured.client_traffic,
        rate_usd_per_gb=rate,
    )
