"""Exact calibrated byte accounting — the fast-path engine core.

Every measurement in this library is deterministic integer arithmetic
over message sizes, so within a *regime* — a size interval where no
vendor behavior switches and no embedded decimal digit count changes —
each field of a result (segment byte counts, connection counts,
statuses) is an **affine function** of the swept variable:

* SBR sweeps one ``resource_size``.  The default overhead model is
  ``NullOverheadModel`` (wire == payload), so every recorded field is
  affine in the size directly.  :class:`SbrFastEngine` calibrates the
  affine coefficients from a handful of real simulation runs at the
  regime's edges, verifies collinearity, then answers every other size
  in the regime with flat-array arithmetic instead of a per-message
  object graph.
* OBR sweeps the overlap count ``n``.  The attack's ranges are the
  constant-width ``0-`` spec, so request and multipart payload sizes are
  affine in ``n``; the TCP framing model is then applied analytically.
  :class:`ObrFastEngine` calibrates at a few small ``n`` (milliseconds)
  and evaluates at the thousands-deep Table V maximum without building
  the multipart at all.

Both engines refuse — raising :class:`ExactModelError` — whenever a
verification probe breaks the affine model, a segment's connection
structure is not invertible, or the regime is too narrow to calibrate.
The caller (``repro.runner.fastpath``) falls back to the wire-level
simulation, so a refusal costs speed, never correctness.  Flat arrays
use the stdlib ``array`` module: the environment pins the dependency
closure, and signed 64-bit lanes are exact for every byte count here.

The differential harness (``tests/analysis/test_fastpath_equivalence``)
pins result equality against the simulation for every Table IV and
Table V cell and for hypothesis-random cells.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cdn.vendors import all_vendor_names
from repro.cdn.vendors.azure import DEFAULT_ABORT_SLOP, EIGHT_MB, WINDOW_LAST
from repro.cdn.vendors.cloudfront import MULTI_RANGE_WINDOW_CAP
from repro.core.amplification import AmplificationReport
from repro.core.ccfc import CcfcAttack, CcfcResult
from repro.core.obr import ObrAttack, ObrResult
from repro.core.sbr import SbrAttack, SbrResult
from repro.errors import ReproError
from repro.netsim.overhead import OverheadModel
from repro.netsim.tap import SegmentStats

MB = 1 << 20

#: Fields of one :class:`SegmentStats`, in vector order.
SEGMENT_FIELDS = (
    "connection_count",
    "exchange_count",
    "request_bytes",
    "response_bytes_sent",
    "response_bytes_delivered",
)


class ExactModelError(ReproError):
    """The calibrated model cannot exactly answer this cell — simulate."""


# ---------------------------------------------------------------------------
# Regimes: size intervals where affine extrapolation is admissible
# ---------------------------------------------------------------------------

#: Sizes at which some vendor's documented behavior switches (exploited
#: case tables, fetch windows, delivery caps).  A regime never spans one
#: of these, so calibration probes and the answered size always sit on
#: the same side of every switch.
#: Sizes at which a new behavior interval *starts* (the first size on
#: the upper side of a documented vendor switch).  A regime never spans
#: one, so calibration probes and the answered size always sit on the
#: same side of every switch.
_BEHAVIOR_STARTS: Tuple[int, ...] = tuple(
    sorted(
        {
            8 * MB + 1,  # Azure's exploited-case switch (size <= 8 MB)
            # Azure's delivery cut: min(sent, cap) crosses a header block
            # above the cap.  The band between these two starts brackets
            # the crossing; collinearity verification fails inside it and
            # those sizes fall back to the simulation.
            EIGHT_MB + DEFAULT_ABORT_SLOP + 1,
            EIGHT_MB + DEFAULT_ABORT_SLOP + 8192,
            WINDOW_LAST + 2,  # Azure's expansion window stops widening
            9437185,  # CloudFront's second exploited range becomes satisfiable
            MULTI_RANGE_WINDOW_CAP + 1,  # CloudFront's window stops widening
            10 * MB,  # Huawei's exploited-case switch (size < 10 MB)
        }
    )
)


def _digit_signature(size: int) -> Tuple[int, int]:
    """Decimal widths embedded in headers: ``str(size)`` (Content-Length,
    Content-Range totals) and ``str(size - 1)`` (last-byte positions)."""
    return (len(str(size)), len(str(size - 1)))


def regime_interval(size: int) -> Tuple[int, int]:
    """The maximal ``[lo, hi]`` around ``size`` with constant behavior
    bucket and constant digit signature."""
    if size < 2:
        return (size, size)
    digits, last_digits = _digit_signature(size)
    # len(str(s)) == digits        <=>  10^(digits-1) <= s <= 10^digits - 1
    # len(str(s-1)) == last_digits <=>  10^(last_digits-1) + 1 <= s <= 10^last_digits
    lo = max(10 ** (digits - 1), 10 ** (last_digits - 1) + 1, 2)
    hi = min(10**digits - 1, 10**last_digits)
    # Behavior buckets are the intervals [start, next_start - 1]: clamp
    # to the bucket containing ``size``.
    bucket = bisect_right(_BEHAVIOR_STARTS, size)
    if bucket > 0:
        lo = max(lo, _BEHAVIOR_STARTS[bucket - 1])
    if bucket < len(_BEHAVIOR_STARTS):
        hi = min(hi, _BEHAVIOR_STARTS[bucket] - 1)
    return (lo, hi)


# ---------------------------------------------------------------------------
# Affine fitting over flat integer arrays
# ---------------------------------------------------------------------------


def _fit_affine(
    points: Sequence[Tuple[int, Sequence[int]]],
) -> Tuple[int, "array[int]", "array[int]"]:
    """Fit ``v(x) = base + slope * (x - x0)`` per vector lane, exactly.

    ``points`` maps probe positions to equal-length integer vectors; the
    first two positions determine the coefficients and every remaining
    point must verify them, else :class:`ExactModelError`.
    """
    if len(points) < 2:
        raise ExactModelError("affine fit needs at least two probes")
    (x0, v0), (x1, v1) = points[0], points[1]
    if x1 == x0:
        raise ExactModelError("degenerate probe spacing")
    base = array("q", v0)
    slope = array("q", (0 for _ in v0))
    for lane, (a, b) in enumerate(zip(v0, v1)):
        delta, remainder = divmod(b - a, x1 - x0)
        if remainder:
            raise ExactModelError(f"lane {lane} has a non-integer slope")
        slope[lane] = delta
    for x, vec in points[2:]:
        for lane, value in enumerate(vec):
            if value != base[lane] + slope[lane] * (x - x0):
                raise ExactModelError(
                    f"lane {lane} breaks the affine model at probe {x}"
                )
    return (x0, base, slope)


def _eval_affine(
    x0: int, base: "array[int]", slope: "array[int]", x: int
) -> "array[int]":
    """One flat-array affine evaluation (the vectorized inner loop)."""
    dx = x - x0
    return array("q", (b + s * dx for b, s in zip(base, slope)))


# ---------------------------------------------------------------------------
# SBR: vendor x resource-size cells
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SbrShape:
    """Everything about an :class:`SbrResult` that must be
    size-invariant across a regime for the affine model to apply."""

    vendor: str
    rounds: int
    statuses: Tuple[int, ...]
    attacker_segment: str
    victim_segment: str
    segment_names: Tuple[str, ...]


def _flatten_sbr(result: SbrResult) -> Tuple[_SbrShape, List[int]]:
    shape = _SbrShape(
        vendor=result.vendor,
        rounds=result.rounds,
        statuses=result.statuses,
        attacker_segment=result.report.attacker_segment,
        victim_segment=result.report.victim_segment,
        segment_names=tuple(result.report.segments),
    )
    vector = [
        result.client_traffic,
        result.origin_traffic,
        result.report.attacker_bytes,
        result.report.victim_bytes,
    ]
    for name in shape.segment_names:
        stats = result.report.segments[name]
        vector.extend(getattr(stats, field) for field in SEGMENT_FIELDS)
    return (shape, vector)


def _rebuild_sbr(shape: _SbrShape, size: int, vector: Sequence[int]) -> SbrResult:
    segments: Dict[str, SegmentStats] = {}
    offset = 4
    for name in shape.segment_names:
        values = vector[offset : offset + len(SEGMENT_FIELDS)]
        segments[name] = SegmentStats(
            segment=name, **dict(zip(SEGMENT_FIELDS, values))
        )
        offset += len(SEGMENT_FIELDS)
    report = AmplificationReport(
        attacker_bytes=vector[2],
        victim_bytes=vector[3],
        attacker_segment=shape.attacker_segment,
        victim_segment=shape.victim_segment,
        segments=segments,
    )
    return SbrResult(
        vendor=shape.vendor,
        resource_size=size,
        rounds=shape.rounds,
        client_traffic=vector[0],
        origin_traffic=vector[1],
        statuses=shape.statuses,
        report=report,
    )


@dataclass(frozen=True)
class SbrRegimeModel:
    """Calibrated affine model for one (vendor, rounds) x regime."""

    shape: _SbrShape
    lo: int
    hi: int
    x0: int
    base: "array[int]"
    slope: "array[int]"

    def evaluate(self, size: int) -> SbrResult:
        if not (self.lo <= size <= self.hi):
            raise ExactModelError(f"size {size} outside regime [{self.lo}, {self.hi}]")
        return _rebuild_sbr(self.shape, size, _eval_affine(self.x0, self.base, self.slope, size))

    def evaluate_many(self, sizes: Sequence[int]) -> List[SbrResult]:
        return [self.evaluate(size) for size in sizes]


class SbrFastEngine:
    """Answers SBR cells from calibrated regime models.

    A regime is calibrated once (four wire-level runs at its edges) and
    then serves every size inside it; misses and model refusals raise
    :class:`ExactModelError` so callers can simulate instead.
    """

    def __init__(self) -> None:
        self._models: Dict[Tuple[str, int, int, int], SbrRegimeModel] = {}
        self.calibration_runs = 0

    def _calibrate(self, vendor: str, rounds: int, lo: int, hi: int) -> SbrRegimeModel:
        # Probes at both regime edges: the fields here compose affine
        # pieces through min/max (delivery caps, fetch windows), so equal
        # edge slopes plus consistent endpoints pin the interior.
        probe_sizes = sorted(
            {probe for probe in (lo, lo + 1, hi - 1, hi) if lo <= probe <= hi}
        )
        shape: Optional[_SbrShape] = None
        points: List[Tuple[int, Sequence[int]]] = []
        for size in probe_sizes:
            result = SbrAttack(vendor, resource_size=size).run(rounds=rounds)
            self.calibration_runs += 1
            probe_shape, vector = _flatten_sbr(result)
            if shape is None:
                shape = probe_shape
            elif probe_shape != shape:
                raise ExactModelError("result shape varies across the regime")
            points.append((size, vector))
        assert shape is not None
        if len(points) == 1:
            # A single-size regime: the probe *is* the answer.
            x0, vector = points[0][0], points[0][1]
            base = array("q", vector)
            slope = array("q", (0 for _ in vector))
        else:
            x0, base, slope = _fit_affine(points)
        return SbrRegimeModel(shape=shape, lo=lo, hi=hi, x0=x0, base=base, slope=slope)

    def measure(self, vendor: str, resource_size: int, rounds: int = 1) -> SbrResult:
        """An :class:`SbrResult` equal to ``SbrAttack(...).run(rounds)``."""
        if vendor not in all_vendor_names():
            raise ExactModelError(f"unknown vendor {vendor!r}")
        if resource_size < 2 or rounds < 1:
            raise ExactModelError("degenerate cell")
        lo, hi = regime_interval(resource_size)
        key = (vendor, rounds, lo, hi)
        model = self._models.get(key)
        if model is None:
            model = self._calibrate(vendor, rounds, lo, hi)
            self._models[key] = model
        return model.evaluate(resource_size)

    def measure_many(
        self, vendor: str, sizes: Sequence[int], rounds: int = 1
    ) -> List[SbrResult]:
        """Batch evaluation: one model lookup per regime, flat-array math
        per size."""
        return [self.measure(vendor, size, rounds) for size in sizes]


# ---------------------------------------------------------------------------
# OBR: fcdn x bcdn cascade cells, swept over the overlap count n
# ---------------------------------------------------------------------------

#: Calibration overlap counts.  2 and 3 fit the affine payloads; 4 and 5
#: verify them; 9 pushes the multipart body across a decimal-digit
#: boundary so an unpadded Content-Length (which would break affinity at
#: large n) is caught here instead of silently extrapolated.
_OBR_PROBES = (2, 3, 4, 5, 9)

#: Delivered-bytes modes a segment can calibrate into.
_UNCAPPED = 0
_CAPPED = 1


def _invert_framed(model: OverheadModel, framed: int) -> int:
    """The unique payload ``x`` with ``framed_size(x) == framed``.

    ``framed_size`` is strictly increasing for every model here, so a
    binary search either finds the exact preimage or proves the recorded
    value was not a single framed payload."""
    lo, hi = 0, framed
    while lo < hi:
        mid = (lo + hi) // 2
        if model.framed_size(mid) < framed:
            lo = mid + 1
        else:
            hi = mid
    if model.framed_size(lo) != framed:
        raise ExactModelError(f"no payload frames to {framed} bytes")
    return lo


@dataclass(frozen=True)
class _ObrSegmentModel:
    """Per-segment affine payload model (in the overlap count n)."""

    request_x0: int
    request_base: int
    request_slope: int
    response_x0: int
    response_base: int
    response_slope: int
    delivered_mode: int
    delivered_cap: int


@dataclass(frozen=True)
class ObrCascadeModel:
    """Calibrated exact model for one FCDN x BCDN cascade."""

    fcdn: str
    bcdn: str
    resource_size: int
    status: int
    attacker_segment: str
    victim_segment: str
    segment_names: Tuple[str, ...]
    segments: Mapping[str, _ObrSegmentModel]
    range_value_x0: int
    range_value_base: int
    range_value_slope: int
    overhead: OverheadModel
    #: Largest n the affine model was verified at; evaluation beyond it
    #: is still exact (the harness pins Table V), but flag the intent.
    calibrated_to: int

    def evaluate(self, overlap_count: int) -> ObrResult:
        if overlap_count < 2:
            raise ExactModelError("model calibrated for n >= 2")
        n = overlap_count
        setup = self.overhead.connection_setup_bytes()
        stats: Dict[str, SegmentStats] = {}
        for name in self.segment_names:
            seg = self.segments[name]
            request = self.overhead.framed_size(
                seg.request_base + seg.request_slope * (n - seg.request_x0)
            )
            sent = (
                self.overhead.framed_size(
                    seg.response_base + seg.response_slope * (n - seg.response_x0)
                )
                + setup
            )
            if seg.delivered_mode == _UNCAPPED:
                delivered = sent
            else:
                if sent < seg.delivered_cap:
                    raise ExactModelError(
                        f"{name}: sent bytes fell below the calibrated cap"
                    )
                delivered = seg.delivered_cap
            stats[name] = SegmentStats(
                segment=name,
                connection_count=1,
                exchange_count=1,
                request_bytes=request,
                response_bytes_sent=sent,
                response_bytes_delivered=delivered,
            )
        report = AmplificationReport(
            attacker_bytes=stats[self.attacker_segment].response_bytes_delivered,
            victim_bytes=stats[self.victim_segment].response_bytes_delivered,
            attacker_segment=self.attacker_segment,
            victim_segment=self.victim_segment,
            segments=stats,
        )
        from repro.netsim.tap import CLIENT_CDN

        return ObrResult(
            fcdn=self.fcdn,
            bcdn=self.bcdn,
            resource_size=self.resource_size,
            overlap_count=n,
            range_value_size=self.range_value_base
            + self.range_value_slope * (n - self.range_value_x0),
            bcdn_origin_traffic=report.attacker_bytes,
            fcdn_bcdn_traffic=report.victim_bytes,
            client_traffic=stats[CLIENT_CDN].response_bytes_delivered,
            status=self.status,
            report=report,
        )


class ObrFastEngine:
    """Answers OBR cascade measurements from calibrated models.

    Calibration runs the real attack at a few small overlap counts
    (milliseconds — tiny multiparts), decomposes every recorded wire
    size back into its payload through the framing model, fits the
    affine payload laws, and verifies them.  Evaluation at the Table V
    maxima then never builds a message object."""

    def __init__(self) -> None:
        self._models: Dict[Tuple[str, str, int, Optional[int]], ObrCascadeModel] = {}
        self.calibration_runs = 0

    def _calibrate(
        self, fcdn: str, bcdn: str, resource_size: int, abort_after: Optional[int]
    ) -> ObrCascadeModel:
        attack = ObrAttack(
            fcdn, bcdn, resource_size=resource_size, client_abort_after=abort_after
        )
        overhead = attack.overhead
        setup = overhead.connection_setup_bytes()
        runs: List[ObrResult] = []
        for n in _OBR_PROBES:
            runs.append(attack.run(overlap_count=n))
            self.calibration_runs += 1

        first = runs[0]
        segment_names = tuple(first.report.segments)
        for run in runs:
            if run.status != first.status:
                raise ExactModelError("status varies across calibration probes")
            if tuple(run.report.segments) != segment_names:
                raise ExactModelError("segment set varies across calibration probes")
            for name in segment_names:
                stats = run.report.segments[name]
                if stats.connection_count != 1 or stats.exchange_count != 1:
                    raise ExactModelError(
                        f"{name}: framing is only invertible for single-exchange "
                        "segments"
                    )

        range_x0, range_base, range_slope = _fit_affine(
            [(n, [run.range_value_size]) for n, run in zip(_OBR_PROBES, runs)]
        )

        segments: Dict[str, _ObrSegmentModel] = {}
        for name in segment_names:
            request_points: List[Tuple[int, Sequence[int]]] = []
            response_points: List[Tuple[int, Sequence[int]]] = []
            delivered_values: List[int] = []
            sent_values: List[int] = []
            for n, run in zip(_OBR_PROBES, runs):
                stats = run.report.segments[name]
                request_points.append(
                    (n, [_invert_framed(overhead, stats.request_bytes)])
                )
                response_points.append(
                    (
                        n,
                        [_invert_framed(overhead, stats.response_bytes_sent - setup)],
                    )
                )
                delivered_values.append(stats.response_bytes_delivered)
                sent_values.append(stats.response_bytes_sent)
            request_x0, request_base, request_slope = _fit_affine(request_points)
            response_x0, response_base, response_slope = _fit_affine(response_points)
            if delivered_values == sent_values:
                mode, cap = _UNCAPPED, 0
            elif len(set(delivered_values)) == 1 and all(
                sent >= delivered_values[0] for sent in sent_values
            ):
                mode, cap = _CAPPED, delivered_values[0]
            else:
                raise ExactModelError(f"{name}: unrecognized delivery-cap pattern")
            segments[name] = _ObrSegmentModel(
                request_x0=request_x0,
                request_base=request_base[0],
                request_slope=request_slope[0],
                response_x0=response_x0,
                response_base=response_base[0],
                response_slope=response_slope[0],
                delivered_mode=mode,
                delivered_cap=cap,
            )

        return ObrCascadeModel(
            fcdn=fcdn,
            bcdn=bcdn,
            resource_size=resource_size,
            status=first.status,
            attacker_segment=first.report.attacker_segment,
            victim_segment=first.report.victim_segment,
            segment_names=segment_names,
            segments=segments,
            range_value_x0=range_x0,
            range_value_base=range_base[0],
            range_value_slope=range_slope[0],
            overhead=overhead,
            calibrated_to=max(_OBR_PROBES),
        )

    def model_for(
        self,
        fcdn: str,
        bcdn: str,
        resource_size: int = 1024,
        client_abort_after: Optional[int] = 2048,
    ) -> ObrCascadeModel:
        key = (fcdn, bcdn, resource_size, client_abort_after)
        model = self._models.get(key)
        if model is None:
            model = self._calibrate(fcdn, bcdn, resource_size, client_abort_after)
            self._models[key] = model
        return model

    def measure(
        self,
        fcdn: str,
        bcdn: str,
        resource_size: int = 1024,
        overlap_count: Optional[int] = None,
    ) -> ObrResult:
        """An :class:`ObrResult` equal to ``ObrAttack(...).run(overlap_count)``.

        ``overlap_count=None`` resolves the Table V maximum through
        :func:`repro.analysis.bounds.static_max_n`, which the simulated
        probe search agrees with exactly (pinned by the cross-check and
        differential suites)."""
        from repro.analysis.bounds import static_max_n

        n = overlap_count
        if n is None:
            n = static_max_n(fcdn, bcdn, resource_size=resource_size)
        if n < 1:
            # Mirror ObrAttack.run's refusal for non-exploitable cascades.
            raise ExactModelError(f"{fcdn} -> {bcdn} admits no overlapping ranges")
        return self.model_for(fcdn, bcdn, resource_size).evaluate(n)


# ---------------------------------------------------------------------------
# CCFC: vendor x resource-size cells (compression-conversion)
# ---------------------------------------------------------------------------


class CcfcFastEngine:
    """Answers CCFC cells from the exact closed-form mirror.

    The CCFC attack is a single plain GET per round — no range algebra,
    no multipart assembly — so :meth:`CcfcAttack.mirror` replays the
    byte-defining code paths directly without building the connection
    graph, and the answer is exact by construction (pinned by the
    differential suite).  There is nothing to calibrate; refusals raise
    :class:`ExactModelError` so callers can simulate instead.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, int, int], CcfcResult] = {}
        #: Kept for parity with the calibrating engines' stats surface.
        self.calibration_runs = 0

    def measure(
        self, vendor: str, resource_size: int, rounds: int = 1
    ) -> CcfcResult:
        """A :class:`CcfcResult` equal to ``CcfcAttack(...).run(rounds)``."""
        if vendor not in all_vendor_names():
            raise ExactModelError(f"unknown vendor {vendor!r}")
        if resource_size < 1 or rounds < 1:
            raise ExactModelError("degenerate cell")
        key = (vendor, resource_size, rounds)
        cached = self._cache.get(key)
        if cached is None:
            try:
                cached = CcfcAttack(vendor, resource_size=resource_size).mirror(
                    rounds=rounds
                )
            except ReproError as exc:
                raise ExactModelError(f"CCFC mirror refused: {exc}") from exc
            self._cache[key] = cached
        return cached


__all__ = [
    "CcfcFastEngine",
    "ExactModelError",
    "ObrCascadeModel",
    "ObrFastEngine",
    "SbrFastEngine",
    "SbrRegimeModel",
    "regime_interval",
]
