"""The prior-art connection-drop attack, for comparison (paper §VIII).

Triukose, Al-Qudah & Rabinovich (ESORICS 2009) showed a client could
exhaust an origin's bandwidth by requesting a large resource through a
CDN and immediately dropping the front-end connection: the CDN's
back-end fetch would continue and complete.  The RangeAmp paper
re-evaluated this attack and found that **most CDNs now defend against
it** — they break the back-to-origin connection when the client
connection is abnormally cut — but that this defense is useless against
RangeAmp: an SBR request *completes normally* (the attacker receives its
one byte), so there is no abort to react to.

This module reproduces that comparison.  Timing is outside the
synchronous simulator, so the abort race is modeled explicitly: when the
vendor breaks its back-end on client abort, the origin only ships the
bytes already in flight (``inflight_bytes``, default 64 KB of TCP
buffers); when the vendor maintains the back-end (CDN77, CDNsun per
§IV-C), the full resource is shipped.  The comparison function then runs
the SBR attack against the *same* vendor to show the defense being
bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdn.vendors import create_profile
from repro.core.deployment import CdnSpec, Deployment
from repro.core.sbr import SbrAttack
from repro.netsim.tap import CDN_ORIGIN
from repro.origin.server import OriginServer

MB = 1 << 20

#: Bytes assumed already committed to the wire when the CDN reacts to
#: the client abort (TCP buffers + reaction delay).
DEFAULT_INFLIGHT_BYTES = 64 * 1024


@dataclass(frozen=True)
class ConnectionDropResult:
    """Outcome of one connection-drop attack round."""

    vendor: str
    resource_size: int
    #: Whether this vendor keeps the back-end fetch alive on client abort.
    backend_maintained: bool
    #: Response bytes the client paid for before aborting.
    client_traffic: int
    #: Response bytes the origin actually shipped.
    origin_traffic: int

    @property
    def amplification(self) -> float:
        if self.client_traffic <= 0:
            return 0.0
        return self.origin_traffic / self.client_traffic

    @property
    def defended(self) -> bool:
        """True when the CDN's abort defense capped the origin traffic."""
        return self.origin_traffic < self.resource_size


class ConnectionDropAttack:
    """Run the ESORICS'09 connection-drop attack against one vendor."""

    def __init__(
        self,
        vendor: str,
        resource_size: int = 10 * MB,
        resource_path: str = "/target.bin",
        abort_after: int = 1500,
        inflight_bytes: int = DEFAULT_INFLIGHT_BYTES,
    ) -> None:
        self.vendor = vendor
        self.resource_size = resource_size
        self.resource_path = resource_path
        self.abort_after = abort_after
        self.inflight_bytes = inflight_bytes

    def run(self) -> ConnectionDropResult:
        profile = create_profile(self.vendor)
        origin = OriginServer()
        origin.add_synthetic_resource(self.resource_path, self.resource_size)
        deployment = Deployment.single(CdnSpec(profile=profile), origin)
        client = deployment.client()

        # Plain GET of the large resource, client connection dropped
        # almost immediately.
        result = client.get(f"{self.resource_path}?cb=0", abort_after=self.abort_after)
        raw_origin = deployment.response_traffic(CDN_ORIGIN)

        if profile.maintains_backend_on_client_abort:
            origin_traffic = raw_origin
        else:
            # The CDN noticed the abort and broke the back-end fetch:
            # only headers plus in-flight payload crossed the wire.
            header_overhead = min(raw_origin, 1024)
            origin_traffic = min(raw_origin, header_overhead + self.inflight_bytes)

        return ConnectionDropResult(
            vendor=self.vendor,
            resource_size=self.resource_size,
            backend_maintained=profile.maintains_backend_on_client_abort,
            client_traffic=result.received_bytes,
            origin_traffic=origin_traffic,
        )


@dataclass(frozen=True)
class DefenseComparison:
    """Connection-drop vs SBR against the same vendor (the §VIII point)."""

    vendor: str
    connection_drop: ConnectionDropResult
    sbr_amplification: float

    @property
    def defense_bypassed(self) -> bool:
        """True when the abort defense works but SBR still amplifies —
        the paper's argument that RangeAmp nullifies the old defense."""
        return self.connection_drop.defended and self.sbr_amplification > 100


def compare_with_sbr(
    vendor: str, resource_size: int = 10 * MB
) -> DefenseComparison:
    """Run both attacks against ``vendor`` and package the comparison."""
    drop = ConnectionDropAttack(vendor, resource_size=resource_size).run()
    sbr = SbrAttack(vendor, resource_size=resource_size).run()
    return DefenseComparison(
        vendor=vendor,
        connection_drop=drop,
        sbr_amplification=sbr.amplification,
    )
