"""The Overlapping Byte Ranges (OBR) attack (paper §IV-C, §V-C).

Two CDNs are cascaded: the attacker configures the front CDN's origin to
be an ingress node of the back CDN, and the back CDN's origin to be a
server where range support is disabled.  A multi-range request with
``n`` overlapping ``0-`` ranges is forwarded *unchanged* by the FCDN
(Laziness); the BCDN fetches the 200 full-body response from the origin
and expands it into an ``n``-part ``multipart/byteranges`` response — up
to ``n`` times the resource size on the fcdn–bcdn link.

``n`` is bounded by the header limits of both CDNs on the path;
:meth:`ObrAttack.find_max_n` searches the boundary the way the paper
did — by probing which requests survive end-to-end.

Traffic accounting uses a TCP/IP framing model by default: the paper's
Table V numbers come from packet captures of short connections, where
handshake and segment overhead are a visible fraction of the ~1.7 KB
bcdn–origin responses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.core.amplification import AmplificationReport
from repro.core.deployment import CdnSpec, Deployment
from repro.cdn.vendors import OBR_BACKENDS, OBR_FRONTENDS
from repro.cdn.vendors.base import VendorConfig
from repro.errors import ConfigurationError
from repro.http.grammar import overlapping_open_ranges_value
from repro.http.status import StatusCode
from repro.netsim.overhead import OverheadModel, TcpOverheadModel
from repro.netsim.tap import BCDN_ORIGIN, CLIENT_CDN, FCDN_BCDN
from repro.obs.tracer import current_tracer
from repro.origin.server import OriginServer

if TYPE_CHECKING:
    from repro.cdn.vendors.base import VendorProfile
    from repro.runner.grid import ExperimentGrid


def exploited_fcdn_config(fcdn: str) -> Optional[VendorConfig]:
    """The front-CDN configuration the Table V setup uses.

    Cloudflare forwards multi-range requests unchanged only when the
    target path is configured *Bypass* (Table II); every other front end
    runs its default configuration.
    """
    if fcdn == "cloudflare":
        return VendorConfig(bypass_cache=True)
    return None


def exploited_leading_spec(fcdn: str) -> Optional[str]:
    """Table V column 3: the first spec of the exploited multi-range.

    CDN77 deletes Range headers whose first range starts below byte 1024,
    so the attack leads with a suffix spec; CDNsun deletes when the first
    range is anchored at 0, so it leads with ``1-``.  Cloudflare and
    StackPath take plain ``0-``.
    """
    if fcdn == "cdn77":
        return "-1024"
    if fcdn == "cdnsun":
        return "1-"
    return None


@dataclass(frozen=True)
class ObrResult:
    """Outcome of one OBR measurement."""

    fcdn: str
    bcdn: str
    resource_size: int
    overlap_count: int
    range_value_size: int
    #: Response traffic origin → BCDN (bytes).
    bcdn_origin_traffic: int
    #: Response traffic BCDN → FCDN (bytes) — the victim link.
    fcdn_bcdn_traffic: int
    #: Response bytes the aborting attacker actually received.
    client_traffic: int
    status: int
    report: AmplificationReport

    @property
    def amplification(self) -> float:
        return self.report.factor


class ObrAttack:
    """Run the OBR attack through one FCDN × BCDN combination."""

    def __init__(
        self,
        fcdn: str,
        bcdn: str,
        resource_size: int = 1024,
        resource_path: str = "/1KB.bin",
        overhead: Optional[OverheadModel] = None,
        host: str = "victim.example",
        client_abort_after: Optional[int] = 2048,
        fcdn_profile_factory: Optional[Callable[[], "VendorProfile"]] = None,
        bcdn_profile_factory: Optional[Callable[[], "VendorProfile"]] = None,
    ) -> None:
        if fcdn == bcdn:
            raise ConfigurationError(
                "a CDN is not cascaded with itself (paper Table V excludes it)"
            )
        self.fcdn = fcdn
        self.bcdn = bcdn
        self.resource_size = resource_size
        self.resource_path = resource_path
        # Capture-like accounting by default; see module docstring.
        self.overhead = overhead if overhead is not None else TcpOverheadModel()
        self.host = host
        self.client_abort_after = client_abort_after
        # Mitigated-profile substitution on either side of the cascade
        # (fresh instance per deployment; profiles are stateful).
        self.fcdn_profile_factory = fcdn_profile_factory
        self.bcdn_profile_factory = bcdn_profile_factory

    # -- deployment -----------------------------------------------------------

    def build_deployment(self) -> Deployment:
        # The attacker disables range support on their origin so the BCDN
        # receives a full 200 and builds the multipart itself.
        origin = OriginServer(range_support=False)
        origin.add_synthetic_resource(self.resource_path, self.resource_size)
        if self.fcdn_profile_factory is not None:
            fcdn_spec = CdnSpec(
                profile=self.fcdn_profile_factory(),
                config=self._fcdn_config(),
            )
        else:
            fcdn_spec = CdnSpec(vendor=self.fcdn, config=self._fcdn_config())
        if self.bcdn_profile_factory is not None:
            bcdn_spec = CdnSpec(profile=self.bcdn_profile_factory())
        else:
            bcdn_spec = CdnSpec(vendor=self.bcdn)
        return Deployment.cascade(fcdn_spec, bcdn_spec, origin, overhead=self.overhead)

    def _fcdn_config(self) -> Optional[VendorConfig]:
        return exploited_fcdn_config(self.fcdn)

    def range_value(self, overlap_count: int) -> str:
        return overlapping_open_ranges_value(
            overlap_count, leading=exploited_leading_spec(self.fcdn)
        )

    # -- max-n search -----------------------------------------------------------

    def probe(self, overlap_count: int) -> int:
        """Send one attack request with ``overlap_count`` ranges against a
        fresh deployment; returns the client-side HTTP status."""
        deployment = self.build_deployment()
        client = deployment.client(host=self.host)
        result = client.get(
            self.resource_path,
            range_value=self.range_value(overlap_count),
            abort_after=self.client_abort_after,
        )
        return result.response.status

    def find_max_n(self, lower: int = 2, upper: int = 32768) -> int:
        """Largest ``n`` that survives both CDNs' header limits end-to-end.

        Binary search over fresh deployments, exactly how an attacker
        (or the paper's authors) would probe the boundary.  Returns 0
        when even ``lower`` is rejected.
        """
        if self.probe(lower) != StatusCode.PARTIAL_CONTENT:
            return 0
        if self.probe(upper) == StatusCode.PARTIAL_CONTENT:
            return upper
        low, high = lower, upper  # probe(low) ok, probe(high) rejected
        while high - low > 1:
            middle = (low + high) // 2
            if self.probe(middle) == StatusCode.PARTIAL_CONTENT:
                low = middle
            else:
                high = middle
        return low

    # -- measurement ---------------------------------------------------------------

    def run(self, overlap_count: Optional[int] = None) -> ObrResult:
        """Execute one attack request and measure per-segment traffic.

        ``overlap_count=None`` first searches the maximum ``n`` (the
        paper's Table V methodology).
        """
        n = overlap_count if overlap_count is not None else self.find_max_n()
        if n < 1:
            raise ConfigurationError(
                f"{self.fcdn} -> {self.bcdn} admits no overlapping ranges"
            )
        deployment = self.build_deployment()
        client = deployment.client(host=self.host)
        range_value = self.range_value(n)
        with current_tracer().span("attack.obr") as span:
            if span.recording:
                span.set(
                    fcdn=self.fcdn,
                    bcdn=self.bcdn,
                    resource_size=self.resource_size,
                    overlap_count=n,
                )
            result = client.get(
                self.resource_path,
                range_value=range_value,
                abort_after=self.client_abort_after,
            )
            report = AmplificationReport.from_ledger(
                deployment.ledger, victim_segment=FCDN_BCDN, attacker_segment=BCDN_ORIGIN
            )
            if span.recording:
                span.set(amplification=report.factor)
        return ObrResult(
            fcdn=self.fcdn,
            bcdn=self.bcdn,
            resource_size=self.resource_size,
            overlap_count=n,
            range_value_size=len(range_value),
            bcdn_origin_traffic=report.attacker_bytes,
            fcdn_bcdn_traffic=report.victim_bytes,
            client_traffic=result.received_bytes,
            status=result.response.status,
            report=report,
        )


def vulnerable_combinations() -> List[Tuple[str, str]]:
    """The 11 FCDN × BCDN combinations of Table V (self-cascading
    excluded)."""
    return [
        (fcdn, bcdn)
        for fcdn in OBR_FRONTENDS
        for bcdn in OBR_BACKENDS
        if fcdn != bcdn
    ]


def obr_grid(
    combinations: Optional[List[Tuple[str, str]]] = None,
    resource_size: int = 1024,
    overlap_count: int = 0,
    name: str = "table5-obr",
) -> "ExperimentGrid":
    """Table V's cascade sweep as an :class:`~repro.runner.grid.ExperimentGrid`.

    ``overlap_count=0`` keeps the per-cell max-n search (the Table V
    methodology); a positive count pins n for every cell.
    """
    from repro.runner.experiments import obr_cell
    from repro.runner.grid import ExperimentGrid

    combos = list(combinations) if combinations is not None else vulnerable_combinations()
    return ExperimentGrid(
        name,
        [
            obr_cell(fcdn, bcdn, resource_size=resource_size, overlap_count=overlap_count)
            for fcdn, bcdn in combos
        ],
    )
