"""The paper's first experiment: probing range-handling policies.

Tables I–III were produced by sending "a large number of valid range
requests automatically generated based on the ABNF rules" through each
CDN while capturing both the client side and the origin side, then
diffing what was sent against what arrived.  :class:`FeasibilityProbe`
does the same against a simulated deployment:

* **forwarding** observations (Tables I and II) come from comparing the
  client's Range header with the Range header(s) the origin received —
  the origin side is captured with
  :class:`~repro.core.deployment.RecordingHandler`;
* **replying** observations (Table III) come from sending overlapping
  multi-range requests at an origin with range support disabled and
  classifying the response the CDN builds.

Every case is sent twice at the same cache-busted URL so stateful
policies (KeyCDN's second-sighting Deletion) are observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.vendors import all_vendor_names
from repro.cdn.vendors.base import VendorConfig
from repro.core.cachebusting import CacheBuster
from repro.core.deployment import CdnSpec, Deployment
from repro.http.grammar import RangeCase, RangeCorpusGenerator, RangeFormat
from repro.http.ranges import try_parse_range_header
from repro.http.status import StatusCode
from repro.origin.server import OriginServer

#: Classification labels for observed forwarding behavior.
LAZINESS = "laziness"
DELETION = "deletion"
EXPANSION = "expansion"
MODIFIED = "modified"
NOT_FORWARDED = "not-forwarded"


@dataclass(frozen=True)
class ForwardingObservation:
    """How one Range case was forwarded, over two identical sends."""

    vendor: str
    case: RangeCase
    #: Range values the origin received, per send: each send contributes
    #: a tuple of the values seen (a vendor may open several upstream
    #: connections per request, e.g. StackPath's "& None").
    forwarded_per_send: Tuple[Tuple[Optional[str], ...], ...]
    #: Classified policy per send.
    policies_per_send: Tuple[Tuple[str, ...], ...]

    @property
    def policies(self) -> Tuple[str, ...]:
        """All policies observed across sends, flattened."""
        return tuple(p for send in self.policies_per_send for p in send)

    @property
    def amplifying(self) -> bool:
        """True when any send triggered Deletion or Expansion."""
        return any(p in (DELETION, EXPANSION) for p in self.policies)

    @property
    def lazy_throughout(self) -> bool:
        """True when every send that reached the origin was forwarded
        unchanged (cache hits are not evidence either way)."""
        reached = [p for p in self.policies if p != NOT_FORWARDED]
        return bool(reached) and all(p == LAZINESS for p in reached)


@dataclass(frozen=True)
class ReplyObservation:
    """How a CDN replies to an overlapping multi-range request when it
    holds the full representation (Table III)."""

    vendor: str
    overlap_count: int
    status: int
    response_size: int
    resource_size: int
    honors_overlapping: bool
    #: Observed part-count limit, if the CDN enforces one (Azure's 64).
    part_limit: Optional[int]


#: The multi-range formats Table II classifies laziness by.
_MULTI_FORMATS = (
    RangeFormat.MULTI_OPEN,
    RangeFormat.SUFFIX_THEN_OPEN,
    RangeFormat.MULTI_OPEN_LEAD_ONE,
)


@dataclass
class VendorFeasibility:
    """Aggregated Table I/II/III verdicts for one vendor."""

    vendor: str
    forwarding: List[ForwardingObservation] = field(default_factory=list)
    #: Multi-range observations taken under the cache-bypass configuration
    #: (the Cloudflare (*) condition in Table II).
    bypass_forwarding: List[ForwardingObservation] = field(default_factory=list)
    reply: Optional[ReplyObservation] = None

    @property
    def sbr_vulnerable(self) -> bool:
        """Table I membership: some single-range format amplifies."""
        return any(
            obs.amplifying and obs.case.format in (
                RangeFormat.FIRST_LAST, RangeFormat.FIRST_OPEN, RangeFormat.SUFFIX,
                RangeFormat.MULTI_CLOSED,
            )
            for obs in self.forwarding
        )

    @property
    def obr_fcdn_vulnerable(self) -> bool:
        """Table II membership: some overlapping multi-range format is
        forwarded unchanged, under the default or bypass configuration."""
        return any(
            obs.lazy_throughout and obs.case.format in _MULTI_FORMATS
            for obs in self.forwarding + self.bypass_forwarding
        )

    @property
    def obr_fcdn_conditional(self) -> bool:
        """True when laziness only shows under the bypass configuration
        (Table II's (*) marker)."""
        default_lazy = any(
            obs.lazy_throughout and obs.case.format in _MULTI_FORMATS
            for obs in self.forwarding
        )
        return self.obr_fcdn_vulnerable and not default_lazy

    @property
    def obr_bcdn_vulnerable(self) -> bool:
        """Table III membership: overlapping ranges honored as an n-part
        response."""
        return self.reply is not None and self.reply.honors_overlapping

    def amplifying_formats(self) -> List[Tuple[str, str]]:
        """(format, policy) pairs behind the Table I verdict."""
        pairs: List[Tuple[str, str]] = []
        for obs in self.forwarding:
            if not obs.amplifying:
                continue
            policy = DELETION if DELETION in obs.policies else EXPANSION
            pair = (obs.case.format.value, policy)
            if pair not in pairs:
                pairs.append(pair)
        return pairs

    def lazy_multi_formats(self) -> List[str]:
        """Formats behind the Table II verdict (both configurations)."""
        formats: List[str] = []
        for obs in self.forwarding + self.bypass_forwarding:
            if obs.lazy_throughout and obs.case.format in _MULTI_FORMATS:
                if obs.case.format.value not in formats:
                    formats.append(obs.case.format.value)
        return formats


class FeasibilityProbe:
    """Probe one vendor's range-specific policies."""

    def __init__(
        self,
        vendor: str,
        file_size: int = 64 * 1024,
        resource_path: str = "/probe.bin",
        corpus: Optional[Sequence[RangeCase]] = None,
        sends_per_case: int = 2,
        config: Optional["VendorConfig"] = None,
    ) -> None:
        self.vendor = vendor
        self.file_size = file_size
        self.resource_path = resource_path
        generator = RangeCorpusGenerator(file_size=file_size)
        self.corpus = list(corpus) if corpus is not None else generator.full_corpus()
        self.sends_per_case = sends_per_case
        self.config = config

    def _multi_corpus(self) -> List[RangeCase]:
        """Just the overlapping multi-range cases (the Table II probes)."""
        return [case for case in self.corpus if case.format in _MULTI_FORMATS]

    # -- forwarding (Tables I & II) -----------------------------------------------

    def observe_forwarding(
        self,
        corpus: Optional[Sequence[RangeCase]] = None,
        config: Optional["VendorConfig"] = None,
    ) -> List[ForwardingObservation]:
        cases = list(corpus) if corpus is not None else self.corpus
        return [self._observe_case(case, config=config) for case in cases]

    def _observe_case(
        self, case: RangeCase, config: Optional["VendorConfig"] = None
    ) -> ForwardingObservation:
        origin = OriginServer()
        origin.add_synthetic_resource(self.resource_path, self.file_size)
        effective = config if config is not None else self.config
        deployment = Deployment.single(
            CdnSpec(vendor=self.vendor, config=effective), origin
        )
        client = deployment.client()
        tap = deployment.origin_tap
        assert tap is not None
        target = CacheBuster().bust(self.resource_path)

        forwarded_per_send: List[Tuple[Optional[str], ...]] = []
        policies_per_send: List[Tuple[str, ...]] = []
        for _ in range(self.sends_per_case):
            before = len(tap.requests)
            client.get(target, range_value=case.header_value)
            seen = tuple(tap.range_values_seen[before:])
            forwarded_per_send.append(seen)
            policies_per_send.append(
                tuple(self._classify(case.header_value, value) for value in seen)
                or (NOT_FORWARDED,)
            )
        return ForwardingObservation(
            vendor=self.vendor,
            case=case,
            forwarded_per_send=tuple(forwarded_per_send),
            policies_per_send=tuple(policies_per_send),
        )

    def _classify(self, client_value: str, forwarded_value: Optional[str]) -> str:
        if forwarded_value is None:
            return DELETION
        if forwarded_value == client_value:
            return LAZINESS
        client_spec = try_parse_range_header(client_value)
        forwarded_spec = try_parse_range_header(forwarded_value)
        if client_spec is None or forwarded_spec is None:
            return MODIFIED
        client_bytes = client_spec.requested_bytes(self.file_size)
        forwarded_bytes = forwarded_spec.requested_bytes(self.file_size)
        if forwarded_bytes > client_bytes:
            return EXPANSION
        return MODIFIED

    # -- replying (Table III) --------------------------------------------------------

    def observe_reply(self, overlap_count: int = 4) -> ReplyObservation:
        """Send an overlapping multi-range request at a range-disabled
        origin and classify the CDN-built response."""
        status, size = self._reply_probe(overlap_count)
        honors = status == StatusCode.PARTIAL_CONTENT and size >= overlap_count * self.file_size
        part_limit: Optional[int] = None
        if honors:
            over_status, _ = self._reply_probe(65)
            if over_status != StatusCode.PARTIAL_CONTENT:
                part_limit = 64
        return ReplyObservation(
            vendor=self.vendor,
            overlap_count=overlap_count,
            status=status,
            response_size=size,
            resource_size=self.file_size,
            honors_overlapping=honors,
            part_limit=part_limit,
        )

    def _reply_probe(self, overlap_count: int) -> Tuple[int, int]:
        origin = OriginServer(range_support=False)
        origin.add_synthetic_resource(self.resource_path, self.file_size)
        deployment = Deployment.single(CdnSpec(vendor=self.vendor), origin)
        client = deployment.client()
        range_value = "bytes=" + ",".join(["0-"] * overlap_count)
        result = client.get(self.resource_path, range_value=range_value)
        return result.response.status, len(result.response.body)

    # -- aggregate --------------------------------------------------------------------

    def assess(self) -> VendorFeasibility:
        """Run the full probe: forwarding under the default configuration,
        multi-range forwarding additionally under cache bypass (the
        Cloudflare (*) condition), and the Table III reply probe."""
        verdict = VendorFeasibility(vendor=self.vendor)
        verdict.forwarding = self.observe_forwarding()
        verdict.bypass_forwarding = self.observe_forwarding(
            corpus=self._multi_corpus(), config=VendorConfig(bypass_cache=True)
        )
        verdict.reply = self.observe_reply()
        return verdict


def survey(vendors: Optional[Sequence[str]] = None, file_size: int = 64 * 1024) -> Dict[str, VendorFeasibility]:
    """Run the full experiment-1 survey over ``vendors`` (default: all 13)."""
    names = list(vendors) if vendors is not None else all_vendor_names()
    return {name: FeasibilityProbe(name, file_size=file_size).assess() for name in names}
