"""Deployment wiring: client → CDN chain → origin, fully instrumented.

A :class:`Deployment` assembles the paper's two topologies:

* **single CDN** (Fig 3a — the SBR setting): segments ``client-cdn`` and
  ``cdn-origin``;
* **cascaded CDNs** (Fig 3b — the OBR setting): segments ``client-cdn``,
  ``fcdn-bcdn``, and ``bcdn-origin``.

Longer chains are supported with generated segment names.  All nodes
share one :class:`~repro.netsim.tap.TrafficLedger`, so a single run
yields the per-segment response traffic the paper's tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.cdn.cache import CdnCache
from repro.cdn.node import CdnNode
from repro.cdn.vendors import create_profile
from repro.cdn.vendors.base import VendorConfig, VendorProfile
from repro.errors import ConfigurationError, ResourceNotFoundError
from repro.handler import HttpHandler
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.connection import Connection, ExchangeRecord
from repro.netsim.overhead import OverheadModel
from repro.netsim.tap import BCDN_ORIGIN, CDN_ORIGIN, CLIENT_CDN, FCDN_BCDN, TrafficLedger
from repro.obs.tracer import current_tracer
from repro.origin.server import OriginServer


@dataclass
class CdnSpec:
    """Declaration of one CDN hop in a deployment chain.

    Exactly one of ``vendor`` (a registry name) or ``profile`` (a
    pre-built instance) must be given.
    """

    vendor: Optional[str] = None
    profile: Optional[VendorProfile] = None
    config: Optional[VendorConfig] = None
    cache: Optional[CdnCache] = None

    def build_profile(self) -> VendorProfile:
        if (self.vendor is None) == (self.profile is None):
            raise ConfigurationError("CdnSpec needs exactly one of vendor/profile")
        if self.profile is not None:
            return self.profile
        assert self.vendor is not None
        return create_profile(self.vendor)


def _coerce_spec(spec: Union[str, CdnSpec]) -> CdnSpec:
    return CdnSpec(vendor=spec) if isinstance(spec, str) else spec


class RecordingHandler(HttpHandler):
    """Wraps a handler and records every request it receives.

    The feasibility experiment compares the Range header the client sent
    with the one(s) the origin received; this is the origin-side capture.
    """

    def __init__(self, inner: HttpHandler) -> None:
        self.inner = inner
        self.requests: List[HttpRequest] = []

    def handle(self, request: HttpRequest) -> HttpResponse:
        self.requests.append(request.copy())
        return self.inner.handle(request)

    def clear(self) -> None:
        self.requests.clear()

    @property
    def range_values_seen(self) -> List[Optional[str]]:
        """The Range header of each received request, in arrival order."""
        return [r.headers.get("Range") for r in self.requests]


class Deployment:
    """A wired client → CDN chain → origin topology."""

    def __init__(
        self,
        origin: OriginServer,
        chain: Sequence[Union[str, CdnSpec]],
        overhead: Optional[OverheadModel] = None,
        record_origin: bool = True,
    ) -> None:
        if not chain:
            raise ConfigurationError("a deployment needs at least one CDN")
        self.origin = origin
        self.ledger = TrafficLedger(overhead=overhead)
        self.origin_tap: Optional[RecordingHandler] = (
            RecordingHandler(origin) if record_origin else None
        )

        specs = [_coerce_spec(s) for s in chain]
        segment_names = self._segment_names(len(specs))
        upstream: HttpHandler = self.origin_tap if self.origin_tap is not None else origin
        nodes: List[CdnNode] = []
        # Build from the origin outwards.
        for index in range(len(specs) - 1, -1, -1):
            spec = specs[index]
            profile = spec.build_profile()
            config = spec.config if spec.config is not None else profile.effective_config()
            node = CdnNode(
                profile=profile,
                upstream=upstream,
                ledger=self.ledger,
                upstream_segment=segment_names[index + 1],
                config=config,
                cache=spec.cache,
                size_hint_fn=self._size_hint,
                node_label=profile.name,
            )
            nodes.insert(0, node)
            upstream = node
        self.nodes = nodes
        self.client_segment = segment_names[0]

    @staticmethod
    def _segment_names(chain_length: int) -> List[str]:
        """Paper-style segment names for a chain of ``chain_length`` CDNs.

        One CDN: ``client-cdn``, ``cdn-origin``.  Two CDNs: ``client-cdn``,
        ``fcdn-bcdn``, ``bcdn-origin``.  Longer chains get generated
        ``cdn<i>-cdn<i+1>`` names for the middle hops.
        """
        if chain_length == 1:
            return [CLIENT_CDN, CDN_ORIGIN]
        if chain_length == 2:
            return [CLIENT_CDN, FCDN_BCDN, BCDN_ORIGIN]
        middle = [f"cdn{i}-cdn{i + 1}" for i in range(1, chain_length)]
        return [CLIENT_CDN] + middle + [CDN_ORIGIN]

    def _size_hint(self, path: str) -> Optional[int]:
        try:
            return self.origin.store.get(path).size
        except ResourceNotFoundError:
            return None

    # -- convenience constructors -------------------------------------------------

    @classmethod
    def single(
        cls,
        vendor: Union[str, CdnSpec],
        origin: OriginServer,
        overhead: Optional[OverheadModel] = None,
    ) -> "Deployment":
        """The SBR topology: one CDN in front of the origin."""
        return cls(origin, [vendor], overhead=overhead)

    @classmethod
    def cascade(
        cls,
        fcdn: Union[str, CdnSpec],
        bcdn: Union[str, CdnSpec],
        origin: OriginServer,
        overhead: Optional[OverheadModel] = None,
    ) -> "Deployment":
        """The OBR topology: FCDN → BCDN → origin."""
        return cls(origin, [fcdn, bcdn], overhead=overhead)

    # -- access --------------------------------------------------------------------

    @property
    def front(self) -> CdnNode:
        """The node clients talk to."""
        return self.nodes[0]

    def client(self, host: str = "victim.example", reuse_connection: bool = False) -> "Client":
        return Client(self, host=host, reuse_connection=reuse_connection)

    def response_traffic(self, segment: str) -> int:
        """Response-direction wire bytes observed on ``segment``."""
        return self.ledger.segment_stats(segment).response_bytes_delivered


@dataclass
class ClientResult:
    """One client exchange plus its wire accounting."""

    response: HttpResponse
    record: ExchangeRecord

    @property
    def received_bytes(self) -> int:
        """Response bytes the client actually received (post-abort)."""
        return self.record.response_bytes_delivered


class Client:
    """The attacker-side HTTP client.

    Supports the OBR attacker's resource-saving tricks: a tiny TCP
    receive window / early abort is modeled by capping how many response
    bytes are delivered on the client segment (``abort_after``).
    """

    def __init__(
        self,
        deployment: Deployment,
        host: str = "victim.example",
        reuse_connection: bool = False,
    ) -> None:
        self.deployment = deployment
        self.host = host
        #: When true, every request shares one client-side connection —
        #: how a keep-alive HTTP/1.1 client or a multiplexing HTTP/2
        #: client behaves (per-connection setup cost is paid once).
        self.reuse_connection = reuse_connection
        self._connection: Optional[Connection] = None

    def _client_connection(self) -> Connection:
        if not self.reuse_connection:
            return self.deployment.ledger.open_connection(
                self.deployment.client_segment, client_label="client",
                server_label=self.deployment.front.node_label,
            )
        if self._connection is None:
            self._connection = self.deployment.ledger.open_connection(
                self.deployment.client_segment, client_label="client",
                server_label=self.deployment.front.node_label,
            )
        return self._connection

    def get(
        self,
        target: str,
        range_value: Optional[str] = None,
        extra_headers: Optional[Sequence[Tuple[str, str]]] = None,
        abort_after: Optional[int] = None,
    ) -> ClientResult:
        """Send one GET through the deployment's front node."""
        headers = Headers([("Host", self.host)])
        if range_value is not None:
            headers.add("Range", range_value)
        for name, value in extra_headers or ():
            headers.add(name, value)
        request = HttpRequest(method="GET", target=target, headers=headers)
        with current_tracer().span("client.request") as span:
            if span.recording:
                span.set(target=target, range=range_value or "")
                if abort_after is not None:
                    span.set(abort_after=abort_after)
            connection = self._client_connection()
            response = self.deployment.front.handle(request)
            record = connection.exchange(
                request, response, deliver_cap=abort_after, note="client"
            )
            if span.recording:
                span.set(status=record.status)
        return ClientResult(response=response, record=record)
