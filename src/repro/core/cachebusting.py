"""Query-string cache busting.

CDN caches are keyed on the full URL, so appending a never-repeating
query string forces a cache miss — and therefore a back-to-origin fetch —
on every request (paper §II-A, citing prior work).  The SBR attack needs
exactly this: amplification only happens when the CDN goes back to the
origin.
"""

from __future__ import annotations


class CacheBuster:
    """Generates cache-busting variants of a target URL.

    >>> buster = CacheBuster()
    >>> buster.bust("/10MB.bin")
    '/10MB.bin?cb=0'
    >>> buster.bust("/10MB.bin?v=2")
    '/10MB.bin?v=2&cb=1'
    """

    def __init__(self, parameter: str = "cb") -> None:
        if not parameter or "=" in parameter or "&" in parameter:
            raise ValueError(f"invalid cache-busting parameter {parameter!r}")
        self.parameter = parameter
        self._counter = 0

    def bust(self, target: str) -> str:
        """Return ``target`` with a fresh cache-busting query parameter."""
        separator = "&" if "?" in target else "?"
        busted = f"{target}{separator}{self.parameter}={self._counter}"
        self._counter += 1
        return busted

    @property
    def issued(self) -> int:
        """How many busted URLs have been handed out so far."""
        return self._counter
