"""The paper's fourth experiment: sustained SBR floods (Fig 7).

The setup: an origin with a 1000 Mbps uplink serving a 10 MB resource
through a vulnerable CDN; the attacker sends ``m`` concurrent SBR
requests every second for 30 seconds.  Fig 7a shows the client's
incoming bandwidth staying under 500 Kbps regardless of ``m``; Fig 7b
shows the origin's outgoing bandwidth growing almost proportionally to
``m`` until the uplink pins at its capacity (around ``m ≈ 11–14``).

We reproduce it in two steps:

1. measure the per-request traffic of one SBR round against the chosen
   vendor (wire-exact, from :class:`~repro.core.sbr.SbrAttack`);
2. drive a fluid-flow bandwidth simulation in which each attack request
   becomes one origin-uplink transfer of that size (and one tiny
   client-downlink transfer), sampling per-second throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.sbr import SbrAttack

if TYPE_CHECKING:
    from repro.runner.grid import ExperimentGrid
from repro.netsim.bandwidth import FluidSimulator, Link

MB = 1 << 20

ORIGIN_LINK = "origin-uplink"
CLIENT_LINK = "client-downlink"


@dataclass(frozen=True)
class BandwidthRunResult:
    """Per-second bandwidth series for one value of ``m``."""

    m: int
    duration_s: float
    origin_capacity_mbps: float
    #: Origin outgoing throughput, one sample per second (Mbps).
    origin_mbps: Tuple[float, ...]
    #: Client incoming throughput, one sample per second (Kbps).
    client_kbps: Tuple[float, ...]
    #: Wire bytes one attack request pulls out of the origin.
    origin_bytes_per_request: int
    #: Wire bytes one attack request delivers to the client.
    client_bytes_per_request: int

    @property
    def steady_origin_mbps(self) -> float:
        """Mean origin throughput over the steady window (seconds 5–30)."""
        window = [
            sample
            for second, sample in enumerate(self.origin_mbps)
            if 5 <= second < min(30, len(self.origin_mbps))
        ]
        if not window:
            return 0.0
        return sum(window) / len(window)

    @property
    def peak_client_kbps(self) -> float:
        return max(self.client_kbps) if self.client_kbps else 0.0

    @property
    def saturated(self) -> bool:
        """True when the origin uplink is pinned at capacity."""
        return self.steady_origin_mbps >= 0.97 * self.origin_capacity_mbps


class BandwidthAttackSimulation:
    """Fig 7's experiment harness."""

    def __init__(
        self,
        vendor: str = "cloudflare",
        resource_size: int = 10 * MB,
        origin_uplink_mbps: float = 1000.0,
        client_downlink_mbps: float = 100.0,
        duration_s: float = 30.0,
        drain_s: float = 10.0,
        dt: float = 0.1,
        per_request: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.vendor = vendor
        self.resource_size = resource_size
        self.origin_uplink_mbps = origin_uplink_mbps
        self.client_downlink_mbps = client_downlink_mbps
        self.duration_s = duration_s
        self.drain_s = drain_s
        self.dt = dt
        # ``per_request`` pins the step-1 probe result so a caller that
        # already measured (origin_bytes, client_bytes) — e.g. the
        # parallel runner sharing one probe across all 15 Fig 7 cells —
        # skips the redundant SBR run.
        self._per_request: Optional[Tuple[int, int]] = (
            tuple(per_request) if per_request is not None else None  # type: ignore[assignment]
        )

    # -- step 1: wire-exact per-request traffic ----------------------------------

    def per_request_traffic(self) -> Tuple[int, int]:
        """(origin_bytes, client_bytes) one attack round moves."""
        if self._per_request is None:
            result = SbrAttack(self.vendor, resource_size=self.resource_size).run()
            self._per_request = (result.origin_traffic, result.client_traffic)
        return self._per_request

    # -- step 2: fluid simulation ----------------------------------------------------

    def run(self, m: int) -> BandwidthRunResult:
        """Simulate ``m`` attack requests per second for the configured
        duration; returns per-second bandwidth series."""
        if m < 0:
            raise ValueError(f"m must be >= 0, got {m}")
        origin_bytes, client_bytes = self.per_request_traffic()
        simulator = FluidSimulator(
            [
                Link(ORIGIN_LINK, self.origin_uplink_mbps * 1e6),
                Link(CLIENT_LINK, self.client_downlink_mbps * 1e6),
            ],
            dt=self.dt,
        )
        for second in range(int(self.duration_s)):
            for index in range(m):
                simulator.add_transfer(
                    origin_bytes, [ORIGIN_LINK], start_time=float(second),
                    label=f"origin:{second}:{index}",
                )
                simulator.add_transfer(
                    client_bytes, [CLIENT_LINK], start_time=float(second),
                    label=f"client:{second}:{index}",
                )
        total = self.duration_s + self.drain_s
        simulator.run(total)
        origin_series = self._per_second_bps(simulator, ORIGIN_LINK, total)
        client_series = self._per_second_bps(simulator, CLIENT_LINK, total)
        return BandwidthRunResult(
            m=m,
            duration_s=self.duration_s,
            origin_capacity_mbps=self.origin_uplink_mbps,
            origin_mbps=tuple(bps / 1e6 for bps in origin_series),
            client_kbps=tuple(bps / 1e3 for bps in client_series),
            origin_bytes_per_request=origin_bytes,
            client_bytes_per_request=client_bytes,
        )

    def _per_second_bps(
        self, simulator: FluidSimulator, link: str, total: float
    ) -> List[float]:
        series: List[float] = []
        for second in range(int(total)):
            series.append(
                simulator.mean_throughput_bps(link, start=second, end=second + 1)
            )
        return series

    def sweep(self, ms: Sequence[int] = tuple(range(1, 16))) -> List[BandwidthRunResult]:
        """Fig 7's full sweep, ``m`` from 1 to 15 by default."""
        return [self.run(m) for m in ms]

    def saturation_threshold(self, ms: Sequence[int] = tuple(range(1, 16))) -> Optional[int]:
        """Smallest ``m`` whose steady-state throughput pins the uplink."""
        for result in self.sweep(ms):
            if result.saturated:
                return result.m
        return None


def flood_grid(
    ms: Sequence[int] = tuple(range(1, 16)),
    vendor: str = "cloudflare",
    resource_size: int = 10 * MB,
    origin_uplink_mbps: float = 1000.0,
    per_request: Optional[Tuple[int, int]] = None,
) -> "ExperimentGrid":
    """Fig 7's sweep as an :class:`~repro.runner.grid.ExperimentGrid`.

    ``per_request=None`` measures the per-request SBR traffic once here
    (memoized) and shares it with every cell, so the parallel sweep does
    not run the probe 15 times.
    """
    from repro.runner.experiments import flood_cell
    from repro.runner.grid import ExperimentGrid
    from repro.runner.memo import sbr_per_request_traffic

    if per_request is None:
        per_request = sbr_per_request_traffic(vendor, resource_size)
    return ExperimentGrid(
        "fig7-flood",
        [
            flood_cell(
                vendor,
                m,
                resource_size=resource_size,
                origin_uplink_mbps=origin_uplink_mbps,
                per_request=per_request,
            )
            for m in ms
        ],
    )
