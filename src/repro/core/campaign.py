"""Attack campaigns against multi-node edges, with detection in the loop.

Ties three pieces together the way a real incident would see them:

* an :class:`~repro.cdn.cluster.EdgeCluster` standing in for the CDN's
  geographically scattered ingress nodes;
* a stream of SBR rounds, optionally spread across nodes and across
  attacker source addresses;
* a :class:`~repro.defense.detection.RangeAmpDetector` watching the
  origin-side request stream.

The paper's two observations both fall out: spreading requests across
ingress nodes multiplies the pressure no single node's cache can absorb
(§V-D), and origin-side detection keyed on the client address is
defeated by address rotation — "attack requests are no different from
benign requests and come from widely distributed CDN nodes" (§VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cdn.cluster import ROTATE, EdgeCluster
from repro.core.cachebusting import CacheBuster
from repro.defense.detection import RangeAmpDetector
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.netsim.tap import CDN_ORIGIN, TrafficLedger
from repro.origin.server import OriginServer

MB = 1 << 20


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of one campaign run."""

    vendor: str
    requests_sent: int
    node_count: int
    requests_per_node: Tuple[int, ...]
    origin_traffic: int
    client_traffic: int
    #: Clients the detector flagged, by address.
    flagged_clients: Tuple[str, ...]
    #: Distinct source addresses the attacker used.
    source_addresses: int

    @property
    def amplification(self) -> float:
        if self.client_traffic <= 0:
            return 0.0
        return self.origin_traffic / self.client_traffic

    @property
    def detected(self) -> bool:
        return bool(self.flagged_clients)


class SbrCampaign:
    """A sustained SBR campaign against an edge cluster."""

    def __init__(
        self,
        vendor: str,
        resource_size: int = 10 * MB,
        resource_path: str = "/target.bin",
        node_count: int = 4,
        selection: str = ROTATE,
        detector: Optional[RangeAmpDetector] = None,
        host: str = "victim.example",
    ) -> None:
        self.vendor = vendor
        self.resource_size = resource_size
        self.resource_path = resource_path
        self.node_count = node_count
        self.selection = selection
        self.detector = detector
        self.host = host

    def run(
        self,
        requests: int = 40,
        rotate_sources_every: Optional[int] = None,
    ) -> CampaignResult:
        """Send ``requests`` cache-busted SBR rounds through the cluster.

        ``rotate_sources_every`` switches to a fresh source address after
        that many requests — the address-rotation evasion against
        per-client detection.  ``None`` keeps one address throughout.
        """
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        origin = OriginServer()
        origin.add_synthetic_resource(self.resource_path, self.resource_size)
        ledger = TrafficLedger()
        cluster = EdgeCluster(
            self.vendor,
            upstream=origin,
            node_count=self.node_count,
            ledger=ledger,
            selection=self.selection,
            size_hint_fn=lambda path: self.resource_size,
        )
        buster = CacheBuster()
        client_traffic = 0
        sources: List[str] = []
        for index in range(requests):
            source = self._source_address(index, rotate_sources_every)
            if source not in sources:
                sources.append(source)
            request = HttpRequest(
                "GET",
                buster.bust(self.resource_path),
                headers=Headers([("Host", self.host), ("Range", "bytes=0-0")]),
            )
            if self.detector is not None:
                self.detector.observe(source, request)
            connection = ledger.open_connection("client-cdn", client_label=source)
            response = cluster.handle(request)
            record = connection.exchange(request, response, note=f"campaign:{source}")
            client_traffic += record.response_bytes_delivered

        flagged: Tuple[str, ...] = ()
        if self.detector is not None:
            flagged = tuple(
                source for source in sources if self.detector.verdict(source).suspicious
            )
        return CampaignResult(
            vendor=self.vendor,
            requests_sent=requests,
            node_count=cluster.node_count,
            requests_per_node=tuple(cluster.served_per_node()),
            origin_traffic=ledger.segment_stats(CDN_ORIGIN).response_bytes_delivered,
            client_traffic=client_traffic,
            flagged_clients=flagged,
            source_addresses=len(sources),
        )

    @staticmethod
    def _source_address(index: int, rotate_every: Optional[int]) -> str:
        if rotate_every is None or rotate_every < 1:
            return "203.0.113.66"
        block = index // rotate_every
        return f"203.0.113.{66 + block % 180}"
