"""The Small Byte Range (SBR) attack (paper §IV-B, §V-B).

The attacker sends a range request asking for almost nothing
(``Range: bytes=0-0``) at a cache-busted URL.  A CDN applying *Deletion*
or *Expansion* fetches the whole resource (or a large window) from the
origin, but returns only the requested byte to the attacker.  The
origin's outgoing bandwidth is consumed at an amplification factor
roughly proportional to the resource size.

:func:`exploited_range_cases` reproduces Table IV's per-vendor exploited
range cases, including the vendors whose case depends on the resource
size (Azure, Huawei) and KeyCDN's send-it-twice pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.core.amplification import AmplificationReport
from repro.core.cachebusting import CacheBuster
from repro.core.deployment import CdnSpec, Deployment
from repro.errors import ConfigurationError
from repro.netsim.overhead import OverheadModel
from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN
from repro.obs.tracer import current_tracer
from repro.origin.server import OriginServer

if TYPE_CHECKING:
    from repro.cdn.vendors.base import VendorProfile
    from repro.runner.grid import ExperimentGrid

MB = 1 << 20

#: Vendors whose exploited case is the plain first-byte request.
_PLAIN_FIRST_BYTE = (
    "akamai",
    "cdn77",
    "cdnsun",
    "cloudflare",
    "fastly",
    "gcore",
    "stackpath",
    "tencent",
)


def exploited_range_cases(vendor: str, resource_size: int) -> List[str]:
    """Table IV column 2: the Range values one attack round sends.

    Most vendors take a single request; KeyCDN needs the same request
    twice (its second-sighting Deletion).  Azure and Huawei switch cases
    with the target size.
    """
    if vendor in _PLAIN_FIRST_BYTE:
        return ["bytes=0-0"]
    if vendor == "alibaba":
        return ["bytes=-1"]
    if vendor == "azure":
        if resource_size <= 8 * MB:
            return ["bytes=0-0"]
        return ["bytes=8388608-8388608"]
    if vendor == "huawei":
        if resource_size < 10 * MB:
            return ["bytes=-1"]
        return ["bytes=0-0"]
    if vendor == "cloudfront":
        return ["bytes=0-0,9437184-9437184"]
    if vendor == "keycdn":
        return ["bytes=0-0", "bytes=0-0"]
    raise ConfigurationError(f"no exploited SBR case known for vendor {vendor!r}")


@dataclass(frozen=True)
class SbrResult:
    """Outcome of one SBR measurement."""

    vendor: str
    resource_size: int
    rounds: int
    #: Response traffic the attacker received on client-cdn (bytes).
    client_traffic: int
    #: Response traffic the origin pushed on cdn-origin (bytes).
    origin_traffic: int
    #: HTTP statuses of the client-side responses.
    statuses: Tuple[int, ...]
    report: AmplificationReport

    @property
    def amplification(self) -> float:
        return self.report.factor


class SbrAttack:
    """Run the SBR attack against one vendor profile.

    Each :meth:`run` builds a *fresh* deployment (fresh caches, fresh
    ledger) so results are independent and repeatable.

    ``profile_factory`` substitutes a wrapped profile (e.g. a
    ``MitigatedProfile``) for the registry vendor while keeping the
    vendor's exploited range cases — the recommendation engine's
    before/after measurement.  A factory rather than an instance because
    every :meth:`run` needs a fresh profile (profiles are stateful).
    """

    def __init__(
        self,
        vendor: str,
        resource_size: int = 10 * MB,
        resource_path: str = "/target.bin",
        config: Optional[object] = None,
        overhead: Optional[OverheadModel] = None,
        host: str = "victim.example",
        profile_factory: Optional[Callable[[], "VendorProfile"]] = None,
    ) -> None:
        self.vendor = vendor
        self.resource_size = resource_size
        self.resource_path = resource_path
        self.config = config
        self.overhead = overhead
        self.host = host
        self.profile_factory = profile_factory

    def build_deployment(self) -> Deployment:
        origin = OriginServer()
        origin.add_synthetic_resource(self.resource_path, self.resource_size)
        if self.profile_factory is not None:
            spec = CdnSpec(
                profile=self.profile_factory(),
                config=self.config,  # type: ignore[arg-type]
            )
        else:
            spec = CdnSpec(vendor=self.vendor, config=self.config)  # type: ignore[arg-type]
        return Deployment.single(spec, origin, overhead=self.overhead)

    def run(self, rounds: int = 1, range_cases: Optional[List[str]] = None) -> SbrResult:
        """Execute ``rounds`` attack rounds and measure amplification.

        One round sends every Range value in the vendor's exploited case
        at a single cache-busted URL (KeyCDN's two sends must hit the
        same URL to trigger the second-sighting Deletion).
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        cases = (
            range_cases
            if range_cases is not None
            else exploited_range_cases(self.vendor, self.resource_size)
        )
        deployment = self.build_deployment()
        client = deployment.client(host=self.host)
        buster = CacheBuster()
        statuses: List[int] = []
        with current_tracer().span("attack.sbr") as span:
            if span.recording:
                span.set(
                    vendor=self.vendor,
                    resource_size=self.resource_size,
                    rounds=rounds,
                    range_cases=list(cases),
                )
            for _ in range(rounds):
                target = buster.bust(self.resource_path)
                for range_value in cases:
                    result = client.get(target, range_value=range_value)
                    statuses.append(result.response.status)
            report = AmplificationReport.from_ledger(
                deployment.ledger, victim_segment=CDN_ORIGIN, attacker_segment=CLIENT_CDN
            )
            if span.recording:
                span.set(amplification=report.factor)
        return SbrResult(
            vendor=self.vendor,
            resource_size=self.resource_size,
            rounds=rounds,
            client_traffic=report.attacker_bytes,
            origin_traffic=report.victim_bytes,
            statuses=tuple(statuses),
            report=report,
        )


def sweep_resource_sizes(
    vendor: str,
    sizes: List[int],
    config: Optional[object] = None,
) -> List[SbrResult]:
    """Measure the SBR factor for each resource size (the Fig 6 sweep)."""
    return [
        SbrAttack(vendor, resource_size=size, config=config).run() for size in sizes
    ]


def sbr_grid(
    vendors: Optional[List[str]] = None,
    sizes: Tuple[int, ...] = (1 * MB, 10 * MB, 25 * MB),
    name: str = "sbr",
) -> "ExperimentGrid":
    """The vendor x size sweep as an :class:`~repro.runner.grid.ExperimentGrid`.

    One grid serves both Table IV and Fig 6: build it with the union of
    their size axes and the grid dedups overlapping cells.
    """
    from repro.cdn.vendors import all_vendor_names
    from repro.runner.experiments import sbr_cell
    from repro.runner.grid import ExperimentGrid

    names = list(vendors) if vendors is not None else all_vendor_names()
    return ExperimentGrid(
        name, [sbr_cell(vendor, size) for vendor in names for size in sizes]
    )
